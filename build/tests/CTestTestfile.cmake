# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_mpid[1]_include.cmake")
include("/root/repo/build/tests/test_mapred[1]_include.cmake")
include("/root/repo/build/tests/test_hadoop[1]_include.cmake")
include("/root/repo/build/tests/test_mpidsim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_dfs[1]_include.cmake")
include("/root/repo/build/tests/test_hrpc[1]_include.cmake")
include("/root/repo/build/tests/test_minihadoop[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
