
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dfs/test_dfs_property.cpp" "tests/CMakeFiles/test_dfs.dir/dfs/test_dfs_property.cpp.o" "gcc" "tests/CMakeFiles/test_dfs.dir/dfs/test_dfs_property.cpp.o.d"
  "/root/repo/tests/dfs/test_minidfs.cpp" "tests/CMakeFiles/test_dfs.dir/dfs/test_minidfs.cpp.o" "gcc" "tests/CMakeFiles/test_dfs.dir/dfs/test_minidfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/CMakeFiles/mpid_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/mpid_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/core/mpid/CMakeFiles/mpid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
