file(REMOVE_RECURSE
  "CMakeFiles/test_mpidsim.dir/mpidsim/test_invariants.cpp.o"
  "CMakeFiles/test_mpidsim.dir/mpidsim/test_invariants.cpp.o.d"
  "CMakeFiles/test_mpidsim.dir/mpidsim/test_overlap.cpp.o"
  "CMakeFiles/test_mpidsim.dir/mpidsim/test_overlap.cpp.o.d"
  "CMakeFiles/test_mpidsim.dir/mpidsim/test_system.cpp.o"
  "CMakeFiles/test_mpidsim.dir/mpidsim/test_system.cpp.o.d"
  "test_mpidsim"
  "test_mpidsim.pdb"
  "test_mpidsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpidsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
