# Empty compiler generated dependencies file for test_mpidsim.
# This may be replaced when dependencies are built.
