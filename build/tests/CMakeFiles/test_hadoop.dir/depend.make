# Empty dependencies file for test_hadoop.
# This may be replaced when dependencies are built.
