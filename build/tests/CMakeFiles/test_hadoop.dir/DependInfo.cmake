
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hadoop/test_calibration.cpp" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_calibration.cpp.o.d"
  "/root/repo/tests/hadoop/test_cluster.cpp" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_cluster.cpp.o.d"
  "/root/repo/tests/hadoop/test_copy_decomposition.cpp" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_copy_decomposition.cpp.o" "gcc" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_copy_decomposition.cpp.o.d"
  "/root/repo/tests/hadoop/test_hdfs.cpp" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_hdfs.cpp.o" "gcc" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_hdfs.cpp.o.d"
  "/root/repo/tests/hadoop/test_heterogeneity.cpp" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_heterogeneity.cpp.o" "gcc" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_heterogeneity.cpp.o.d"
  "/root/repo/tests/hadoop/test_invariants.cpp" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_invariants.cpp.o.d"
  "/root/repo/tests/hadoop/test_speculation.cpp" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_speculation.cpp.o" "gcc" "tests/CMakeFiles/test_hadoop.dir/hadoop/test_speculation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hadoop/CMakeFiles/mpid_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/mpidsim/CMakeFiles/mpid_mpidsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mpid_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/mpid_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mpid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/mpid_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/core/mpid/CMakeFiles/mpid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
