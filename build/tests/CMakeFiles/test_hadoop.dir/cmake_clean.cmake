file(REMOVE_RECURSE
  "CMakeFiles/test_hadoop.dir/hadoop/test_calibration.cpp.o"
  "CMakeFiles/test_hadoop.dir/hadoop/test_calibration.cpp.o.d"
  "CMakeFiles/test_hadoop.dir/hadoop/test_cluster.cpp.o"
  "CMakeFiles/test_hadoop.dir/hadoop/test_cluster.cpp.o.d"
  "CMakeFiles/test_hadoop.dir/hadoop/test_copy_decomposition.cpp.o"
  "CMakeFiles/test_hadoop.dir/hadoop/test_copy_decomposition.cpp.o.d"
  "CMakeFiles/test_hadoop.dir/hadoop/test_hdfs.cpp.o"
  "CMakeFiles/test_hadoop.dir/hadoop/test_hdfs.cpp.o.d"
  "CMakeFiles/test_hadoop.dir/hadoop/test_heterogeneity.cpp.o"
  "CMakeFiles/test_hadoop.dir/hadoop/test_heterogeneity.cpp.o.d"
  "CMakeFiles/test_hadoop.dir/hadoop/test_invariants.cpp.o"
  "CMakeFiles/test_hadoop.dir/hadoop/test_invariants.cpp.o.d"
  "CMakeFiles/test_hadoop.dir/hadoop/test_speculation.cpp.o"
  "CMakeFiles/test_hadoop.dir/hadoop/test_speculation.cpp.o.d"
  "test_hadoop"
  "test_hadoop.pdb"
  "test_hadoop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
