
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_hash.cpp" "tests/CMakeFiles/test_common.dir/common/test_hash.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_hash.cpp.o.d"
  "/root/repo/tests/common/test_kvframe.cpp" "tests/CMakeFiles/test_common.dir/common/test_kvframe.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_kvframe.cpp.o.d"
  "/root/repo/tests/common/test_kvframe_fuzz.cpp" "tests/CMakeFiles/test_common.dir/common/test_kvframe_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_kvframe_fuzz.cpp.o.d"
  "/root/repo/tests/common/test_prng.cpp" "tests/CMakeFiles/test_common.dir/common/test_prng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_prng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/common/test_units.cpp" "tests/CMakeFiles/test_common.dir/common/test_units.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_units.cpp.o.d"
  "/root/repo/tests/common/test_zipf.cpp" "tests/CMakeFiles/test_common.dir/common/test_zipf.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
