file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_hash.cpp.o"
  "CMakeFiles/test_common.dir/common/test_hash.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_kvframe.cpp.o"
  "CMakeFiles/test_common.dir/common/test_kvframe.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_kvframe_fuzz.cpp.o"
  "CMakeFiles/test_common.dir/common/test_kvframe_fuzz.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_prng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_prng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_units.cpp.o"
  "CMakeFiles/test_common.dir/common/test_units.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_zipf.cpp.o"
  "CMakeFiles/test_common.dir/common/test_zipf.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
