
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_primitives.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_primitives.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_primitives.cpp.o.d"
  "/root/repo/tests/sim/test_property_sim.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_property_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_property_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mpid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
