
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mapred/test_input_edges.cpp" "tests/CMakeFiles/test_mapred.dir/mapred/test_input_edges.cpp.o" "gcc" "tests/CMakeFiles/test_mapred.dir/mapred/test_input_edges.cpp.o.d"
  "/root/repo/tests/mapred/test_job.cpp" "tests/CMakeFiles/test_mapred.dir/mapred/test_job.cpp.o" "gcc" "tests/CMakeFiles/test_mapred.dir/mapred/test_job.cpp.o.d"
  "/root/repo/tests/mapred/test_mrmpi.cpp" "tests/CMakeFiles/test_mapred.dir/mapred/test_mrmpi.cpp.o" "gcc" "tests/CMakeFiles/test_mapred.dir/mapred/test_mrmpi.cpp.o.d"
  "/root/repo/tests/mapred/test_streaming_merge.cpp" "tests/CMakeFiles/test_mapred.dir/mapred/test_streaming_merge.cpp.o" "gcc" "tests/CMakeFiles/test_mapred.dir/mapred/test_streaming_merge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapred/CMakeFiles/mpid_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/core/mpid/CMakeFiles/mpid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
