file(REMOVE_RECURSE
  "CMakeFiles/test_mapred.dir/mapred/test_input_edges.cpp.o"
  "CMakeFiles/test_mapred.dir/mapred/test_input_edges.cpp.o.d"
  "CMakeFiles/test_mapred.dir/mapred/test_job.cpp.o"
  "CMakeFiles/test_mapred.dir/mapred/test_job.cpp.o.d"
  "CMakeFiles/test_mapred.dir/mapred/test_mrmpi.cpp.o"
  "CMakeFiles/test_mapred.dir/mapred/test_mrmpi.cpp.o.d"
  "CMakeFiles/test_mapred.dir/mapred/test_streaming_merge.cpp.o"
  "CMakeFiles/test_mapred.dir/mapred/test_streaming_merge.cpp.o.d"
  "test_mapred"
  "test_mapred.pdb"
  "test_mapred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
