
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minimpi/test_collectives.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_collectives.cpp.o.d"
  "/root/repo/tests/minimpi/test_failure.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_failure.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_failure.cpp.o.d"
  "/root/repo/tests/minimpi/test_nonblocking.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_nonblocking.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_nonblocking.cpp.o.d"
  "/root/repo/tests/minimpi/test_p2p.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_p2p.cpp.o.d"
  "/root/repo/tests/minimpi/test_pack.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_pack.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_pack.cpp.o.d"
  "/root/repo/tests/minimpi/test_property.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_property.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_property.cpp.o.d"
  "/root/repo/tests/minimpi/test_split.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_split.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_split.cpp.o.d"
  "/root/repo/tests/minimpi/test_ssend.cpp" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_ssend.cpp.o" "gcc" "tests/CMakeFiles/test_minimpi.dir/minimpi/test_ssend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
