file(REMOVE_RECURSE
  "CMakeFiles/test_minimpi.dir/minimpi/test_collectives.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_collectives.cpp.o.d"
  "CMakeFiles/test_minimpi.dir/minimpi/test_failure.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_failure.cpp.o.d"
  "CMakeFiles/test_minimpi.dir/minimpi/test_nonblocking.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_nonblocking.cpp.o.d"
  "CMakeFiles/test_minimpi.dir/minimpi/test_p2p.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_p2p.cpp.o.d"
  "CMakeFiles/test_minimpi.dir/minimpi/test_pack.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_pack.cpp.o.d"
  "CMakeFiles/test_minimpi.dir/minimpi/test_property.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_property.cpp.o.d"
  "CMakeFiles/test_minimpi.dir/minimpi/test_split.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_split.cpp.o.d"
  "CMakeFiles/test_minimpi.dir/minimpi/test_ssend.cpp.o"
  "CMakeFiles/test_minimpi.dir/minimpi/test_ssend.cpp.o.d"
  "test_minimpi"
  "test_minimpi.pdb"
  "test_minimpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
