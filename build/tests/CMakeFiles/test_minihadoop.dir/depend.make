# Empty dependencies file for test_minihadoop.
# This may be replaced when dependencies are built.
