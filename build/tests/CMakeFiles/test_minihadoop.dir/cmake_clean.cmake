file(REMOVE_RECURSE
  "CMakeFiles/test_minihadoop.dir/minihadoop/test_failures.cpp.o"
  "CMakeFiles/test_minihadoop.dir/minihadoop/test_failures.cpp.o.d"
  "CMakeFiles/test_minihadoop.dir/minihadoop/test_minihadoop.cpp.o"
  "CMakeFiles/test_minihadoop.dir/minihadoop/test_minihadoop.cpp.o.d"
  "CMakeFiles/test_minihadoop.dir/minihadoop/test_shapes.cpp.o"
  "CMakeFiles/test_minihadoop.dir/minihadoop/test_shapes.cpp.o.d"
  "test_minihadoop"
  "test_minihadoop.pdb"
  "test_minihadoop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minihadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
