
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_binary_stress.cpp" "tests/CMakeFiles/test_mpid.dir/core/test_binary_stress.cpp.o" "gcc" "tests/CMakeFiles/test_mpid.dir/core/test_binary_stress.cpp.o.d"
  "/root/repo/tests/core/test_capi_typed.cpp" "tests/CMakeFiles/test_mpid.dir/core/test_capi_typed.cpp.o" "gcc" "tests/CMakeFiles/test_mpid.dir/core/test_capi_typed.cpp.o.d"
  "/root/repo/tests/core/test_merge.cpp" "tests/CMakeFiles/test_mpid.dir/core/test_merge.cpp.o" "gcc" "tests/CMakeFiles/test_mpid.dir/core/test_merge.cpp.o.d"
  "/root/repo/tests/core/test_mpid.cpp" "tests/CMakeFiles/test_mpid.dir/core/test_mpid.cpp.o" "gcc" "tests/CMakeFiles/test_mpid.dir/core/test_mpid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/mpid/CMakeFiles/mpid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
