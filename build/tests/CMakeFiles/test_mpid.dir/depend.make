# Empty dependencies file for test_mpid.
# This may be replaced when dependencies are built.
