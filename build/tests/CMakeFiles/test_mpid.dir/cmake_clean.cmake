file(REMOVE_RECURSE
  "CMakeFiles/test_mpid.dir/core/test_binary_stress.cpp.o"
  "CMakeFiles/test_mpid.dir/core/test_binary_stress.cpp.o.d"
  "CMakeFiles/test_mpid.dir/core/test_capi_typed.cpp.o"
  "CMakeFiles/test_mpid.dir/core/test_capi_typed.cpp.o.d"
  "CMakeFiles/test_mpid.dir/core/test_merge.cpp.o"
  "CMakeFiles/test_mpid.dir/core/test_merge.cpp.o.d"
  "CMakeFiles/test_mpid.dir/core/test_mpid.cpp.o"
  "CMakeFiles/test_mpid.dir/core/test_mpid.cpp.o.d"
  "test_mpid"
  "test_mpid.pdb"
  "test_mpid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
