# Empty compiler generated dependencies file for test_hrpc.
# This may be replaced when dependencies are built.
