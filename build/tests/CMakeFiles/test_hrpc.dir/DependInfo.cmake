
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hrpc/test_fuzz.cpp" "tests/CMakeFiles/test_hrpc.dir/hrpc/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_hrpc.dir/hrpc/test_fuzz.cpp.o.d"
  "/root/repo/tests/hrpc/test_rpc_http.cpp" "tests/CMakeFiles/test_hrpc.dir/hrpc/test_rpc_http.cpp.o" "gcc" "tests/CMakeFiles/test_hrpc.dir/hrpc/test_rpc_http.cpp.o.d"
  "/root/repo/tests/hrpc/test_stream_pipe.cpp" "tests/CMakeFiles/test_hrpc.dir/hrpc/test_stream_pipe.cpp.o" "gcc" "tests/CMakeFiles/test_hrpc.dir/hrpc/test_stream_pipe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hrpc/CMakeFiles/mpid_hrpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
