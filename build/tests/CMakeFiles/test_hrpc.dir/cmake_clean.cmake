file(REMOVE_RECURSE
  "CMakeFiles/test_hrpc.dir/hrpc/test_fuzz.cpp.o"
  "CMakeFiles/test_hrpc.dir/hrpc/test_fuzz.cpp.o.d"
  "CMakeFiles/test_hrpc.dir/hrpc/test_rpc_http.cpp.o"
  "CMakeFiles/test_hrpc.dir/hrpc/test_rpc_http.cpp.o.d"
  "CMakeFiles/test_hrpc.dir/hrpc/test_stream_pipe.cpp.o"
  "CMakeFiles/test_hrpc.dir/hrpc/test_stream_pipe.cpp.o.d"
  "test_hrpc"
  "test_hrpc.pdb"
  "test_hrpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
