file(REMOVE_RECURSE
  "CMakeFiles/mrmpi_degrees.dir/mrmpi_degrees.cpp.o"
  "CMakeFiles/mrmpi_degrees.dir/mrmpi_degrees.cpp.o.d"
  "mrmpi_degrees"
  "mrmpi_degrees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmpi_degrees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
