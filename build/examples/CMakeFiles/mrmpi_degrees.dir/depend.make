# Empty dependencies file for mrmpi_degrees.
# This may be replaced when dependencies are built.
