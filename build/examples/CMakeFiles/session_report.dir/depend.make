# Empty dependencies file for session_report.
# This may be replaced when dependencies are built.
