file(REMOVE_RECURSE
  "CMakeFiles/session_report.dir/session_report.cpp.o"
  "CMakeFiles/session_report.dir/session_report.cpp.o.d"
  "session_report"
  "session_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
