# Empty compiler generated dependencies file for session_report.
# This may be replaced when dependencies are built.
