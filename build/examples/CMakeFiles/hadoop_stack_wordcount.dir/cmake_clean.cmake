file(REMOVE_RECURSE
  "CMakeFiles/hadoop_stack_wordcount.dir/hadoop_stack_wordcount.cpp.o"
  "CMakeFiles/hadoop_stack_wordcount.dir/hadoop_stack_wordcount.cpp.o.d"
  "hadoop_stack_wordcount"
  "hadoop_stack_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_stack_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
