# Empty dependencies file for hadoop_stack_wordcount.
# This may be replaced when dependencies are built.
