# Empty dependencies file for join.
# This may be replaced when dependencies are built.
