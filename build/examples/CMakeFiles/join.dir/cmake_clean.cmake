file(REMOVE_RECURSE
  "CMakeFiles/join.dir/join.cpp.o"
  "CMakeFiles/join.dir/join.cpp.o.d"
  "join"
  "join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
