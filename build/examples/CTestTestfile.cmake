# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inverted_index "/root/repo/build/examples/inverted_index")
set_tests_properties(example_inverted_index PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_terasort "/root/repo/build/examples/terasort")
set_tests_properties(example_terasort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mrmpi_degrees "/root/repo/build/examples/mrmpi_degrees")
set_tests_properties(example_mrmpi_degrees PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_join "/root/repo/build/examples/join")
set_tests_properties(example_join PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pagerank "/root/repo/build/examples/pagerank")
set_tests_properties(example_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hadoop_stack_wordcount "/root/repo/build/examples/hadoop_stack_wordcount")
set_tests_properties(example_hadoop_stack_wordcount PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_session_report "/root/repo/build/examples/session_report")
set_tests_properties(example_session_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
