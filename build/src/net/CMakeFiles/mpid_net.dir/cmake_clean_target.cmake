file(REMOVE_RECURSE
  "libmpid_net.a"
)
