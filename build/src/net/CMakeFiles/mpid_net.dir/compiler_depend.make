# Empty compiler generated dependencies file for mpid_net.
# This may be replaced when dependencies are built.
