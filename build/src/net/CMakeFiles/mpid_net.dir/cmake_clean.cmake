file(REMOVE_RECURSE
  "CMakeFiles/mpid_net.dir/src/fabric.cpp.o"
  "CMakeFiles/mpid_net.dir/src/fabric.cpp.o.d"
  "libmpid_net.a"
  "libmpid_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
