# Empty dependencies file for mpid_dfs.
# This may be replaced when dependencies are built.
