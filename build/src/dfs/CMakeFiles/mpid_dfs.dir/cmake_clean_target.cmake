file(REMOVE_RECURSE
  "libmpid_dfs.a"
)
