file(REMOVE_RECURSE
  "CMakeFiles/mpid_dfs.dir/src/minidfs.cpp.o"
  "CMakeFiles/mpid_dfs.dir/src/minidfs.cpp.o.d"
  "libmpid_dfs.a"
  "libmpid_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
