file(REMOVE_RECURSE
  "libmpid_common.a"
)
