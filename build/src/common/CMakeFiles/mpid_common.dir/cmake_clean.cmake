file(REMOVE_RECURSE
  "CMakeFiles/mpid_common.dir/src/kvframe.cpp.o"
  "CMakeFiles/mpid_common.dir/src/kvframe.cpp.o.d"
  "CMakeFiles/mpid_common.dir/src/stats.cpp.o"
  "CMakeFiles/mpid_common.dir/src/stats.cpp.o.d"
  "CMakeFiles/mpid_common.dir/src/table.cpp.o"
  "CMakeFiles/mpid_common.dir/src/table.cpp.o.d"
  "CMakeFiles/mpid_common.dir/src/units.cpp.o"
  "CMakeFiles/mpid_common.dir/src/units.cpp.o.d"
  "CMakeFiles/mpid_common.dir/src/zipf.cpp.o"
  "CMakeFiles/mpid_common.dir/src/zipf.cpp.o.d"
  "libmpid_common.a"
  "libmpid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
