# Empty compiler generated dependencies file for mpid_common.
# This may be replaced when dependencies are built.
