file(REMOVE_RECURSE
  "CMakeFiles/mpid_minimpi.dir/src/comm.cpp.o"
  "CMakeFiles/mpid_minimpi.dir/src/comm.cpp.o.d"
  "CMakeFiles/mpid_minimpi.dir/src/request.cpp.o"
  "CMakeFiles/mpid_minimpi.dir/src/request.cpp.o.d"
  "CMakeFiles/mpid_minimpi.dir/src/world.cpp.o"
  "CMakeFiles/mpid_minimpi.dir/src/world.cpp.o.d"
  "libmpid_minimpi.a"
  "libmpid_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
