file(REMOVE_RECURSE
  "libmpid_minimpi.a"
)
