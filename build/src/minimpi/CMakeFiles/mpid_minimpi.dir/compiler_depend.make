# Empty compiler generated dependencies file for mpid_minimpi.
# This may be replaced when dependencies are built.
