file(REMOVE_RECURSE
  "CMakeFiles/mpid_core.dir/src/capi.cpp.o"
  "CMakeFiles/mpid_core.dir/src/capi.cpp.o.d"
  "CMakeFiles/mpid_core.dir/src/merge.cpp.o"
  "CMakeFiles/mpid_core.dir/src/merge.cpp.o.d"
  "CMakeFiles/mpid_core.dir/src/mpid.cpp.o"
  "CMakeFiles/mpid_core.dir/src/mpid.cpp.o.d"
  "libmpid_core.a"
  "libmpid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
