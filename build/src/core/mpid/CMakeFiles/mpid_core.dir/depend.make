# Empty dependencies file for mpid_core.
# This may be replaced when dependencies are built.
