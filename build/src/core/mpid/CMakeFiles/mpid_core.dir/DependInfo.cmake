
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mpid/src/capi.cpp" "src/core/mpid/CMakeFiles/mpid_core.dir/src/capi.cpp.o" "gcc" "src/core/mpid/CMakeFiles/mpid_core.dir/src/capi.cpp.o.d"
  "/root/repo/src/core/mpid/src/merge.cpp" "src/core/mpid/CMakeFiles/mpid_core.dir/src/merge.cpp.o" "gcc" "src/core/mpid/CMakeFiles/mpid_core.dir/src/merge.cpp.o.d"
  "/root/repo/src/core/mpid/src/mpid.cpp" "src/core/mpid/CMakeFiles/mpid_core.dir/src/mpid.cpp.o" "gcc" "src/core/mpid/CMakeFiles/mpid_core.dir/src/mpid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
