file(REMOVE_RECURSE
  "libmpid_core.a"
)
