
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/src/models.cpp" "src/proto/CMakeFiles/mpid_proto.dir/src/models.cpp.o" "gcc" "src/proto/CMakeFiles/mpid_proto.dir/src/models.cpp.o.d"
  "/root/repo/src/proto/src/profiles.cpp" "src/proto/CMakeFiles/mpid_proto.dir/src/profiles.cpp.o" "gcc" "src/proto/CMakeFiles/mpid_proto.dir/src/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mpid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
