file(REMOVE_RECURSE
  "CMakeFiles/mpid_proto.dir/src/models.cpp.o"
  "CMakeFiles/mpid_proto.dir/src/models.cpp.o.d"
  "CMakeFiles/mpid_proto.dir/src/profiles.cpp.o"
  "CMakeFiles/mpid_proto.dir/src/profiles.cpp.o.d"
  "libmpid_proto.a"
  "libmpid_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
