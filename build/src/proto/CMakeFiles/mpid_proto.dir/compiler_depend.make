# Empty compiler generated dependencies file for mpid_proto.
# This may be replaced when dependencies are built.
