file(REMOVE_RECURSE
  "libmpid_proto.a"
)
