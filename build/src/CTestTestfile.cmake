# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("proto")
subdirs("minimpi")
subdirs("core/mpid")
subdirs("mapred")
subdirs("dfs")
subdirs("hrpc")
subdirs("minihadoop")
subdirs("hadoop")
subdirs("mpidsim")
subdirs("workloads")
