# Empty compiler generated dependencies file for mpid_mpidsim.
# This may be replaced when dependencies are built.
