file(REMOVE_RECURSE
  "libmpid_mpidsim.a"
)
