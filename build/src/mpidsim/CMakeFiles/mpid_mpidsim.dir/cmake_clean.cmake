file(REMOVE_RECURSE
  "CMakeFiles/mpid_mpidsim.dir/src/system.cpp.o"
  "CMakeFiles/mpid_mpidsim.dir/src/system.cpp.o.d"
  "libmpid_mpidsim.a"
  "libmpid_mpidsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_mpidsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
