file(REMOVE_RECURSE
  "libmpid_workloads.a"
)
