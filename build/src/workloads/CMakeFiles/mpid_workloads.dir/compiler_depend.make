# Empty compiler generated dependencies file for mpid_workloads.
# This may be replaced when dependencies are built.
