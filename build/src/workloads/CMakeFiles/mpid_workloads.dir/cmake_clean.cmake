file(REMOVE_RECURSE
  "CMakeFiles/mpid_workloads.dir/src/gridmix.cpp.o"
  "CMakeFiles/mpid_workloads.dir/src/gridmix.cpp.o.d"
  "CMakeFiles/mpid_workloads.dir/src/presets.cpp.o"
  "CMakeFiles/mpid_workloads.dir/src/presets.cpp.o.d"
  "CMakeFiles/mpid_workloads.dir/src/text.cpp.o"
  "CMakeFiles/mpid_workloads.dir/src/text.cpp.o.d"
  "libmpid_workloads.a"
  "libmpid_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
