# Empty compiler generated dependencies file for mpid_sim.
# This may be replaced when dependencies are built.
