file(REMOVE_RECURSE
  "CMakeFiles/mpid_sim.dir/src/engine.cpp.o"
  "CMakeFiles/mpid_sim.dir/src/engine.cpp.o.d"
  "libmpid_sim.a"
  "libmpid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
