file(REMOVE_RECURSE
  "libmpid_sim.a"
)
