# Empty compiler generated dependencies file for mpid_hadoop.
# This may be replaced when dependencies are built.
