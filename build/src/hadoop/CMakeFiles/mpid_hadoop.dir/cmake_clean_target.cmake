file(REMOVE_RECURSE
  "libmpid_hadoop.a"
)
