file(REMOVE_RECURSE
  "CMakeFiles/mpid_hadoop.dir/src/cluster.cpp.o"
  "CMakeFiles/mpid_hadoop.dir/src/cluster.cpp.o.d"
  "CMakeFiles/mpid_hadoop.dir/src/hdfs.cpp.o"
  "CMakeFiles/mpid_hadoop.dir/src/hdfs.cpp.o.d"
  "CMakeFiles/mpid_hadoop.dir/src/spec.cpp.o"
  "CMakeFiles/mpid_hadoop.dir/src/spec.cpp.o.d"
  "libmpid_hadoop.a"
  "libmpid_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
