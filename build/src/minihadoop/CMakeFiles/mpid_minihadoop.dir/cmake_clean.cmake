file(REMOVE_RECURSE
  "CMakeFiles/mpid_minihadoop.dir/src/minihadoop.cpp.o"
  "CMakeFiles/mpid_minihadoop.dir/src/minihadoop.cpp.o.d"
  "libmpid_minihadoop.a"
  "libmpid_minihadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_minihadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
