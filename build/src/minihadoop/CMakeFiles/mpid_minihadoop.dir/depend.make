# Empty dependencies file for mpid_minihadoop.
# This may be replaced when dependencies are built.
