file(REMOVE_RECURSE
  "libmpid_minihadoop.a"
)
