# Empty compiler generated dependencies file for mpid_hrpc.
# This may be replaced when dependencies are built.
