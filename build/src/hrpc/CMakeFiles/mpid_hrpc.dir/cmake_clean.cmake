file(REMOVE_RECURSE
  "CMakeFiles/mpid_hrpc.dir/src/http.cpp.o"
  "CMakeFiles/mpid_hrpc.dir/src/http.cpp.o.d"
  "CMakeFiles/mpid_hrpc.dir/src/rpc.cpp.o"
  "CMakeFiles/mpid_hrpc.dir/src/rpc.cpp.o.d"
  "libmpid_hrpc.a"
  "libmpid_hrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_hrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
