file(REMOVE_RECURSE
  "libmpid_hrpc.a"
)
