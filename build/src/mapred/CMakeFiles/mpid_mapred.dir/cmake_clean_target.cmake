file(REMOVE_RECURSE
  "libmpid_mapred.a"
)
