# Empty dependencies file for mpid_mapred.
# This may be replaced when dependencies are built.
