
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/src/input.cpp" "src/mapred/CMakeFiles/mpid_mapred.dir/src/input.cpp.o" "gcc" "src/mapred/CMakeFiles/mpid_mapred.dir/src/input.cpp.o.d"
  "/root/repo/src/mapred/src/job.cpp" "src/mapred/CMakeFiles/mpid_mapred.dir/src/job.cpp.o" "gcc" "src/mapred/CMakeFiles/mpid_mapred.dir/src/job.cpp.o.d"
  "/root/repo/src/mapred/src/mrmpi.cpp" "src/mapred/CMakeFiles/mpid_mapred.dir/src/mrmpi.cpp.o" "gcc" "src/mapred/CMakeFiles/mpid_mapred.dir/src/mrmpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/mpid/CMakeFiles/mpid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
