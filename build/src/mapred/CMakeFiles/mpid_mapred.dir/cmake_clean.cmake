file(REMOVE_RECURSE
  "CMakeFiles/mpid_mapred.dir/src/input.cpp.o"
  "CMakeFiles/mpid_mapred.dir/src/input.cpp.o.d"
  "CMakeFiles/mpid_mapred.dir/src/job.cpp.o"
  "CMakeFiles/mpid_mapred.dir/src/job.cpp.o.d"
  "CMakeFiles/mpid_mapred.dir/src/mrmpi.cpp.o"
  "CMakeFiles/mpid_mapred.dir/src/mrmpi.cpp.o.d"
  "libmpid_mapred.a"
  "libmpid_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpid_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
