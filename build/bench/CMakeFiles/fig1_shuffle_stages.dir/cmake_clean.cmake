file(REMOVE_RECURSE
  "CMakeFiles/fig1_shuffle_stages.dir/fig1_shuffle_stages.cpp.o"
  "CMakeFiles/fig1_shuffle_stages.dir/fig1_shuffle_stages.cpp.o.d"
  "fig1_shuffle_stages"
  "fig1_shuffle_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_shuffle_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
