# Empty dependencies file for fig1_shuffle_stages.
# This may be replaced when dependencies are built.
