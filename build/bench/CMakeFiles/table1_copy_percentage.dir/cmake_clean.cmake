file(REMOVE_RECURSE
  "CMakeFiles/table1_copy_percentage.dir/table1_copy_percentage.cpp.o"
  "CMakeFiles/table1_copy_percentage.dir/table1_copy_percentage.cpp.o.d"
  "table1_copy_percentage"
  "table1_copy_percentage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_copy_percentage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
