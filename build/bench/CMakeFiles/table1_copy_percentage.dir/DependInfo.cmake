
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_copy_percentage.cpp" "bench/CMakeFiles/table1_copy_percentage.dir/table1_copy_percentage.cpp.o" "gcc" "bench/CMakeFiles/table1_copy_percentage.dir/table1_copy_percentage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hadoop/CMakeFiles/mpid_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mpid_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/mpid_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/core/mpid/CMakeFiles/mpid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/mpid_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/mpidsim/CMakeFiles/mpid_mpidsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/mpid_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mpid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
