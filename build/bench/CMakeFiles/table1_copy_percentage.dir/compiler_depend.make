# Empty compiler generated dependencies file for table1_copy_percentage.
# This may be replaced when dependencies are built.
