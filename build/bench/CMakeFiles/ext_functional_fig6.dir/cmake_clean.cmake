file(REMOVE_RECURSE
  "CMakeFiles/ext_functional_fig6.dir/ext_functional_fig6.cpp.o"
  "CMakeFiles/ext_functional_fig6.dir/ext_functional_fig6.cpp.o.d"
  "ext_functional_fig6"
  "ext_functional_fig6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_functional_fig6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
