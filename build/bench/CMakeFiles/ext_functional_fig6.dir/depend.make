# Empty dependencies file for ext_functional_fig6.
# This may be replaced when dependencies are built.
