# Empty dependencies file for ext_interconnects.
# This may be replaced when dependencies are built.
