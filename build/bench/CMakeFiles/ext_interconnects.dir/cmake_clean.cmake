file(REMOVE_RECURSE
  "CMakeFiles/ext_interconnects.dir/ext_interconnects.cpp.o"
  "CMakeFiles/ext_interconnects.dir/ext_interconnects.cpp.o.d"
  "ext_interconnects"
  "ext_interconnects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
