file(REMOVE_RECURSE
  "CMakeFiles/ablation_mpid_tuning.dir/ablation_mpid_tuning.cpp.o"
  "CMakeFiles/ablation_mpid_tuning.dir/ablation_mpid_tuning.cpp.o.d"
  "ablation_mpid_tuning"
  "ablation_mpid_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mpid_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
