# Empty dependencies file for ablation_mpid_tuning.
# This may be replaced when dependencies are built.
