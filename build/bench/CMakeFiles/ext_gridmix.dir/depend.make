# Empty dependencies file for ext_gridmix.
# This may be replaced when dependencies are built.
