file(REMOVE_RECURSE
  "CMakeFiles/ext_gridmix.dir/ext_gridmix.cpp.o"
  "CMakeFiles/ext_gridmix.dir/ext_gridmix.cpp.o.d"
  "ext_gridmix"
  "ext_gridmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gridmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
