file(REMOVE_RECURSE
  "CMakeFiles/micro_mpid.dir/micro_mpid.cpp.o"
  "CMakeFiles/micro_mpid.dir/micro_mpid.cpp.o.d"
  "micro_mpid"
  "micro_mpid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mpid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
