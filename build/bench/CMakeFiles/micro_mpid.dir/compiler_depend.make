# Empty compiler generated dependencies file for micro_mpid.
# This may be replaced when dependencies are built.
