# Empty dependencies file for ext_interconnect_shuffle.
# This may be replaced when dependencies are built.
