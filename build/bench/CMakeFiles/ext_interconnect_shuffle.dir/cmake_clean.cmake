file(REMOVE_RECURSE
  "CMakeFiles/ext_interconnect_shuffle.dir/ext_interconnect_shuffle.cpp.o"
  "CMakeFiles/ext_interconnect_shuffle.dir/ext_interconnect_shuffle.cpp.o.d"
  "ext_interconnect_shuffle"
  "ext_interconnect_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_interconnect_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
