file(REMOVE_RECURSE
  "CMakeFiles/fig6_wordcount.dir/fig6_wordcount.cpp.o"
  "CMakeFiles/fig6_wordcount.dir/fig6_wordcount.cpp.o.d"
  "fig6_wordcount"
  "fig6_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
