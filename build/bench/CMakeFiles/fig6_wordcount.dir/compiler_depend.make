# Empty compiler generated dependencies file for fig6_wordcount.
# This may be replaced when dependencies are built.
