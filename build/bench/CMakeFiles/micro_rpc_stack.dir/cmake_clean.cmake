file(REMOVE_RECURSE
  "CMakeFiles/micro_rpc_stack.dir/micro_rpc_stack.cpp.o"
  "CMakeFiles/micro_rpc_stack.dir/micro_rpc_stack.cpp.o.d"
  "micro_rpc_stack"
  "micro_rpc_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rpc_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
