# Empty dependencies file for ext_mpid_scalability.
# This may be replaced when dependencies are built.
