file(REMOVE_RECURSE
  "CMakeFiles/ext_mpid_scalability.dir/ext_mpid_scalability.cpp.o"
  "CMakeFiles/ext_mpid_scalability.dir/ext_mpid_scalability.cpp.o.d"
  "ext_mpid_scalability"
  "ext_mpid_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mpid_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
