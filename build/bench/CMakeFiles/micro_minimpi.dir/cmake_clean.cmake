file(REMOVE_RECURSE
  "CMakeFiles/micro_minimpi.dir/micro_minimpi.cpp.o"
  "CMakeFiles/micro_minimpi.dir/micro_minimpi.cpp.o.d"
  "micro_minimpi"
  "micro_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
