# Empty compiler generated dependencies file for micro_minimpi.
# This may be replaced when dependencies are built.
