// Iterative PageRank over chained MapReduce rounds — the Twister-style
// iterative workload the paper's related work discusses, here on the
// MR-MPI baseline library (whose chained map/collate/reduce rounds fit
// iteration naturally).
//
// Each iteration: map emits (dst, rank/out_degree) contributions plus a
// (src, graph-structure) record; reduce recombines structure with the new
// rank. Damping 0.85, 10 iterations on a small deterministic graph.
//
// Build & run:  ./examples/pagerank
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "mpid/common/prng.hpp"
#include "mpid/mapred/mrmpi.hpp"
#include "mpid/minimpi/world.hpp"

namespace {

constexpr int kVertices = 64;
constexpr double kDamping = 0.85;
constexpr int kIterations = 10;

/// Deterministic sparse graph: each vertex links to 3 pseudo-random
/// targets.
std::vector<int> out_links(int v) {
  mpid::common::Xoshiro256StarStar rng(7000 + static_cast<std::uint64_t>(v));
  std::vector<int> targets;
  for (int i = 0; i < 3; ++i) {
    targets.push_back(static_cast<int>(rng.next_below(kVertices)));
  }
  return targets;
}

std::string encode_links(const std::vector<int>& links) {
  std::string s = "L";
  for (const int t : links) s += ":" + std::to_string(t);
  return s;
}

std::vector<int> decode_links(std::string_view s) {
  std::vector<int> links;
  std::size_t pos = 2;  // skip "L:"
  while (pos <= s.size()) {
    const auto colon = s.find(':', pos);
    const auto token = s.substr(pos, colon == std::string_view::npos
                                         ? s.size() - pos
                                         : colon - pos);
    links.push_back(std::stoi(std::string(token)));
    if (colon == std::string_view::npos) break;
    pos = colon + 1;
  }
  return links;
}

}  // namespace

int main() {
  using namespace mpid;

  minimpi::run_world(4, [](minimpi::Comm& comm) {
    // Rank state lives distributed: each MR round's KV buffer carries
    // (vertex, "R:<rank>") and (vertex, "L:<targets>") records.
    mapred::mrmpi::MapReduce mr(comm);

    // Bootstrap: every vertex starts at rank 1/N alongside its links.
    mr.map(kVertices, [](int v, mapred::mrmpi::Emitter& out) {
      out.emit("v" + std::to_string(v),
               "R:" + std::to_string(1.0 / kVertices));
      out.emit("v" + std::to_string(v), encode_links(out_links(v)));
    });

    for (int iter = 0; iter < kIterations; ++iter) {
      // Group (rank, links) per vertex, then scatter contributions.
      mr.collate();
      mr.reduce([](std::string_view vertex,
                   std::span<const std::string> records,
                   mapred::mrmpi::Emitter& out) {
        double rank = 0;
        std::vector<int> links;
        for (const auto& r : records) {
          if (r[0] == 'R') {
            rank += std::stod(r.substr(2));
          } else {
            links = decode_links(r);
          }
        }
        // Re-emit structure, then spread rank over the out-links.
        out.emit(vertex, encode_links(links));
        const double share = kDamping * rank / static_cast<double>(links.size());
        for (const int t : links) {
          out.emit("v" + std::to_string(t), "R:" + std::to_string(share));
        }
        // Teleport term goes back to this vertex.
        out.emit(vertex,
                 "R:" + std::to_string((1.0 - kDamping) / kVertices));
      });
    }

    // Final aggregation: total rank per vertex.
    mr.collate();
    mr.reduce([](std::string_view vertex, std::span<const std::string> records,
                 mapred::mrmpi::Emitter& out) {
      double rank = 0;
      for (const auto& r : records) {
        if (r[0] == 'R') rank += std::stod(r.substr(2));
      }
      out.emit(vertex, std::to_string(rank));
    });

    const auto ranks = mr.gather(0);
    if (comm.rank() == 0) {
      double total = 0;
      std::vector<std::pair<double, std::string>> top;
      for (const auto& [v, r] : ranks) {
        const double value = std::stod(r);
        total += value;
        top.emplace_back(value, v);
      }
      std::sort(top.rbegin(), top.rend());
      std::printf("pagerank over %d vertices, %d iterations (4 ranks):\n",
                  kVertices, kIterations);
      std::printf("  mass conservation: total rank = %.4f (expect ~1)\n",
                  total);
      std::printf("  top 5:\n");
      for (int i = 0; i < 5; ++i) {
        std::printf("    %-4s %.5f\n", top[static_cast<std::size_t>(i)].second.c_str(),
                    top[static_cast<std::size_t>(i)].first);
      }
    }
  });
  return 0;
}
