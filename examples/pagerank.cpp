// Iterative PageRank, twice over the same deterministic directed graph:
//
//   1. on mapred::JobChain — the resident-partition chain API. The graph
//      structure is the pinned static channel (realigned once, never
//      re-shuffled), the rank vector lives in the reducer partitions
//      between rounds, and each iteration is one chained round with no
//      re-ingest. Ranks are scaled integers (units of 1e-6), so every
//      executor computes bit-identical results.
//
//   2. on the MR-MPI baseline library (map/collate/reduce rounds with the
//      graph structure re-shuffled alongside the ranks every iteration) —
//      the Twister-style formulation the paper's related work discusses,
//      kept as the parity reference in double precision.
//
// The two must agree to ~1e-4 per vertex (integer truncation only).
//
// Build & run:  ./examples/pagerank
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "mpid/common/prng.hpp"
#include "mpid/mapred/chain.hpp"
#include "mpid/mapred/mrmpi.hpp"
#include "mpid/minimpi/world.hpp"

namespace {

constexpr int kVertices = 64;
constexpr double kDamping = 0.85;
constexpr int kIterations = 10;
constexpr std::uint64_t kScale = 1000000;  // rank units of 1e-6

/// Deterministic sparse graph: each vertex links to 3 pseudo-random
/// targets (duplicates and self-links possible — both formulations must
/// treat them identically).
std::vector<int> out_links(int v) {
  mpid::common::Xoshiro256StarStar rng(7000 + static_cast<std::uint64_t>(v));
  std::vector<int> targets;
  for (int i = 0; i < 3; ++i) {
    targets.push_back(static_cast<int>(rng.next_below(kVertices)));
  }
  return targets;
}

std::string vertex(int v) { return "v" + std::to_string(v); }

std::string encode_links(const std::vector<int>& links) {
  std::string s = "L";
  for (const int t : links) s += ":" + std::to_string(t);
  return s;
}

std::vector<int> decode_links(std::string_view s) {
  std::vector<int> links;
  std::size_t pos = 2;  // skip "L:"
  while (pos <= s.size()) {
    const auto colon = s.find(':', pos);
    const auto token = s.substr(pos, colon == std::string_view::npos
                                         ? s.size() - pos
                                         : colon - pos);
    links.push_back(std::stoi(std::string(token)));
    if (colon == std::string_view::npos) break;
    pos = colon + 1;
  }
  return links;
}

/// PageRank on the chain API: ranks come back as (vertex, scaled
/// integer), exactly reproducible.
std::map<std::string, std::uint64_t> run_chain() {
  using namespace mpid;
  mapred::ChainJob job;
  std::string input;
  for (int v = 0; v < kVertices; ++v) {
    input += vertex(v) + "\n";
    for (const int t : out_links(v)) {
      job.static_input.emplace_back(vertex(v), vertex(t));
    }
  }
  job.ingest = [](std::string_view line, mapred::MapContext& ctx) {
    ctx.emit(line, "R");
  };
  mapred::ChainStage iterate;
  iterate.name = "pagerank";
  iterate.map = [](std::string_view key, std::string_view rank,
                   mapred::ChainMapContext& ctx) {
    ctx.emit(key, "=");
    if (rank == "R") return;
    const auto* links = ctx.statics(key);
    if (links == nullptr || links->empty()) return;
    // share = d * rank / out_degree, in scaled-integer arithmetic.
    const std::uint64_t share =
        85 * std::stoull(std::string(rank)) / (100 * links->size());
    const std::string msg = ">" + std::to_string(share);
    for (const auto& target : *links) ctx.emit(target, msg);
  };
  iterate.reduce = [](std::string_view key, std::vector<std::string>& values,
                      mapred::ChainReduceContext& ctx) {
    bool init = false;
    std::uint64_t sum = 0;
    for (const auto& value : values) {
      if (value == "R") init = true;
      if (value[0] == '>') sum += std::stoull(value.substr(1));
    }
    if (init) {
      ctx.emit(key, std::to_string(kScale / kVertices));
      return;
    }
    ctx.emit(key, std::to_string(15 * kScale / (100 * kVertices) + sum));
  };
  iterate.max_rounds = kIterations + 1;  // seed round + iterations
  job.stages.push_back(std::move(iterate));

  const auto result = mapred::JobChain(4).run_on_text(job, input);
  std::map<std::string, std::uint64_t> ranks;
  for (const auto& [v, r] : result.outputs) ranks[v] = std::stoull(r);
  return ranks;
}

/// The original MR-MPI formulation, double precision: the parity
/// reference.
std::map<std::string, double> run_mrmpi() {
  using namespace mpid;
  std::map<std::string, double> ranks;
  minimpi::run_world(4, [&ranks](minimpi::Comm& comm) {
    mapred::mrmpi::MapReduce mr(comm);

    // Bootstrap: every vertex starts at rank 1/N alongside its links.
    mr.map(kVertices, [](int v, mapred::mrmpi::Emitter& out) {
      out.emit(vertex(v), "R:" + std::to_string(1.0 / kVertices));
      out.emit(vertex(v), encode_links(out_links(v)));
    });

    for (int iter = 0; iter < kIterations; ++iter) {
      // Group (rank, links) per vertex, then scatter contributions. Note
      // the structural records travel through every collate — exactly the
      // re-shuffle of static data the chain's pinned statics avoid.
      mr.collate();
      mr.reduce([](std::string_view v, std::span<const std::string> records,
                   mapred::mrmpi::Emitter& out) {
        double rank = 0;
        std::vector<int> links;
        for (const auto& r : records) {
          if (r[0] == 'R') {
            rank += std::stod(r.substr(2));
          } else {
            links = decode_links(r);
          }
        }
        out.emit(v, encode_links(links));
        const double share =
            kDamping * rank / static_cast<double>(links.size());
        for (const int t : links) {
          out.emit(vertex(t), "R:" + std::to_string(share));
        }
        out.emit(v, "R:" + std::to_string((1.0 - kDamping) / kVertices));
      });
    }

    mr.collate();
    mr.reduce([](std::string_view v, std::span<const std::string> records,
                 mapred::mrmpi::Emitter& out) {
      double rank = 0;
      for (const auto& r : records) {
        if (r[0] == 'R') rank += std::stod(r.substr(2));
      }
      out.emit(v, std::to_string(rank));
    });

    const auto gathered = mr.gather(0);
    if (comm.rank() == 0) {
      for (const auto& [v, r] : gathered) ranks[v] = std::stod(r);
    }
  });
  return ranks;
}

}  // namespace

int main() {
  const auto chain = run_chain();
  const auto reference = run_mrmpi();

  double total = 0;
  double worst = 0;
  std::vector<std::pair<std::uint64_t, std::string>> top;
  for (const auto& [v, scaled] : chain) {
    const double rank = static_cast<double>(scaled) / kScale;
    total += rank;
    worst = std::max(worst, std::abs(rank - reference.at(v)));
    top.emplace_back(scaled, v);
  }
  std::sort(top.rbegin(), top.rend());

  std::printf("pagerank over %d vertices, %d chained rounds (4 partitions):\n",
              kVertices, kIterations);
  std::printf("  mass conservation: total rank = %.4f (expect ~1)\n", total);
  std::printf("  max |chain - mrmpi| = %.2e (integer truncation only)\n",
              worst);
  std::printf("  top 5:\n");
  for (int i = 0; i < 5; ++i) {
    const auto& [scaled, v] = top[static_cast<std::size_t>(i)];
    std::printf("    %-4s %.5f\n", v.c_str(),
                static_cast<double>(scaled) / kScale);
  }
  if (chain.size() != static_cast<std::size_t>(kVertices) || worst > 1e-4) {
    std::fprintf(stderr, "parity check failed\n");
    return 1;
  }
  return 0;
}
