// Reduce-side equi-join on the mapred layer — the classic data-warehouse
// pattern the paper's motivation cites (PB-scale Internet-services
// analytics, RCFile reference [2]).
//
// Inputs: an "orders" table (order_id, user_id, amount) and a "users"
// table (user_id, country). Join key: user_id. The map side tags each
// record with its table; the reduce side pairs them and aggregates
// revenue per country.
//
// Build & run:  ./examples/join
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "mpid/mapred/job.hpp"

int main() {
  using namespace mpid;

  const std::vector<std::string> users = {
      "u1,DE", "u2,CN", "u3,US", "u4,CN", "u5,DE",
  };
  const std::vector<std::string> orders = {
      "o1,u2,30", "o2,u1,10", "o3,u2,25", "o4,u3,40",
      "o5,u5,15", "o6,u4,20", "o7,u2,35", "o8,u1,50",
  };

  mapred::JobDef join;
  join.map = [](std::string_view record, mapred::MapContext& ctx) {
    // Records are pre-tagged: "U|user row" or "O|order row".
    const char table = record[0];
    const auto row = record.substr(2);
    if (table == 'U') {
      const auto comma = row.find(',');
      // key: user_id, value: "U:<country>"
      ctx.emit(row.substr(0, comma), "U:" + std::string(row.substr(comma + 1)));
    } else {
      const auto c1 = row.find(',');
      const auto c2 = row.find(',', c1 + 1);
      // key: user_id, value: "O:<amount>"
      ctx.emit(row.substr(c1 + 1, c2 - c1 - 1),
               "O:" + std::string(row.substr(c2 + 1)));
    }
  };
  join.reduce = [](std::string_view user,
                   std::span<const std::string> tagged,
                   mapred::ReduceContext& ctx) {
    std::string country = "?";
    long revenue = 0;
    for (const auto& t : tagged) {
      if (t[0] == 'U') {
        country = t.substr(2);
      } else {
        revenue += std::stol(t.substr(2));
      }
    }
    if (revenue > 0) {
      ctx.emit(country, std::to_string(revenue));
      (void)user;
    }
  };

  // Shard both tables over the mappers.
  const int mappers = 2;
  std::vector<std::vector<std::string>> shards(mappers);
  for (std::size_t i = 0; i < users.size(); ++i) {
    shards[i % mappers].push_back("U|" + users[i]);
  }
  for (std::size_t i = 0; i < orders.size(); ++i) {
    shards[i % mappers].push_back("O|" + orders[i]);
  }
  std::vector<mapred::RecordSource> inputs;
  for (auto& s : shards) inputs.push_back(mapred::vector_source(std::move(s)));

  const auto joined = mapred::JobRunner(mappers, 2).run(join, std::move(inputs));

  // Second job: sum per-user revenue rows into per-country totals.
  mapred::JobDef rollup;
  rollup.map = [](std::string_view record, mapred::MapContext& ctx) {
    const auto comma = record.find(',');
    ctx.emit(record.substr(0, comma), record.substr(comma + 1));
  };
  rollup.reduce = [](std::string_view country,
                     std::span<const std::string> amounts,
                     mapred::ReduceContext& ctx) {
    long total = 0;
    for (const auto& a : amounts) total += std::stol(a);
    ctx.emit(country, std::to_string(total));
  };
  std::vector<std::string> rows;
  for (const auto& [country, revenue] : joined.outputs) {
    rows.push_back(std::string(country) + "," + revenue);
  }
  const auto totals = mapred::JobRunner(2, 1).run(
      rollup, {mapred::vector_source(std::move(rows)),
               mapred::vector_source({})});

  std::printf("revenue per country (join of %zu users x %zu orders):\n",
              users.size(), orders.size());
  for (const auto& [country, total] : totals.outputs) {
    std::printf("  %-3s %s\n", country.c_str(), total.c_str());
  }
  // Expected: CN 30+25+35+20=110, DE 10+50+15=75, US 40.
  return 0;
}
