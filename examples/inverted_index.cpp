// Inverted index over a document collection, written against the mapred
// layer (context collectors hide MPI_D_Send/MPI_D_Recv entirely — the
// Section IV.B "map and reduce runners" adoption of MPI-D).
//
// map:    (doc line)  ->  (word, doc_id) for each word
// reduce: (word, [doc_id...]) -> (word, sorted unique posting list)
//
// Build & run:  ./examples/inverted_index
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "mpid/mapred/job.hpp"

int main() {
  using namespace mpid;

  const std::vector<std::string> documents = {
      "mpi is a message passing interface standard",
      "hadoop implements the mapreduce model",
      "mpi d extends mpi with key value pairs",
      "the shuffle stage dominates mapreduce jobs",
      "jetty serves the shuffle over http",
      "mpi latency beats hadoop rpc by two orders of magnitude",
  };

  mapred::JobDef job;
  job.map = [&](std::string_view record, mapred::MapContext& ctx) {
    // Records are "doc_id<TAB>text".
    const auto tab = record.find('\t');
    const auto doc_id = record.substr(0, tab);
    std::size_t start = tab + 1;
    while (start < record.size()) {
      auto end = record.find(' ', start);
      if (end == std::string_view::npos) end = record.size();
      if (end > start) ctx.emit(record.substr(start, end - start), doc_id);
      start = end + 1;
    }
  };
  job.reduce = [](std::string_view word, std::span<const std::string> docs,
                  mapred::ReduceContext& ctx) {
    const std::set<std::string> unique(docs.begin(), docs.end());
    std::string postings;
    for (const auto& d : unique) {
      if (!postings.empty()) postings.push_back(',');
      postings.append(d);
    }
    ctx.emit(word, postings);
  };
  // Posting lists stay small: combine duplicate (word, doc) pairs locally.
  job.combiner = [](std::string_view, std::vector<std::string>&& docs) {
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    return docs;
  };

  // One record source per mapper; each document becomes "id<TAB>text".
  const int mappers = 3;
  std::vector<std::vector<std::string>> shards(mappers);
  for (std::size_t d = 0; d < documents.size(); ++d) {
    shards[d % mappers].push_back("doc" + std::to_string(d) + "\t" +
                                  documents[d]);
  }
  std::vector<mapred::RecordSource> inputs;
  for (auto& shard : shards) {
    inputs.push_back(mapred::vector_source(std::move(shard)));
  }

  const auto result = mapred::JobRunner(mappers, 2).run(job, std::move(inputs));

  std::printf("inverted index (%zu terms):\n", result.outputs.size());
  for (const auto& [word, postings] : result.outputs) {
    std::printf("  %-10s -> %s\n", word.c_str(), postings.c_str());
  }
  return 0;
}
