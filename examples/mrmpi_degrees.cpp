// Graph degree distribution with the MR-MPI-style baseline library —
// the related-work design point ([15, 16] in the paper) where all ranks
// are symmetric peers and the shuffle is an MPI all-to-all, chained over
// two MapReduce rounds as MR-MPI's graph algorithms do.
//
// Round 1: edge list -> (vertex, degree)
// Round 2: (degree, count) histogram
//
// Build & run:  ./examples/mrmpi_degrees
#include <cstdio>
#include <string>
#include <vector>

#include "mpid/common/prng.hpp"
#include "mpid/mapred/mrmpi.hpp"
#include "mpid/minimpi/world.hpp"

int main() {
  using namespace mpid;

  constexpr int kRanks = 4;
  constexpr int kEdges = 4000;
  constexpr int kVertices = 500;

  minimpi::run_world(kRanks, [&](minimpi::Comm& comm) {
    mapred::mrmpi::MapReduce mr(comm);

    // Each map task contributes a deterministic slice of a random graph.
    mr.map(kRanks * 8, [&](int task, mapred::mrmpi::Emitter& out) {
      common::Xoshiro256StarStar rng(9000 + static_cast<std::uint64_t>(task));
      for (int e = 0; e < kEdges / (kRanks * 8); ++e) {
        const auto u = rng.next_below(kVertices);
        const auto v = rng.next_below(kVertices);
        out.emit("v" + std::to_string(u), "1");  // out-degree
        out.emit("v" + std::to_string(v), "1");  // in-degree
      }
    });

    // Round 1: degree per vertex.
    mr.collate();
    mr.reduce([](std::string_view, std::span<const std::string> ones,
                 mapred::mrmpi::Emitter& out) {
      out.emit("d" + std::to_string(ones.size()), "1");
    });

    // Round 2: histogram of degrees.
    mr.collate();
    mr.reduce([](std::string_view degree, std::span<const std::string> counts,
                 mapred::mrmpi::Emitter& out) {
      out.emit(degree, std::to_string(counts.size()));
    });

    const auto histogram = mr.gather(0);
    if (comm.rank() == 0) {
      std::printf("degree histogram over %d edges / %d vertices "
                  "(%d ranks, 2 chained MapReduce rounds):\n",
                  kEdges, kVertices, kRanks);
      std::size_t vertices_seen = 0;
      for (const auto& [degree, count] : histogram) {
        vertices_seen += std::stoull(count);
        std::printf("  degree %-4s : %s vertices\n", degree.c_str() + 1,
                    count.c_str());
      }
      std::printf("total vertices with edges: %zu\n", vertices_seen);
    }
  });
  return 0;
}
