// JavaSort/TeraSort-style record sort on the MPI-D stack: the workload of
// the paper's Figure 1 and Table I, here running for real (in-process
// ranks, generated 100-byte records).
//
// map:    record -> (key, payload)
// reduce: keys arrive grouped; with sorted_reduce each reducer emits its
//         partition in key order. A range partitioner (a custom MPI-D
//         Partitioner — TeraSort's trick) assigns contiguous key ranges
//         to reducers, so the concatenated output is GLOBALLY sorted.
//
// Build & run:  ./examples/terasort
#include <cstdio>
#include <string>
#include <vector>

#include "mpid/common/units.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/workloads/text.hpp"

int main() {
  using namespace mpid;

  const std::uint64_t input_bytes = 2 * common::MiB;
  const int mappers = 4;
  const int reducers = 3;

  mapred::JobDef job;
  job.map = [](std::string_view record, mapred::MapContext& ctx) {
    // Key = first 10 bytes; value = the rest of the record.
    if (record.size() > 10) {
      ctx.emit(record.substr(0, 10), record.substr(10));
    }
  };
  job.reduce = [](std::string_view key, std::span<const std::string> payloads,
                  mapred::ReduceContext& ctx) {
    // Duplicate keys keep all their payloads.
    for (const auto& p : payloads) ctx.emit(key, p);
  };
  job.sorted_reduce = true;  // per-reducer runs come out in key order
  // Range partitioner over the first key byte (keys are uniform printable
  // characters '!'..'~'): reducer r owns an equal slice of the key space.
  job.tuning.partitioner = [](std::string_view key,
                              std::uint32_t reducers) -> std::uint32_t {
    const auto c = static_cast<std::uint32_t>(
        static_cast<unsigned char>(key.empty() ? '!' : key[0]) - '!');
    return std::min(reducers - 1, c * reducers / 94);
  };

  std::vector<mapred::RecordSource> inputs;
  inputs.reserve(mappers);
  workloads::RecordSpec record_spec;
  for (int m = 0; m < mappers; ++m) {
    inputs.push_back(workloads::record_source(
        record_spec, input_bytes / static_cast<std::uint64_t>(mappers),
        1000 + static_cast<std::uint64_t>(m)));
  }

  const auto result =
      mapred::JobRunner(mappers, reducers).run(job, std::move(inputs));

  // Validate: output is globally sorted by key — each reducer owns a
  // contiguous key range and emits it in order.
  bool sorted = true;
  for (std::size_t i = 1; i < result.outputs.size(); ++i) {
    if (result.outputs[i].first < result.outputs[i - 1].first) {
      sorted = false;
      break;
    }
  }

  std::printf("terasort: %zu records sorted across %d reducers\n",
              result.outputs.size(), reducers);
  std::printf("sorted output: %s\n", sorted ? "yes" : "NO (bug!)");
  std::printf("intermediate volume: %s in %llu frames\n",
              common::format_bytes(result.report.totals.bytes_sent).c_str(),
              static_cast<unsigned long long>(
                  result.report.totals.frames_sent));
  std::printf("first keys: ");
  for (std::size_t i = 0; i < 3 && i < result.outputs.size(); ++i) {
    std::printf("\"%s\" ", result.outputs[i].first.c_str());
  }
  std::printf("\n");
  return sorted ? 0 : 1;
}
