// Secondary-sort / streaming reduce on MPI-D: build per-user session
// reports from an unordered event log, with
//   * sort_values  — each user's events arrive time-ordered (the
//     "sort the value list for each key on demand" feature of Section IV);
//   * sort_keys + SortedFrameMerger — users stream through the reducer in
//     globally sorted order with bounded memory (Hadoop's merge phase).
//
// Build & run:  ./examples/session_report
#include <cstdio>
#include <string>
#include <vector>

#include "mpid/common/prng.hpp"
#include "mpid/common/table.hpp"
#include "mpid/core/merge.hpp"
#include "mpid/core/mpid.hpp"
#include "mpid/minimpi/world.hpp"

namespace {

using namespace mpid;

/// Deterministic synthetic event log entries: (user, "ts|action").
std::vector<std::pair<std::string, std::string>> events_for(int shard) {
  common::Xoshiro256StarStar rng(7100 + static_cast<std::uint64_t>(shard));
  const char* actions[] = {"view", "cart", "buy", "search"};
  std::vector<std::pair<std::string, std::string>> events;
  for (int i = 0; i < 400; ++i) {
    const auto user = rng.next_below(12);
    const auto ts = rng.next_below(100000);
    events.emplace_back(
        "user-" + std::to_string(100 + user),
        common::strformat("%06llu|%s",
                          static_cast<unsigned long long>(ts),
                          actions[rng.next_below(4)]));
  }
  return events;
}

}  // namespace

int main() {
  core::Config cfg;
  cfg.mappers = 3;
  cfg.reducers = 1;
  cfg.sort_keys = true;    // frames ship key-sorted -> mergeable
  cfg.sort_values = true;  // per-user events time-ordered (fixed-width ts)

  minimpi::run_world(cfg.world_size(), [&](minimpi::Comm& comm) {
    core::MpiD d(comm, cfg);
    switch (d.role()) {
      case core::Role::kMapper: {
        for (const auto& [user, event] : events_for(d.mapper_index())) {
          d.send(user, event);
        }
        d.finalize();
        break;
      }
      case core::Role::kReducer: {
        core::SortedFrameMerger merger;
        std::vector<std::byte> frame;
        while (d.recv_raw_frame(frame)) merger.add_frame(std::move(frame));
        d.finalize();

        std::printf("per-user session reports (users stream in sorted "
                    "order, events in time order):\n");
        std::string user;
        std::vector<std::string> events;
        while (merger.next_group(user, events)) {
          // Events within one frame are time-sorted; across frames they
          // are concatenated runs — a final check keeps us honest about
          // what the library guarantees per frame.
          int buys = 0;
          std::string first = events.front(), last = events.front();
          for (const auto& e : events) {
            if (e < first) first = e;
            if (e > last) last = e;
            if (e.find("|buy") != std::string::npos) ++buys;
          }
          std::printf("  %-9s %3zu events  [%s .. %s]  %d purchases\n",
                      user.c_str(), events.size(),
                      first.substr(0, 6).c_str(), last.substr(0, 6).c_str(),
                      buys);
        }
        break;
      }
      case core::Role::kMaster:
        d.finalize();
        break;
    }
  });
  return 0;
}
