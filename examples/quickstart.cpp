// Quickstart: WordCount written directly against the MPI-D interfaces,
// mirroring Figure 5 of the paper:
//
//     void map(MAP_KEY mk, MAP_VALUE mv) {
//       REDUCE_KEY[] kt = parse(mv);
//       for (i = 0; i < kt.length; i++) MPI_D_Send(kt[i], 1);
//     }
//     void reduce(REDUCE_KEY rk, REDUCE_VALUE rv) {
//       MPI_D_Recv(rk, rv);
//       increment(rk, rv);
//     }
//
// The world is 1 master + 2 mappers + 2 reducers, all in-process ranks.
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "mpid/core/mpid.hpp"
#include "mpid/minimpi/world.hpp"

namespace {

using namespace mpid;

const char* kCorpus[] = {
    "can mpi benefit hadoop and mapreduce applications",
    "mpi d is a minimal extension to mpi",
    "the extension captures the key value pair nature",
    "of data intensive computing and mapreduce applications",
};

/// The paper's WordCount combiner: sum counts for one key locally before
/// transmission.
core::Combiner sum_combiner() {
  return [](std::string_view, std::vector<std::string>&& values) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    return std::vector<std::string>{std::to_string(total)};
  };
}

}  // namespace

int main() {
  core::Config config;
  config.mappers = 2;
  config.reducers = 2;
  config.combiner = sum_combiner();

  std::map<std::string, std::uint64_t> counts;
  std::mutex counts_mu;

  minimpi::run_world(config.world_size(), [&](minimpi::Comm& comm) {
    core::MpiD mpid(comm, config);  // MPI_D_Init
    switch (mpid.role()) {
      case core::Role::kMapper: {
        // map(): parse records, MPI_D_Send each word with count "1".
        // Mapper i takes every other line of the corpus.
        for (std::size_t line = static_cast<std::size_t>(mpid.mapper_index());
             line < std::size(kCorpus); line += 2) {
          std::istringstream words(kCorpus[line]);
          std::string word;
          while (words >> word) mpid.send(word, "1");  // MPI_D_Send
        }
        mpid.finalize();  // MPI_D_Finalize: flush + end-of-stream
        break;
      }
      case core::Role::kReducer: {
        // reduce(): MPI_D_Recv pairs and increment.
        std::map<std::string, std::uint64_t> local;
        std::string key, value;
        while (mpid.recv(key, value)) {  // MPI_D_Recv
          local[key] += std::stoull(value);
        }
        mpid.finalize();
        std::lock_guard lock(counts_mu);
        for (const auto& [k, n] : local) counts[k] += n;
        break;
      }
      case core::Role::kMaster: {
        mpid.finalize();
        const auto& report = mpid.report();
        std::printf(
            "master: %d mappers and %d reducers completed;\n"
            "        %llu pairs sent, %llu transmitted after combining "
            "(%llu bytes in %llu frames)\n\n",
            report.mappers_completed, report.reducers_completed,
            static_cast<unsigned long long>(report.totals.pairs_sent),
            static_cast<unsigned long long>(
                report.totals.pairs_after_combine),
            static_cast<unsigned long long>(report.totals.bytes_sent),
            static_cast<unsigned long long>(report.totals.frames_sent));
        break;
      }
    }
  });

  for (const auto& [word, n] : counts) {
    std::printf("%-14s %llu\n", word.c_str(),
                static_cast<unsigned long long>(n));
  }
  return 0;
}
