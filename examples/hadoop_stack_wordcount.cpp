// WordCount on the fully functional Hadoop-style stack: the corpus is
// stored in MiniDfs, the job runs on MiniHadoop (RPC control plane + HTTP
// shuffle), and the output lands back in the DFS — then the same job runs
// through MPI-D and the two result sets are diffed. This is the paper's
// comparison as a living system.
//
// Build & run:  ./examples/hadoop_stack_wordcount
#include <cstdio>
#include <map>
#include <sstream>

#include "mpid/common/units.hpp"
#include "mpid/dfs/minidfs.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/minihadoop/minihadoop.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;

void tokenize(std::string_view line, mapred::MapContext& ctx) {
  std::size_t start = 0;
  while (start < line.size()) {
    auto end = line.find(' ', start);
    if (end == std::string_view::npos) end = line.size();
    if (end > start) ctx.emit(line.substr(start, end - start), "1");
    start = end + 1;
  }
}

void sum(std::string_view key, std::span<const std::string> values,
         mapred::ReduceContext& ctx) {
  std::uint64_t total = 0;
  for (const auto& v : values) total += std::stoull(v);
  ctx.emit(key, std::to_string(total));
}

}  // namespace

int main() {
  // 1. Put a generated corpus into the DFS.
  dfs::MiniDfs fs(3, {.block_size_bytes = 64 * 1024, .replication = 2});
  const auto corpus = workloads::generate_text({}, 256 * 1024, 42);
  fs.create("/input/corpus.txt", corpus);
  std::printf("stored %s as %zu blocks (x2 replicas) across 3 datanodes\n",
              common::format_bytes(corpus.size()).c_str(),
              fs.locate("/input/corpus.txt").size());

  // 2. Run the job on the Hadoop-style stack.
  minihadoop::MiniCluster cluster(fs, 2);
  minihadoop::MiniJobConfig job;
  job.map = tokenize;
  job.reduce = sum;
  job.combiner = [](std::string_view, std::vector<std::string>&& values) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    return std::vector<std::string>{std::to_string(total)};
  };
  job.input_path = "/input/corpus.txt";
  job.output_prefix = "/output/wordcount";
  job.map_tasks = 4;
  job.reduce_tasks = 2;
  const auto summary = cluster.run(job);
  std::printf(
      "minihadoop: %llu heartbeat RPCs, %llu shuffle GETs moving %s, "
      "%llu combined pairs\n",
      static_cast<unsigned long long>(summary.heartbeats),
      static_cast<unsigned long long>(summary.shuffle_requests),
      common::format_bytes(summary.shuffled_bytes).c_str(),
      static_cast<unsigned long long>(summary.map_output_pairs));

  // 3. Read the output files back from the DFS.
  std::map<std::string, std::uint64_t> hadoop_counts;
  for (const auto& path : summary.output_files) {
    std::istringstream in(fs.read(path));
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      hadoop_counts[line.substr(0, tab)] += std::stoull(line.substr(tab + 1));
    }
    std::printf("  output %s: %s\n", path.c_str(),
                common::format_bytes(fs.file_size(path)).c_str());
  }

  // 4. Same job through MPI-D; diff the results.
  mapred::JobDef mjob;
  mjob.map = tokenize;
  mjob.reduce = sum;
  mjob.combiner = job.combiner;
  const auto mpid_result = mapred::JobRunner(4, 2).run_on_text(mjob, corpus);
  std::map<std::string, std::uint64_t> mpid_counts;
  for (const auto& [k, v] : mpid_result.outputs) {
    mpid_counts[k] = std::stoull(v);
  }

  std::printf("distinct words: %zu (hadoop) vs %zu (mpi-d)\n",
              hadoop_counts.size(), mpid_counts.size());
  std::printf("results identical: %s\n",
              hadoop_counts == mpid_counts ? "yes" : "NO (bug!)");
  return hadoop_counts == mpid_counts ? 0 : 1;
}
