// Extension bench: completion time vs fault rate for both runtimes.
//
// The paper's Section VI leaves MPI-D fault tolerance as an open issue;
// mpid::fault closes it, and this bench measures what the paper could
// not: how gracefully each runtime degrades as faults ramp up. The same
// WordCount (4 map / 2 reduce tasks) runs on MiniHadoop (heartbeat
// detection + task re-execution + fetch retry) and on MPI-D's resilient
// shuffle (seq/ack frames + retransmission + task restart) under one
// seeded FaultPlan per rate. Every faulted run is verified byte-identical
// to the fault-free baseline — a run that degrades *incorrectly* aborts
// the bench.
//
// At rate r, MiniHadoop sees crash/fetch/heartbeat faults and MPI-D sees
// crash/drop/corrupt faults — each runtime is attacked at the layers it
// defends. Every run additionally executes under a tight mpid::store
// memory budget (~1/10 of the shuffle working set) AND with hierarchical
// node aggregation on (DESIGN.md §14), so fault recovery, the disk tier
// and the in-node combine tree are exercised *together*: re-executed
// tasks re-stage and re-merge, restarted reducers re-pull aggregated
// lanes, and the spilled/aggregation counters show what that costs.
// Results print as a table and land in BENCH_ext_fault_degradation.json
// for the trajectory across PRs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/dfs/minidfs.hpp"
#include "mpid/fault/fault.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/minihadoop/minihadoop.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;
using Clock = std::chrono::steady_clock;

constexpr int kMaps = 4;
constexpr int kReduces = 2;
constexpr std::uint64_t kInputBytes = 256 * 1024;
constexpr std::size_t kMemoryBudget = 32 * 1024;  // ~1/10 the working set

/// Arms the two-tier store on either runtime's inherited ShuffleOptions.
void arm_budget(shuffle::ShuffleOptions& opts, const std::string& spill_dir) {
  opts.memory_budget_bytes = kMemoryBudget;
  opts.spill_dir = spill_dir;
  opts.spill_page_bytes = shuffle::ShuffleOptions::kMinSpillPageBytes;
  opts.spill_merge_fanin = 4;
}

mapred::MapFn wc_map() {
  return [](std::string_view line, mapred::MapContext& ctx) {
    std::size_t start = 0;
    while (start < line.size()) {
      auto end = line.find(' ', start);
      if (end == std::string_view::npos) end = line.size();
      if (end > start) ctx.emit(line.substr(start, end - start), "1");
      start = end + 1;
    }
  };
}

/// Partial-sum combiner: reduce is associative, so pre-agg output is
/// byte-identical and the in-node merge has duplicates to collapse.
shuffle::Combiner wc_combine() {
  return [](std::string_view, std::vector<std::string>&& values) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    return std::vector<std::string>{std::to_string(total)};
  };
}

mapred::ReduceFn wc_reduce() {
  return [](std::string_view key, std::span<const std::string> values,
            mapred::ReduceContext& ctx) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  };
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// MiniHadoop's fault diet at rate r: task crashes, shuffle-fetch errors
/// and dropped heartbeats (the faults its recovery machinery handles).
fault::FaultPlan hadoop_plan(double rate, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  // Crash draws are per-attempt (not per-event like the transport rates),
  // so scale them up to keep task recovery visible at small rates.
  plan.map_crash_prob = std::min(1.0, 3 * rate);
  plan.reduce_crash_prob = std::min(1.0, 3 * rate);
  plan.fetch_error_prob = rate;
  plan.heartbeat_drop_prob = rate / 2;
  return plan;
}

/// MPI-D's fault diet at rate r: task crashes plus frame drop/corruption
/// on the data channel (what the resilient shuffle defends against).
fault::FaultPlan mpid_plan(double rate, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  // Crash draws are per-attempt (not per-event like the transport rates),
  // so scale them up to keep task recovery visible at small rates.
  plan.map_crash_prob = std::min(1.0, 3 * rate);
  plan.reduce_crash_prob = std::min(1.0, 3 * rate);
  plan.message_drop_prob = rate;
  plan.message_corrupt_prob = rate / 2;
  return plan;
}

struct HadoopRun {
  double ms = 0;
  minihadoop::JobSummary summary;
};

struct MpidRun {
  double ms = 0;
  core::Stats totals;
};

[[noreturn]] void die(const char* runtime, double rate) {
  std::fprintf(stderr,
               "FATAL: %s output at fault rate %.2f differs from the "
               "fault-free baseline — recovery is broken\n",
               runtime, rate);
  std::abort();
}

}  // namespace

int main() {
  std::printf(
      "== Extension: completion time vs fault rate (WordCount %s, "
      "%d map / %d reduce) ==\n\n",
      common::format_bytes(kInputBytes).c_str(), kMaps, kReduces);

  const auto text = workloads::generate_text({}, kInputBytes, 2026);
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10, 0.20};

  std::string spill_tmpl =
      (std::filesystem::temp_directory_path() / "mpid-faultbench-XXXXXX");
  const std::string spill_dir = ::mkdtemp(spill_tmpl.data());

  // ---- MiniHadoop side: one DFS + cluster reused across rates ----
  dfs::MiniDfs fs(2);
  fs.create("/in", text);
  minihadoop::MiniCluster cluster(fs, 2);

  auto run_hadoop = [&](std::shared_ptr<fault::FaultInjector> inj,
                        const std::string& prefix) {
    minihadoop::MiniJobConfig job;
    job.map = wc_map();
    job.reduce = wc_reduce();
    job.combiner = wc_combine();
    job.input_path = "/in";
    job.output_prefix = prefix;
    job.map_tasks = kMaps;
    job.reduce_tasks = kReduces;
    job.fault_injector = std::move(inj);
    job.node_aggregation = true;  // each tasktracker serves one merged stream
    arm_budget(job, spill_dir);
    HadoopRun run;
    const auto start = Clock::now();
    run.summary = cluster.run(job);
    run.ms = ms_since(start);
    return run;
  };

  auto run_mpid = [&](std::shared_ptr<fault::FaultInjector> inj) {
    mapred::JobDef job;
    job.map = wc_map();
    job.reduce = wc_reduce();
    job.combiner = wc_combine();
    job.streaming_merge_reduce = true;  // the merge phase the store extends
    job.tuning.node_aggregation = true;  // 2 modeled nodes of 2 mappers
    job.tuning.ranks_per_node = 2;
    arm_budget(job.tuning, spill_dir);
    if (inj) {
      job.tuning.resilient_shuffle = true;
      job.tuning.fault_injector = std::move(inj);
      job.tuning.partition_frame_bytes = 4 * 1024;  // several frames per lane
    }
    const auto start = Clock::now();
    auto result = mapred::JobRunner(kMaps, kReduces).run_on_text(job, text);
    MpidRun run;
    run.ms = ms_since(start);
    run.totals = result.report.totals;
    return std::pair{std::move(run), std::move(result.outputs)};
  };

  // Fault-free baselines (and the golden outputs every run must match).
  const auto hadoop_base = run_hadoop(nullptr, "/base");
  std::vector<std::string> golden_parts;
  for (const auto& path : hadoop_base.summary.output_files) {
    golden_parts.push_back(fs.read(path));
  }
  auto [mpid_base, golden_outputs] = run_mpid(nullptr);

  common::TextTable table({"fault rate", "Hadoop", "slowdown", "reexec",
                           "fetch retries", "spilled", "MPI-D", "slowdown",
                           "retransmits", "restarts", "spilled"});
  std::ostringstream rows_json;

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rate = rates[i];
    const std::uint64_t seed = 90 + i;

    HadoopRun hadoop = hadoop_base;
    MpidRun mpid = mpid_base;
    if (rate > 0.0) {
      hadoop = run_hadoop(
          std::make_shared<fault::FaultInjector>(hadoop_plan(rate, seed)),
          "/out" + std::to_string(i));
      for (std::size_t p = 0; p < hadoop.summary.output_files.size(); ++p) {
        if (fs.read(hadoop.summary.output_files[p]) != golden_parts[p]) {
          die("MiniHadoop", rate);
        }
      }
      auto [run, outputs] = run_mpid(
          std::make_shared<fault::FaultInjector>(mpid_plan(rate, seed)));
      if (outputs != golden_outputs) die("MPI-D", rate);
      mpid = run;
    }

    const auto& s = hadoop.summary;
    const auto& t = mpid.totals;
    table.add_row(
        {common::strformat("%.2f", rate),
         common::strformat("%.1f ms", hadoop.ms),
         common::strformat("%.2fx", hadoop.ms / hadoop_base.ms),
         common::strformat("%llu", static_cast<unsigned long long>(
                                       s.map_reexecutions +
                                       s.reduce_reexecutions)),
         common::strformat(
             "%llu", static_cast<unsigned long long>(s.shuffle_fetch_retries)),
         common::format_bytes(s.bytes_spilled_disk),
         common::strformat("%.1f ms", mpid.ms),
         common::strformat("%.2fx", mpid.ms / mpid_base.ms),
         common::strformat(
             "%llu", static_cast<unsigned long long>(t.frames_retransmitted)),
         common::strformat("%llu",
                           static_cast<unsigned long long>(t.task_restarts)),
         common::format_bytes(t.bytes_spilled_disk)});

    rows_json << (i ? ",\n" : "")
              << common::strformat(
                     "    {\"fault_rate\": %.2f, \"hadoop_ms\": %.3f, "
                     "\"hadoop_reexecutions\": %llu, "
                     "\"hadoop_fetch_retries\": %llu, "
                     "\"hadoop_heartbeat_errors\": %llu, "
                     "\"hadoop_spilled_bytes\": %llu, "
                     "\"hadoop_spill_files\": %llu, "
                     "\"hadoop_merge_passes\": %llu, "
                     "\"mpid_ms\": %.3f, \"mpid_retransmits\": %llu, "
                     "\"mpid_restarts\": %llu, "
                     "\"mpid_spilled_bytes\": %llu, "
                     "\"mpid_spill_files\": %llu, "
                     "\"mpid_merge_passes\": %llu, "
                     "\"hadoop_node_agg_pre_bytes\": %llu, "
                     "\"hadoop_node_agg_post_bytes\": %llu, "
                     "\"mpid_node_agg_pre_bytes\": %llu, "
                     "\"mpid_node_agg_post_bytes\": %llu}",
                     rate, hadoop.ms,
                     static_cast<unsigned long long>(s.map_reexecutions +
                                                     s.reduce_reexecutions),
                     static_cast<unsigned long long>(s.shuffle_fetch_retries),
                     static_cast<unsigned long long>(s.heartbeat_errors),
                     static_cast<unsigned long long>(s.bytes_spilled_disk),
                     static_cast<unsigned long long>(s.spill_files),
                     static_cast<unsigned long long>(s.external_merge_passes),
                     mpid.ms,
                     static_cast<unsigned long long>(t.frames_retransmitted),
                     static_cast<unsigned long long>(t.task_restarts),
                     static_cast<unsigned long long>(t.bytes_spilled_disk),
                     static_cast<unsigned long long>(t.spill_files),
                     static_cast<unsigned long long>(t.external_merge_passes),
                     static_cast<unsigned long long>(s.bytes_pre_node_agg),
                     static_cast<unsigned long long>(s.bytes_post_node_agg),
                     static_cast<unsigned long long>(t.bytes_pre_node_agg),
                     static_cast<unsigned long long>(t.bytes_post_node_agg));
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nEvery faulted run verified byte-identical to the fault-free\n"
      "baseline. Reading: MiniHadoop absorbs faults through re-execution\n"
      "and retry (cost grows with whole-task recovery); MPI-D's resilient\n"
      "shuffle retransmits individual frames, so transport faults cost\n"
      "frame-sized work — the trade-off the paper could only point at.\n");

  std::ofstream json("BENCH_ext_fault_degradation.json");
  json << "{\n  \"name\": \"ext_fault_degradation\",\n"
       << "  \"input_bytes\": " << kInputBytes << ",\n"
       << "  \"map_tasks\": " << kMaps << ",\n"
       << "  \"reduce_tasks\": " << kReduces << ",\n"
       << "  \"rows\": [\n"
       << rows_json.str() << "\n  ]\n}\n";
  std::printf("\nwrote BENCH_ext_fault_degradation.json\n");

  // Temp-file hygiene: every spill run must be gone, even on runs whose
  // tasks crashed and re-executed.
  const auto leftovers = std::distance(
      std::filesystem::directory_iterator(spill_dir),
      std::filesystem::directory_iterator{});
  std::filesystem::remove_all(spill_dir);
  if (leftovers != 0) {
    std::fprintf(stderr, "FATAL: %td spill files leaked in %s\n", leftovers,
                 spill_dir.c_str());
    return 1;
  }
  return 0;
}
