// Microbenchmarks of the real MPI-D library internals. These calibrate
// the cost constants of the cluster-scale mpidsim model: the map+combine
// throughput (map_cpu_bytes_per_second), the data-realignment rate
// (realign_bytes_per_second), and the end-to-end WordCount rate of the
// full library on in-process ranks.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "mpid/common/kvframe.hpp"
#include "mpid/core/merge.hpp"
#include "mpid/fault/fault.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;

/// Data-realignment rate: serializing (key, value-list) groups into a
/// contiguous partition frame, the core of MPI_D_Send's spill path.
void BM_RealignKvList(benchmark::State& state) {
  const int groups = 2000;
  const int values_per_group = 8;
  std::vector<std::string> keys;
  keys.reserve(groups);
  for (int g = 0; g < groups; ++g) keys.push_back("key-" + std::to_string(g));
  const std::string value = "12345678";

  std::int64_t bytes = 0;
  for (auto _ : state) {
    common::KvListWriter writer;
    for (int g = 0; g < groups; ++g) {
      writer.begin_group(keys[static_cast<std::size_t>(g)], values_per_group);
      for (int v = 0; v < values_per_group; ++v) writer.add_value(value);
    }
    bytes += static_cast<std::int64_t>(writer.byte_size());
    benchmark::DoNotOptimize(writer.buffer().data());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_RealignKvList);

/// Reverse realignment: streaming groups back out of a frame.
void BM_ReverseRealign(benchmark::State& state) {
  common::KvListWriter writer;
  for (int g = 0; g < 2000; ++g) {
    writer.begin_group("key-" + std::to_string(g), 8);
    for (int v = 0; v < 8; ++v) writer.add_value("12345678");
  }
  const auto frame = writer.take();
  for (auto _ : state) {
    common::KvListReader reader(frame);
    std::size_t n = 0;
    while (auto group = reader.next()) n += group->values.size();
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_ReverseRealign);

/// Reducer-side k-way merge rate over sorted frames (the merge phase).
void BM_SortedMerge(benchmark::State& state) {
  const int frames = static_cast<int>(state.range(0));
  std::vector<std::vector<std::byte>> prototypes;
  std::size_t total_bytes = 0;
  for (int f = 0; f < frames; ++f) {
    common::KvListWriter writer;
    for (int g = 0; g < 1000; ++g) {
      writer.begin_group("key-" + std::to_string(10000 + g * frames + f), 2);
      writer.add_value("v1");
      writer.add_value("v2");
    }
    prototypes.push_back(writer.take());
    total_bytes += prototypes.back().size();
  }
  for (auto _ : state) {
    core::SortedFrameMerger merger;
    for (const auto& frame : prototypes) {
      merger.add_frame(frame);  // copy: merger takes ownership
    }
    std::string key;
    std::vector<std::string> values;
    std::size_t groups = 0;
    while (merger.next_group(key, values)) ++groups;
    benchmark::DoNotOptimize(groups);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total_bytes));
}
BENCHMARK(BM_SortedMerge)->Arg(2)->Arg(8)->Arg(32);

mapred::JobDef wordcount(bool with_combiner) {
  mapred::JobDef job;
  job.map = [](std::string_view line, mapred::MapContext& ctx) {
    std::size_t start = 0;
    while (start < line.size()) {
      auto end = line.find(' ', start);
      if (end == std::string_view::npos) end = line.size();
      if (end > start) ctx.emit(line.substr(start, end - start), "1");
      start = end + 1;
    }
  };
  job.reduce = [](std::string_view key, std::span<const std::string> values,
                  mapred::ReduceContext& ctx) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  };
  if (with_combiner) {
    job.combiner = [](std::string_view, std::vector<std::string>&& values) {
      std::uint64_t total = 0;
      for (const auto& v : values) total += std::stoull(v);
      return std::vector<std::string>{std::to_string(total)};
    };
  }
  return job;
}

/// End-to-end WordCount through the real MPI-D library (threads, real
/// data): the map+combine throughput this reports is the basis for
/// SystemSpec::map_cpu_bytes_per_second (scaled for the 2011 testbed).
void BM_MpidWordCount(benchmark::State& state) {
  const bool combine = state.range(0) != 0;
  const bool flat = state.range(1) != 0;
  const auto threads = static_cast<std::size_t>(state.range(2));
  workloads::TextSpec text_spec;
  const std::uint64_t bytes = 4 * 1024 * 1024;
  const auto text = workloads::generate_text(text_spec, bytes, 42);
  const mapred::JobRunner runner(4, 2);
  auto job = wordcount(combine);
  job.tuning.flat_combine_table = flat;
  job.tuning.map_threads = threads;
  job.tuning.reduce_threads = threads;

  std::uint64_t sent_bytes = 0, sent_pairs = 0, stall_ns = 0;
  std::uint64_t combine_ns = 0, spill_ns = 0, table_peak = 0, recycles = 0;
  for (auto _ : state) {
    const auto result = runner.run_on_text(job, text);
    benchmark::DoNotOptimize(result.outputs.size());
    sent_bytes = result.report.totals.bytes_sent;
    sent_pairs = result.report.totals.pairs_after_combine;
    stall_ns += result.report.totals.flush_wait_ns;
    combine_ns += result.report.totals.combine_ns;
    spill_ns += result.report.totals.spill_ns;
    table_peak = result.report.totals.table_bytes_peak;
    recycles += result.report.totals.arena_recycles;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["intermediate_bytes"] = static_cast<double>(sent_bytes);
  state.counters["pairs_transmitted"] = static_cast<double>(sent_pairs);
  state.counters["mapper_stall_s"] = static_cast<double>(stall_ns) * 1e-9;
  state.counters["combine_s"] = static_cast<double>(combine_ns) * 1e-9;
  state.counters["spill_s"] = static_cast<double>(spill_ns) * 1e-9;
  state.counters["table_bytes_peak"] = static_cast<double>(table_peak);
  state.counters["arena_recycles"] = static_cast<double>(recycles);
}
BENCHMARK(BM_MpidWordCount)
    ->Args({0, 1, 1})
    ->Args({1, 1, 1})
    ->Args({1, 0, 1})
    ->Args({1, 1, 4})
    ->ArgNames({"combiner", "flat", "threads"})
    ->Unit(benchmark::kMillisecond);

/// The same WordCount under a tight mpid::store memory budget (~1/10 of
/// the intermediate working set): map buffers drain under pressure and
/// the streaming-merge reducers spill to sorted runs, compact, and
/// external-merge from disk. The delta against BM_MpidWordCount is the
/// price of bounded RAM; the spill counters land in the JSON artifact.
void BM_MpidWordCountBudgeted(benchmark::State& state) {
  const auto text = workloads::generate_text({}, 4 * 1024 * 1024, 42);
  const mapred::JobRunner runner(4, 2);
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "mpid-bench-XXXXXX");
  const std::string spill_dir = ::mkdtemp(tmpl.data());

  auto job = wordcount(true);
  job.streaming_merge_reduce = true;  // the merge phase the store extends
  job.tuning.memory_budget_bytes = 64 * 1024;
  job.tuning.spill_dir = spill_dir;
  job.tuning.spill_page_bytes = shuffle::ShuffleOptions::kMinSpillPageBytes;

  core::Stats totals;
  for (auto _ : state) {
    const auto result = runner.run_on_text(job, text);
    benchmark::DoNotOptimize(result.outputs.size());
    totals = result.report.totals;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["spilled_disk_bytes"] =
      static_cast<double>(totals.bytes_spilled_disk);
  state.counters["spill_files"] = static_cast<double>(totals.spill_files);
  state.counters["merge_passes"] =
      static_cast<double>(totals.external_merge_passes);
  state.counters["spill_s"] = static_cast<double>(totals.spill_ns) * 1e-9;
  std::filesystem::remove_all(spill_dir);
}
BENCHMARK(BM_MpidWordCountBudgeted)->Unit(benchmark::kMillisecond);

/// The same WordCount through the hierarchical node-local aggregation
/// stage (DESIGN.md §14): 8 mappers at ranks_per_node per modeled node,
/// co-located streams merged by the leaders' combine trees before the
/// fabric. The merge rate this reports (bytes_pre_node_agg over
/// node_agg_merge_ns) calibrates
/// SystemSpec::node_agg_merge_bytes_per_second; the pre/post cut is the
/// structural traffic reduction at this corpus shape.
void BM_MpidWordCountNodeAgg(benchmark::State& state) {
  const auto ranks_per_node = static_cast<std::size_t>(state.range(0));
  workloads::TextSpec text_spec;
  text_spec.vocabulary = 1000;  // combiner-friendly: splits share the vocab
  const auto text = workloads::generate_text(text_spec, 4 * 1024 * 1024, 42);
  const mapred::JobRunner runner(8, 2);
  auto job = wordcount(true);
  job.tuning.node_aggregation = ranks_per_node > 1;
  job.tuning.ranks_per_node = ranks_per_node;

  core::Stats totals;
  for (auto _ : state) {
    const auto result = runner.run_on_text(job, text);
    benchmark::DoNotOptimize(result.outputs.size());
    totals = result.report.totals;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["fabric_bytes"] = static_cast<double>(totals.bytes_sent);
  state.counters["bytes_pre_node_agg"] =
      static_cast<double>(totals.bytes_pre_node_agg);
  state.counters["bytes_post_node_agg"] =
      static_cast<double>(totals.bytes_post_node_agg);
  state.counters["node_agg_merge_s"] =
      static_cast<double>(totals.node_agg_merge_ns) * 1e-9;
}
BENCHMARK(BM_MpidWordCountNodeAgg)
    ->Arg(1)
    ->Arg(4)
    ->ArgNames({"ranks_per_node"})
    ->Unit(benchmark::kMillisecond);

/// WordCount through the coded shuffle (DESIGN.md §15) at replication r:
/// every map task runs r times and home-group partitions ship as
/// XOR-coded multicast rounds. coded_encode_s / coded_decode_s over the
/// pre/post-coding bytes calibrate the mpidsim decode-rate constant
/// (SystemSpec::coded_decode_bytes_per_second); fabric_bytes shows the
/// traffic cut bought with the r x map compute.
void BM_MpidWordCountCoded(benchmark::State& state) {
  const auto replication = static_cast<std::size_t>(state.range(0));
  workloads::TextSpec text_spec;
  text_spec.vocabulary = 1000;
  const auto text = workloads::generate_text(text_spec, 4 * 1024 * 1024, 44);
  const mapred::JobRunner runner(4, 2);  // r=2 -> one group of 2 reducers
  auto job = wordcount(false);  // no combiner: sub-splits stay comparable
  job.tuning.coded_replication = replication;

  core::Stats totals;
  for (auto _ : state) {
    const auto result = runner.run_on_text(job, text);
    benchmark::DoNotOptimize(result.outputs.size());
    totals = result.report.totals;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["fabric_bytes"] = static_cast<double>(totals.bytes_sent);
  state.counters["bytes_pre_coding"] =
      static_cast<double>(totals.bytes_pre_coding);
  state.counters["bytes_post_coding"] =
      static_cast<double>(totals.bytes_post_coding);
  state.counters["coded_encode_s"] =
      static_cast<double>(totals.coded_encode_ns) * 1e-9;
  state.counters["coded_decode_s"] =
      static_cast<double>(totals.coded_decode_ns) * 1e-9;
}
BENCHMARK(BM_MpidWordCountCoded)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"replication"})
    ->Unit(benchmark::kMillisecond);

/// The same WordCount over the resilient shuffle while the transport
/// drops the given permille of data frames: the price of MPI-D fault
/// tolerance, with the recovery counters in the JSON artifact.
void BM_MpidWordCountResilient(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 1000.0;
  const auto text = workloads::generate_text({}, 2 * 1024 * 1024, 43);
  const mapred::JobRunner runner(4, 2);

  core::Stats totals;
  std::uint64_t faults = 0;
  for (auto _ : state) {
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.message_drop_prob = drop;
    auto inj = std::make_shared<fault::FaultInjector>(plan);
    auto job = wordcount(true);
    job.tuning.resilient_shuffle = true;
    job.tuning.fault_injector = inj;
    job.tuning.partition_frame_bytes = 4 * 1024;  // several frames per lane
    const auto result = runner.run_on_text(job, text);
    benchmark::DoNotOptimize(result.outputs.size());
    totals += result.report.totals;
    faults += inj->log().total();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["mapper_stall_s"] =
      static_cast<double>(totals.flush_wait_ns) * 1e-9;
  state.counters["frames_retransmitted"] =
      static_cast<double>(totals.frames_retransmitted);
  state.counters["retransmit_requests"] =
      static_cast<double>(totals.retransmit_requests);
  state.counters["task_restarts"] = static_cast<double>(totals.task_restarts);
  state.counters["recovery_wall_s"] =
      static_cast<double>(totals.recovery_wall_ns) * 1e-9;
  state.counters["injected_faults"] = static_cast<double>(faults);
}
BENCHMARK(BM_MpidWordCountResilient)
    ->Arg(0)
    ->Arg(20)
    ->Arg(50)
    ->ArgNames({"drop_permille"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

MPID_BENCHMARK_MAIN_JSON("micro_mpid")
