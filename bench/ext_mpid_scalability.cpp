// Extension bench (paper future work #3: "optimize the MPI-D library to
// exploit its potential, especially improving scalability"): Figure 6's
// 100 GB WordCount on the MPI-D system, sweeping the reducer count past
// the paper's single-reducer configuration, and toggling send/compute
// overlap (the MPI_Isend/Irecv adoption the paper proposes).
#include <cstdio>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/mpidsim/system.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;

  std::printf("== Extension: MPI-D scalability (100 GB WordCount) ==\n\n");

  const auto job = workloads::mpid_wordcount_job(100 * GiB);

  common::TextTable reducers({"reducers", "makespan", "vs 1 reducer"});
  double base = 0;
  for (const int r : {1, 2, 4, 8, 16}) {
    auto spec = workloads::fig6_mpid_system();
    spec.reducers = r;
    sim::Engine engine;
    mpidsim::MpidSystem system(engine, spec);
    const double t = system.run(job).makespan.to_seconds();
    if (r == 1) base = t;
    reducers.add_row({common::strformat("%d", r),
                      common::strformat("%.0f s", t),
                      common::strformat("%.2fx", base / t)});
  }
  std::printf("%s\n", reducers.render().c_str());

  common::TextTable overlap({"send overlap", "makespan (1 reducer)",
                             "makespan (8 reducers)"});
  for (const bool on : {true, false}) {
    std::string row[2];
    for (int i = 0; i < 2; ++i) {
      auto spec = workloads::fig6_mpid_system();
      spec.reducers = i == 0 ? 1 : 8;
      spec.overlap_sends = on;
      sim::Engine engine;
      mpidsim::MpidSystem system(engine, spec);
      row[i] = common::strformat(
          "%.0f s", system.run(job).makespan.to_seconds());
    }
    overlap.add_row({on ? "on (buffered MPI_D_Send)" : "off (synchronous)",
                     row[0], row[1]});
  }
  std::printf("%s\n", overlap.render().c_str());
  std::printf(
      "Reading: the single reducer is the scalability wall the paper's\n"
      "future work names; 8 reducers recover most of the headroom. Send\n"
      "overlap matters once the reducer stops being the bottleneck.\n");
  return 0;
}
