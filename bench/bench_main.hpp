// Shared google-benchmark main for the micro benches: defaults to a short
// per-benchmark min time so `for b in build/bench/*; do $b; done` finishes
// promptly, while still honoring an explicit --benchmark_min_time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace mpid::bench {

inline int run_benchmarks(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string default_min_time = "--benchmark_min_time=0.05";
  bool user_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
      user_set = true;
    }
  }
  if (!user_set) args.push_back(default_min_time.data());
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mpid::bench

#define MPID_BENCHMARK_MAIN()                       \
  int main(int argc, char** argv) {                 \
    return mpid::bench::run_benchmarks(argc, argv); \
  }
