// Shared google-benchmark main for the micro benches: defaults to a short
// per-benchmark min time so `for b in build/bench/*; do $b; done` finishes
// promptly, while still honoring an explicit --benchmark_min_time.
//
// Benches that declare a JSON artifact name (MPID_BENCHMARK_MAIN_JSON)
// additionally emit machine-readable results to BENCH_<name>.json in the
// current working directory unless the caller passed --benchmark_out
// themselves. Those files are the repo's perf trajectory: successive PRs
// re-run the bench and diff the JSON.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace mpid::bench {

inline int run_benchmarks(int argc, char** argv,
                          const char* json_name = nullptr) {
  std::vector<char*> args(argv, argv + argc);
  std::string default_min_time = "--benchmark_min_time=0.05";
  std::string out_file, out_format;
  bool user_min_time = false;
  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
      user_min_time = true;
    }
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) {
      user_out = true;
    }
  }
  if (!user_min_time) args.push_back(default_min_time.data());
  if (json_name != nullptr && !user_out) {
    out_file = std::string("--benchmark_out=BENCH_") + json_name + ".json";
    out_format = "--benchmark_out_format=json";
    args.push_back(out_file.data());
    args.push_back(out_format.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mpid::bench

#define MPID_BENCHMARK_MAIN()                       \
  int main(int argc, char** argv) {                 \
    return mpid::bench::run_benchmarks(argc, argv); \
  }

/// As MPID_BENCHMARK_MAIN, but also writes BENCH_<name>.json (google-
/// benchmark JSON format) for the perf trajectory.
#define MPID_BENCHMARK_MAIN_JSON(name)                    \
  int main(int argc, char** argv) {                       \
    return mpid::bench::run_benchmarks(argc, argv, name); \
  }
