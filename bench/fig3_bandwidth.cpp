// Figure 3 — "Comparison of Bandwidth among Hadoop RPC, Hadoop HTTP over
// Jetty, and MPICH2": transfer a fixed 128 MB with packet sizes from 1 B
// to 64 MB and report the achieved bandwidth of each stack.
//
// Paper anchors: Hadoop RPC never exceeds ~1.4 MB/s; Jetty and MPICH2 use
// the wire effectively from 256 B upward (~80 and ~60 MB/s respectively,
// rising past 100 MB/s); average peak bandwidth is ~111 MB/s for MPICH2
// vs ~108 MB/s for Jetty (2-3% apart), with MPI visibly smoother.
#include <cstdio>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/net/fabric.hpp"
#include "mpid/proto/models.hpp"
#include "mpid/sim/engine.hpp"

int main() {
  using namespace mpid;
  using common::KiB;
  using common::MiB;

  std::printf(
      "== Figure 3: bandwidth transferring 128 MB vs packet size ==\n\n");

  sim::Engine engine;
  net::Fabric fabric(engine, 8);
  proto::HadoopRpcModel rpc(engine, fabric);
  proto::JettyHttpModel jetty(engine, fabric);
  proto::MpiModel mpi(engine, fabric);

  const std::uint64_t total = 128 * MiB;
  auto mbps = [&](double seconds) {
    return static_cast<double>(total) / seconds / 1e6;
  };

  common::TextTable table({"packet size", "Hadoop RPC MB/s", "Jetty MB/s",
                           "MPICH2 MB/s"});
  double mpi_peak_sum = 0, jetty_peak_sum = 0;
  int peak_count = 0;
  for (std::uint64_t packet = 1; packet <= 64 * MiB; packet *= 4) {
    const double r = mbps(rpc.stream_seconds(total, packet));
    const double j = mbps(jetty.stream_seconds(total, packet));
    const double m = mbps(mpi.stream_seconds(total, packet));
    if (packet >= 1 * MiB) {
      mpi_peak_sum += m;
      jetty_peak_sum += j;
      ++peak_count;
    }
    table.add_row({common::format_bytes(packet),
                   common::strformat("%.4f", r), common::strformat("%.1f", j),
                   common::strformat("%.1f", m)});
  }
  std::printf("%s\n", table.render().c_str());

  const double mpi_peak = mpi_peak_sum / peak_count;
  const double jetty_peak = jetty_peak_sum / peak_count;
  common::TextTable anchors({"anchor", "paper", "model"});
  anchors.add_row({"RPC peak bandwidth", "<= 1.4 MB/s",
                   common::strformat("%.2f MB/s",
                                     mbps(rpc.stream_seconds(total, 64 * MiB)))});
  anchors.add_row({"Jetty avg peak", "~108 MB/s",
                   common::strformat("%.1f MB/s", jetty_peak)});
  anchors.add_row({"MPICH2 avg peak", "~111 MB/s",
                   common::strformat("%.1f MB/s", mpi_peak)});
  anchors.add_row({"MPI over Jetty", "+2-3%",
                   common::strformat("%+.1f%%",
                                     100.0 * (mpi_peak - jetty_peak) /
                                         jetty_peak)});
  std::printf("%s\n", anchors.render().c_str());
  return 0;
}
