// Table I — "Percentage Distributions of All Copy Stage Time in Total
// Mappers and Reducers Execution Time under Different Input Data Sizes
// and Configurations": GridMix JavaSort with input 1-150 GB and
// max mapper/reducer slots per node of 4/2, 4/4, 8/8 and 16/16.
//
// Paper values range 33.9% .. 82.7%, rising strongly with input size
// (with a dip around 3 GB) and mildly with slot count at large inputs.
#include <cstdio>
#include <vector>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;

  std::printf(
      "== Table I: copy-stage share of total mapper+reducer time ==\n\n");

  const std::vector<std::pair<int, int>> configs = {
      {4, 2}, {4, 4}, {8, 8}, {16, 16}};
  const std::vector<std::uint64_t> sizes_gb = {1, 3, 9, 27, 81, 150};

  // Paper's Table I for side-by-side comparison.
  const double paper[6][4] = {
      {43.1, 43.0, 38.5, 35.7}, {35.0, 33.9, 35.9, 46.3},
      {43.1, 42.9, 42.8, 39.7}, {44.3, 47.9, 43.18, 36.4},
      {60.0, 71.0, 74.6, 73.9}, {69.6, 82.0, 82.7, 80.6}};

  common::TextTable table({"input", "4/2", "4/4", "8/8", "16/16"});
  for (std::size_t si = 0; si < sizes_gb.size(); ++si) {
    std::vector<std::string> row = {
        common::strformat("%llu GB",
                          static_cast<unsigned long long>(sizes_gb[si]))};
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const auto spec =
          workloads::paper_cluster(configs[ci].first, configs[ci].second);
      sim::Engine engine;
      hadoop::Cluster cluster(engine, spec);
      const auto job = workloads::javasort_job(spec, sizes_gb[si] * GiB);
      const auto result = cluster.run(job);
      row.push_back(common::strformat("%.1f%% (paper %.1f%%)",
                                      100.0 * result.copy_fraction(),
                                      paper[si][ci]));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the copy share rises from ~1/3 at small inputs to the\n"
      "70-85%% band at 81-150 GB — communication dominates, so it is\n"
      "worth optimizing (the paper's Section II.A conclusion).\n");
  return 0;
}
