// Ablation of the MPI-D design choices the paper calls out in Section
// III/IV, on the *real* library: local combining ("reduce the memory
// consuming and the transmission quantity") and the spill threshold
// (buffering in MPI_D_Send before realignment).
//
// Rows report transmitted volume and frame counts from the master's
// aggregated stats, plus wall time of the in-process run.
#include <chrono>
#include <cstdio>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/workloads/text.hpp"

int main() {
  using namespace mpid;
  using Clock = std::chrono::steady_clock;

  std::printf("== Ablation: MPI-D combiner and spill threshold ==\n");
  std::printf("(real library, in-process ranks, 8 MiB of Zipf text, 4 "
              "mappers / 2 reducers)\n\n");

  workloads::TextSpec text_spec;
  const auto text =
      workloads::generate_text(text_spec, 8 * 1024 * 1024, 2025);

  mapred::JobDef base;
  base.map = [](std::string_view line, mapred::MapContext& ctx) {
    std::size_t start = 0;
    while (start < line.size()) {
      auto end = line.find(' ', start);
      if (end == std::string_view::npos) end = line.size();
      if (end > start) ctx.emit(line.substr(start, end - start), "1");
      start = end + 1;
    }
  };
  base.reduce = [](std::string_view key, std::span<const std::string> values,
                   mapred::ReduceContext& ctx) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  };
  const core::Combiner combiner = [](std::string_view,
                                     std::vector<std::string>&& values) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    return std::vector<std::string>{std::to_string(total)};
  };

  common::TextTable table({"combiner", "spill threshold", "wall time",
                           "pairs tx", "bytes tx", "frames"});
  for (const bool with_combiner : {false, true}) {
    for (const std::size_t spill :
         {std::size_t{64} * 1024, std::size_t{1} * 1024 * 1024,
          std::size_t{16} * 1024 * 1024}) {
      mapred::JobDef job = base;
      job.combiner = with_combiner ? combiner : core::Combiner{};
      job.tuning.spill_threshold_bytes = spill;
      const mapred::JobRunner runner(4, 2);

      const auto start = Clock::now();
      const auto result = runner.run_on_text(job, text);
      const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - start)
                            .count();

      const auto& totals = result.report.totals;
      table.add_row(
          {with_combiner ? "on" : "off", common::format_bytes(spill),
           common::strformat("%lld ms", static_cast<long long>(wall)),
           common::strformat("%llu",
                             static_cast<unsigned long long>(
                                 totals.pairs_after_combine)),
           common::format_bytes(totals.bytes_sent),
           common::strformat("%llu", static_cast<unsigned long long>(
                                         totals.frames_sent))});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the combiner cuts transmitted pairs/bytes by an order of\n"
      "magnitude on skewed text; larger spill thresholds amortize frames\n"
      "and let the combiner see more duplicates before transmission.\n");
  return 0;
}
