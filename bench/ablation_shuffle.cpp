// Ablations of the cluster-model design choices DESIGN.md calls out:
//  (1) reduce-side copier parallelism and the Jetty server thread pool —
//      knobs that shape Figure 1's copy-time distribution;
//  (2) the MPICH2 eager/rendezvous threshold — the knee in Figure 2's
//      MPI latency curve.
#include <cstdio>

#include "mpid/common/stats.hpp"
#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/proto/models.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;
  using common::KiB;
  using common::MiB;

  std::printf("== Ablation: shuffle parallelism (27 GB JavaSort) ==\n\n");
  common::TextTable shuffle({"copier threads", "http threads",
                             "avg copy (body)", "makespan"});
  for (const auto& [copiers, http] :
       {std::pair{1, 40}, std::pair{5, 40}, std::pair{20, 40},
        std::pair{5, 4}}) {
    auto spec = workloads::paper_cluster(8, 8);
    spec.copier_threads = copiers;
    spec.http_server_threads = http;
    sim::Engine engine;
    hadoop::Cluster cluster(engine, spec);
    const auto result =
        cluster.run(workloads::javasort_job(spec, 27 * GiB));

    common::SampleSet all;
    for (const auto& r : result.reduces) all.add(r.copy_seconds());
    const double median = all.percentile(50);
    common::OnlineStats body;
    for (const auto& r : result.reduces) {
      if (r.copy_seconds() <= 5.0 * median) body.add(r.copy_seconds());
    }
    shuffle.add_row({common::strformat("%d", copiers),
                     common::strformat("%d", http),
                     common::strformat("%.1f s", body.mean()),
                     common::strformat("%.0f s",
                                       result.makespan.to_seconds())});
  }
  std::printf("%s\n", shuffle.render().c_str());

  std::printf("== Ablation: MPICH2 eager/rendezvous threshold ==\n\n");
  common::TextTable rndv({"threshold", "latency @ 32 KiB", "latency @ 1 MiB"});
  for (const std::uint64_t threshold : {std::uint64_t{0}, 64 * KiB,
                                        std::uint64_t{1} << 40}) {
    sim::Engine engine;
    net::Fabric fabric(engine, 8);
    proto::MpiParams params;
    params.eager_threshold = threshold;
    proto::MpiModel mpi(engine, fabric, params);
    rndv.add_row(
        {threshold == 0 ? "always rendezvous"
                        : (threshold > (1ull << 39) ? "always eager"
                                                    : "64 KiB (default)"),
         common::strformat("%.3f ms",
                           mpi.one_way_latency(32 * KiB).to_millis()),
         common::strformat("%.3f ms",
                           mpi.one_way_latency(1 * MiB).to_millis())});
  }
  std::printf("%s\n", rndv.render().c_str());
  std::printf(
      "Reading: more copier threads flatten the copy distribution until\n"
      "the serving disks saturate; starving the Jetty pool serializes\n"
      "fetches and stretches the copy tail. The rendezvous handshake\n"
      "explains the small step in Figure 2's MPI curve past 64 KiB.\n");
  return 0;
}
