// Microbenchmark of the map-side combine buffer: KvCombineTable (flat
// slots + key arena + value slabs) against the legacy node-based
// unordered_map, over the full spill duty cycle both runtimes drive —
// append pairs, combine incrementally, drain into partition frames,
// recycle, repeat.
//
// The key streams are pre-generated (uniform and Zipf-1.0 over the same
// key space) so the loop times only the buffer, and every stream is
// seeded — the flat/legacy comparison sees identical input.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpid/common/hash.hpp"
#include "mpid/common/kvframe.hpp"
#include "mpid/common/kvtable.hpp"
#include "mpid/common/prng.hpp"
#include "mpid/common/zipf.hpp"

namespace {

using namespace mpid;

constexpr std::size_t kPairs = 256 * 1024;  // one duty cycle
constexpr std::size_t kSpillEvery = 128 * 1024;  // ~runtime spill cadence
constexpr std::uint64_t kKeySpace = 100000;  // WordCount-scale vocabulary
constexpr std::uint32_t kPartitions = 4;
constexpr std::size_t kCombineThreshold = 64;  // the runtimes' default

std::vector<std::string> make_stream(bool zipf, std::uint64_t seed) {
  common::Xoshiro256StarStar rng(seed);
  common::ZipfSampler sampler(kKeySpace, 1.0);
  std::vector<std::string> keys;
  keys.reserve(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    const auto rank = zipf ? sampler(rng) : 1 + rng.next_below(kKeySpace);
    keys.push_back("key-" + std::to_string(rank));
  }
  return keys;
}

std::vector<std::string> sum_combine(std::string_view,
                                     std::vector<std::string>&& values) {
  // Hand-rolled decimal sum: the benchmark measures the buffer, so the
  // combiner itself stays minimal (std::stoull's locale machinery would
  // dominate and mask the per-pair cost difference).
  std::uint64_t total = 0;
  for (const auto& v : values) {
    std::uint64_t n = 0;
    for (const char c : v) n = n * 10 + static_cast<std::uint64_t>(c - '0');
    total += n;
  }
  return {std::to_string(total)};
}

/// Legacy buffer: the node-based map both runtimes used before the flat
/// table, driven with the same incremental-combine/spill discipline.
void BM_LegacyUnorderedMap(benchmark::State& state) {
  const bool zipf = state.range(0) != 0;
  const bool combine = state.range(1) != 0;
  const auto keys = make_stream(zipf, 1234);

  // The runtime's legacy entry (MpiD::ValueList): the value vector plus a
  // running byte count that feeds the spill-threshold accounting.
  struct ValueList {
    std::vector<std::string> values;
    std::size_t bytes = 0;
  };
  std::unordered_map<std::string, ValueList, common::TransparentStringHash,
                     common::TransparentStringEq>
      buffer;
  std::vector<common::KvListWriter> writers(kPartitions);
  std::size_t buffered_bytes = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kPairs; ++i) {
      const auto& key = keys[i];
      auto& list = buffer[key];
      if (list.values.empty()) buffered_bytes += key.size() + 64;
      list.values.emplace_back("1");
      list.bytes += 1;
      buffered_bytes += 1;
      if (combine && list.values.size() >= kCombineThreshold) {
        // MpiD::run_combiner: combine, then recount the entry's bytes.
        const std::size_t before = list.bytes;
        list.values = sum_combine(key, std::move(list.values));
        list.bytes = 0;
        for (const auto& v : list.values) list.bytes += v.size();
        buffered_bytes -= std::min(buffered_bytes, before - list.bytes);
      }
      if ((i + 1) % kSpillEvery == 0) {
        // The legacy spill discipline (MpiD::spill_legacy): drain the map
        // into a vector, then combine and realign each entry.
        std::vector<std::pair<std::string, ValueList>> entries;
        entries.reserve(buffer.size());
        for (auto& [k, list_] : buffer) {
          entries.emplace_back(k, std::move(list_));
        }
        buffer.clear();
        benchmark::DoNotOptimize(buffered_bytes);
        buffered_bytes = 0;
        for (auto& [k, list_] : entries) {
          auto values = std::move(list_.values);
          if (combine) values = sum_combine(k, std::move(values));
          auto& w = writers[common::fnv1a64(k) % kPartitions];
          w.begin_group(k, values.size());
          for (const auto& v : values) w.add_value(v);
        }
        std::size_t bytes = 0;
        for (auto& w : writers) {
          bytes += w.byte_size();
          w.clear();
        }
        benchmark::DoNotOptimize(bytes);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
}
BENCHMARK(BM_LegacyUnorderedMap)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->ArgNames({"zipf", "combiner"});

/// The flat table over the identical stream and discipline.
void BM_KvCombineTable(benchmark::State& state) {
  const bool zipf = state.range(0) != 0;
  const bool combine = state.range(1) != 0;
  const auto keys = make_stream(zipf, 1234);

  common::KvCombineTable table;
  std::vector<std::string> scratch;
  std::vector<common::KvListWriter> writers(kPartitions);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kPairs; ++i) {
      const auto& key = keys[i];
      const auto count = table.append(key, "1");
      if (combine && count >= kCombineThreshold) {
        // MpiD::combine_flat_entry: the append's dense index addresses
        // the combine cycle, so it costs no further probes.
        const auto index = table.last_index();
        scratch.clear();
        auto cursor = table.entry_at(index).values;
        while (auto v = cursor.next()) scratch.emplace_back(*v);
        scratch = sum_combine(key, std::move(scratch));
        table.replace_at(index, scratch);
      }
      if ((i + 1) % kSpillEvery == 0) {
        // The flat spill discipline (MpiD::spill_flat): stream each entry
        // from its slab chain, materializing only when a combiner runs.
        table.for_each(false, [&](const common::KvCombineTable::EntryView& e) {
          auto& w = writers[e.key_hash % kPartitions];
          if (combine && e.value_count > 1) {
            scratch.clear();
            auto cursor = e.values;
            while (auto v = cursor.next()) scratch.emplace_back(*v);
            scratch = sum_combine(e.key, std::move(scratch));
            w.begin_group(e.key, scratch.size());
            for (const auto& v : scratch) w.add_value(v);
          } else {
            w.begin_group(e.key, e.value_count);
            auto cursor = e.values;
            cursor.drain_to(w);  // raw block copy: slabs are wire format
          }
        });
        table.recycle();
        std::size_t bytes = 0;
        for (auto& w : writers) {
          bytes += w.byte_size();
          w.clear();
        }
        benchmark::DoNotOptimize(bytes);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
  state.counters["table_bytes_peak"] = static_cast<double>(table.bytes_peak());
  state.counters["rehashes"] =
      static_cast<double>(table.counters().rehashes);
  state.counters["block_reuses"] =
      static_cast<double>(table.counters().block_reuses);
  state.counters["arena_recycles"] =
      static_cast<double>(table.counters().recycles);
}
BENCHMARK(BM_KvCombineTable)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->ArgNames({"zipf", "combiner"});

/// Sorted drain (Hadoop-style spills): the index sort is the only extra
/// work, entries never move.
void BM_KvCombineTableSortedSpill(benchmark::State& state) {
  const auto keys = make_stream(true, 77);
  common::KvCombineTable table;
  common::KvListWriter writer;
  for (auto _ : state) {
    for (const auto& key : keys) table.append(key, "1");
    table.for_each(true, [&](const common::KvCombineTable::EntryView& e) {
      writer.begin_group(e.key, e.value_count);
      auto cursor = e.values;
      cursor.drain_to(writer);
    });
    table.recycle();
    benchmark::DoNotOptimize(writer.byte_size());
    writer.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
}
BENCHMARK(BM_KvCombineTableSortedSpill);

}  // namespace

MPID_BENCHMARK_MAIN_JSON("micro_kvtable")
