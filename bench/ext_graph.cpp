// Extension bench: iterative job chaining (DESIGN.md §16) — resident
// reducer partitions vs the HDFS round trip iterative Hadoop jobs pay
// between rounds.
//
// The paper's related work (Twister, MR-MPI) motivates exactly this: a
// chain of MapReduce rounds over a mostly-static graph, where stock
// Hadoop must write every round's output through HDFS replication, tear
// the job down, and re-ingest the state as the next job's input. The
// mapred::JobChain keeps the world resident (Config::resident_rounds):
// round N's reducer partitions become round N+1's map input in place,
// and the static graph structure is realigned once and pinned.
//
// Part 1 runs the real runtimes on three graph workloads — label-
// propagation connected components, SSSP and triangle counting — four
// ways each: JobChain chained, JobChain unchained (fresh world + full
// re-ingest per round), MiniHadoop resident and MiniHadoop with the
// per-round DFS round trip. All four must be byte-identical and match
// the serial references; the chain counters must prove residency (zero
// static re-shuffles, zero ingest after round 1). Both are exit-gated.
//
// Part 2 prices the same structure at Figure 6 scale: an iterative job
// on the 8-node model, resident vs the replicated-writeback ablation, on
// GigE and an IB-class fabric. Exit gate: the resident chain must be
// >= 1.5x faster on GigE at 5 rounds.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/dfs/minidfs.hpp"
#include "mpid/mapred/chain.hpp"
#include "mpid/minihadoop/minihadoop.hpp"
#include "mpid/mpidsim/system.hpp"
#include "mpid/proto/profiles.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/graph.hpp"
#include "mpid/workloads/presets.hpp"

namespace {

using namespace mpid;

constexpr int kPartitions = 4;

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

mapred::KvVec parse_parts(dfs::MiniDfs& fs,
                          const std::vector<std::string>& files) {
  mapred::KvVec pairs;
  for (const auto& file : files) {
    const std::string body = fs.read(file);
    std::size_t pos = 0;
    while (pos < body.size()) {
      auto eol = body.find('\n', pos);
      if (eol == std::string::npos) eol = body.size();
      const std::string_view line(body.data() + pos, eol - pos);
      pos = eol + 1;
      const auto tab = line.find('\t');
      if (tab == std::string_view::npos) continue;
      pairs.emplace_back(std::string(line.substr(0, tab)),
                         std::string(line.substr(tab + 1)));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

struct WorkloadResult {
  std::string name;
  std::uint64_t rounds = 0;
  std::uint64_t chained_ingest = 0;
  std::uint64_t unchained_ingest = 0;
  std::uint64_t resident_bytes_in = 0;
  std::uint64_t static_pinned = 0;
  std::uint64_t static_reshuffled_ablation = 0;
};

/// Runs one workload all four ways, dies on any divergence, returns the
/// residency accounting.
WorkloadResult run_workload(const std::string& name, const mapred::ChainJob& job,
                            const std::string& text,
                            const mapred::KvVec& expected,
                            common::TextTable& table) {
  mapred::JobChain chain(kPartitions);
  const auto chained = chain.run_on_text(job, text);
  const auto unchained = chain.run_unchained_on_text(job, text);

  dfs::MiniDfs fs(3);
  fs.create("/in", text);
  minihadoop::MiniCluster cluster(fs, 3);
  minihadoop::MiniChainConfig config;
  config.ingest = job.ingest;
  config.stages = job.stages;
  config.static_input = job.static_input;
  config.input_path = "/in";
  config.map_tasks = kPartitions;
  config.reduce_tasks = kPartitions;
  config.output_prefix = "/resident";
  config.resident = true;
  const auto hadoop = cluster.run_chain(config);
  config.output_prefix = "/roundtrip";
  config.resident = false;
  const auto roundtrip = cluster.run_chain(config);

  const auto hadoop_out = parse_parts(fs, hadoop.output_files);
  const auto roundtrip_out = parse_parts(fs, roundtrip.output_files);
  if (chained.outputs != unchained.outputs || chained.outputs != hadoop_out ||
      chained.outputs != roundtrip_out) {
    std::fprintf(stderr,
                 "FATAL: %s outputs diverge across the four executions\n",
                 name.c_str());
    std::exit(1);
  }
  if (!expected.empty() && chained.outputs != expected) {
    std::fprintf(stderr, "FATAL: %s outputs do not match the serial reference\n",
                 name.c_str());
    std::exit(1);
  }

  // Residency proof, counter by counter: statics realigned exactly once,
  // external bytes ingested exactly once, every later round fed from the
  // resident partitions.
  const auto& totals = chained.report.totals;
  if (totals.static_bytes_reshuffled != 0 ||
      hadoop.static_bytes_reshuffled != 0) {
    std::fprintf(stderr, "FATAL: %s resident run re-shuffled static input\n",
                 name.c_str());
    std::exit(1);
  }
  for (std::size_t r = 1; r < chained.report.round_totals.size(); ++r) {
    if (chained.report.round_totals[r].ingest_bytes != 0) {
      std::fprintf(stderr,
                   "FATAL: %s chained round %zu re-ingested external input\n",
                   name.c_str(), r + 1);
      std::exit(1);
    }
  }
  if (chained.rounds.size() > 1 &&
      (totals.resident_pairs_in == 0 || hadoop.resident_pairs_in == 0)) {
    std::fprintf(stderr, "FATAL: %s resident rounds read no resident pairs\n",
                 name.c_str());
    std::exit(1);
  }

  WorkloadResult w;
  w.name = name;
  w.rounds = chained.rounds.size();
  w.chained_ingest = totals.ingest_bytes;
  w.unchained_ingest = unchained.report.totals.ingest_bytes;
  w.resident_bytes_in = totals.resident_bytes_in;
  w.static_pinned = totals.static_bytes_pinned;
  w.static_reshuffled_ablation =
      unchained.report.totals.static_bytes_reshuffled;
  table.add_row({name, common::strformat("%llu", ull(w.rounds)),
                 common::format_bytes(w.chained_ingest),
                 common::format_bytes(w.unchained_ingest),
                 common::format_bytes(w.resident_bytes_in),
                 common::format_bytes(w.static_pinned),
                 common::format_bytes(w.static_reshuffled_ablation)});
  return w;
}

}  // namespace

int main() {
  workloads::GraphSpec spec;
  spec.vertices = 96;
  spec.edges = 320;
  spec.components = 3;
  spec.seed = 17;
  const auto text = workloads::generate_graph(spec);

  std::printf(
      "== Extension: iterative job chaining (graph workloads, %d vertices, "
      "%d partitions) ==\n\n",
      spec.vertices, kPartitions);

  // ---- Part 1: real runtimes, four-way byte parity (exit-gated) --------
  common::TextTable table({"workload", "rounds", "chained ingest",
                           "unchained ingest", "resident in", "static pinned",
                           "static reshuffled (ablation)"});
  const auto cc = run_workload("cc", workloads::cc_job(text), text,
                               workloads::cc_reference(text), table);
  const auto sssp = run_workload(
      "sssp", workloads::sssp_job(text, workloads::vertex_name(0)), text,
      workloads::sssp_reference(text, workloads::vertex_name(0)), table);
  const auto tri =
      run_workload("triangle", workloads::triangle_job(text), text, {}, table);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "All three workloads byte-identical across JobChain chained/unchained\n"
      "and MiniHadoop resident/round-trip, and equal to the serial\n"
      "references. Chained runs ingest external input exactly once and\n"
      "never re-shuffle the pinned statics; the unchained ablation\n"
      "re-ingests every round (%.1fx the external bytes for cc).\n\n",
      static_cast<double>(cc.unchained_ingest) /
          static_cast<double>(cc.chained_ingest));

  // ---- Part 2: Figure 6 scale, resident vs HDFS round trip -------------
  const auto profiles = proto::all_interconnects();
  const std::vector<proto::InterconnectProfile> ablation = {profiles.front(),
                                                            profiles.back()};
  std::printf(
      "== Model: 4 GB iterative job on the Figure 6 layout, resident "
      "chain vs per-round replicated HDFS writeback (3 replicas) ==\n\n");
  common::TextTable model_table({"interconnect", "rounds", "resident",
                                 "round trip", "speedup"});
  std::ostringstream model_json;
  int model_rows = 0;
  double gige_speedup_5 = 0;
  for (const auto& profile : ablation) {
    for (const int rounds : {2, 5, 10}) {
      auto run_mode = [&](bool resident) {
        auto sys = workloads::fig6_mpid_system();
        sys.fabric = profile.fabric;
        mpidsim::MpidChainSpec chain;
        chain.round = workloads::mpid_wordcount_job(4 * common::GiB);
        chain.rounds = rounds;
        chain.resident = resident;
        sim::Engine engine;
        mpidsim::MpidSystem system(engine, sys);
        return system.run_chain(chain);
      };
      const auto resident = run_mode(true);
      const auto roundtrip = run_mode(false);
      const double speedup = roundtrip.makespan.to_seconds() /
                             resident.makespan.to_seconds();
      if (&profile == &ablation.front() && rounds == 5) {
        gige_speedup_5 = speedup;
      }
      model_table.add_row(
          {profile.name, common::strformat("%d", rounds),
           common::strformat("%.0f s", resident.makespan.to_seconds()),
           common::strformat("%.0f s", roundtrip.makespan.to_seconds()),
           common::strformat("%.2fx", speedup)});
      model_json << (model_rows++ ? ",\n" : "")
                 << common::strformat(
                        "    {\"interconnect\": \"%s\", \"rounds\": %d, "
                        "\"resident_s\": %.3f, \"roundtrip_s\": %.3f, "
                        "\"speedup\": %.4f, \"reingest_bytes\": %.0f, "
                        "\"writeback_bytes\": %.0f}",
                        profile.name.c_str(), rounds,
                        resident.makespan.to_seconds(),
                        roundtrip.makespan.to_seconds(), speedup,
                        roundtrip.reingest_bytes, roundtrip.writeback_bytes);
    }
  }
  std::printf("%s\n", model_table.render().c_str());
  std::printf(
      "Reading: every non-resident round pays job startup again, re-scans\n"
      "the state from disk, and pushes its part files through the 3-way\n"
      "replication pipeline before the next round may start — costs that\n"
      "scale with the round count while the resident chain pays them once.\n"
      "The gap widens on GigE, where the writeback replicas also fight the\n"
      "shuffle for the fabric.\n");

  std::ofstream json("BENCH_ext_graph.json");
  json << "{\n  \"name\": \"ext_graph\",\n"
       << common::strformat(
              "  \"vertices\": %d,\n  \"partitions\": %d,\n", spec.vertices,
              kPartitions);
  for (const auto* w : {&cc, &sssp, &tri}) {
    json << common::strformat(
        "  \"%s_rounds\": %llu,\n"
        "  \"%s_chained_ingest_bytes\": %llu,\n"
        "  \"%s_unchained_ingest_bytes\": %llu,\n"
        "  \"%s_resident_bytes_in\": %llu,\n"
        "  \"%s_static_bytes_pinned\": %llu,\n"
        "  \"%s_static_bytes_reshuffled\": 0,\n",
        w->name.c_str(), ull(w->rounds), w->name.c_str(),
        ull(w->chained_ingest), w->name.c_str(), ull(w->unchained_ingest),
        w->name.c_str(), ull(w->resident_bytes_in), w->name.c_str(),
        ull(w->static_pinned), w->name.c_str());
  }
  json << common::strformat("  \"gige_speedup_5_rounds\": %.4f,\n",
                            gige_speedup_5)
       << "  \"model_rows\": [\n"
       << model_json.str() << "\n  ]\n}\n";
  std::printf("\nwrote BENCH_ext_graph.json\n");

  // The headline claim, enforced.
  if (gige_speedup_5 < 1.5) {
    std::fprintf(stderr,
                 "FATAL: resident chain speedup %.2fx on GigE at 5 rounds is "
                 "below the 1.5x gate\n",
                 gige_speedup_5);
    return 1;
  }
  return 0;
}
