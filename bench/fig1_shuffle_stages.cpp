// Figure 1 — "Overhead of Copy Stage in Shuffle of JavaSort Benchmark":
// GridMix JavaSort over 150 GB on 7 worker nodes with 8/8 slots, one
// reduce task per map task. The paper plots per-reducer copy/sort/reduce
// stage times (reducer ids 0..2344) after deleting 56 reducers whose
// times reach ~4000 s (the first wave, which spans the whole map phase).
//
// Anchors: copy 48-178 s with average ~128.5 s; sort average ~0.0102 s;
// reduce 2-58 s with average ~6.8 s; the copy stage is ~95% of the
// remaining reducers' lifecycle.
#include <algorithm>
#include <cstdio>

#include "mpid/common/stats.hpp"
#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;

  std::printf(
      "== Figure 1: per-reducer shuffle stage times, JavaSort 150 GB ==\n");

  const auto cluster_spec = workloads::paper_cluster(8, 8);
  sim::Engine engine;
  hadoop::Cluster cluster(engine, cluster_spec);
  const auto job = workloads::javasort_job(cluster_spec, 150 * GiB);
  const auto result = cluster.run(job);

  std::printf("maps=%zu  reduce tasks=%zu (paper: 2345)  makespan=%.0f s\n\n",
              result.maps.size(), result.reduces.size(),
              result.makespan.to_seconds());

  // The paper deletes the ~4000 s outliers (first reduce wave). Partition
  // on the same criterion: copy time beyond 4x the body is "first wave".
  common::SampleSet all_copy;
  for (const auto& r : result.reduces) all_copy.add(r.copy_seconds());
  const double median_copy = all_copy.percentile(50);
  common::SampleSet copy, sort, reduce, copy_share;
  int excluded = 0;
  for (const auto& r : result.reduces) {
    if (r.copy_seconds() > 5.0 * median_copy) {
      ++excluded;
      continue;
    }
    copy.add(r.copy_seconds());
    sort.add(r.sort_seconds());
    reduce.add(r.reduce_seconds());
    copy_share.add(r.copy_seconds() / r.total_seconds());
  }

  std::printf("sample series (every 100th reducer, body only):\n");
  common::TextTable series({"reducer id", "copy s", "sort s", "reduce s"});
  int printed = 0;
  for (std::size_t i = 0; i < result.reduces.size() && printed < 12;
       i += 100) {
    const auto& r = result.reduces[i];
    if (r.copy_seconds() > 5.0 * median_copy) continue;
    series.add_row({common::strformat("%zu", i),
                    common::strformat("%.1f", r.copy_seconds()),
                    common::strformat("%.4f", r.sort_seconds()),
                    common::strformat("%.1f", r.reduce_seconds())});
    ++printed;
  }
  std::printf("%s\n", series.render().c_str());

  common::TextTable anchors({"metric", "paper", "model"});
  anchors.add_row({"excluded first-wave reducers", "56 (~4000 s each)",
                   common::strformat("%d (max %.0f s)", excluded,
                                     all_copy.max())});
  anchors.add_row({"copy min-max", "48 - 178 s",
                   common::strformat("%.0f - %.0f s", copy.min(),
                                     copy.max())});
  anchors.add_row({"copy average", "128.5 s",
                   common::strformat("%.1f s", copy.mean())});
  anchors.add_row({"sort average", "0.0102 s",
                   common::strformat("%.4f s", sort.mean())});
  anchors.add_row({"reduce min-max", "2 - 58 s",
                   common::strformat("%.1f - %.1f s", reduce.min(),
                                     reduce.max())});
  anchors.add_row({"reduce average", "6.80 s",
                   common::strformat("%.2f s", reduce.mean())});
  anchors.add_row({"copy share of reducer lifecycle", "~95%",
                   common::strformat("%.1f%%", 100.0 * copy_share.mean())});
  std::printf("%s\n", anchors.render().c_str());

  // The paper notes "not all of the time in copy stage in shuffle is
  // caused by RPC or Jetty" — the simulator can decompose it.
  std::printf(
      "copy-stage decomposition (the paper's Section II.A caveat):\n"
      "  logged copy share of all task time:   %.1f%%\n"
      "  transfer-only share (minus waiting):  %.1f%%\n"
      "  total shuffled volume:                %s\n",
      100.0 * result.copy_fraction(),
      100.0 * result.copy_transfer_fraction(),
      common::format_bytes(
          static_cast<std::uint64_t>(result.total_shuffled_bytes()))
          .c_str());
  return 0;
}
