// Thread-scaling microbenchmark of the hybrid process+threads model:
// ParallelMapper (map + combine + realign) across a per-rank WorkerPool,
// at every {threads} x {ranks} point the Figure-6-scale configs use.
//
// This host may have fewer cores than workers, so wall time cannot show
// the parallel speedup directly. The pool therefore accounts per-worker
// CPU time (CLOCK_THREAD_CPUTIME_ID) for each batch, and the bench
// reports:
//
//   map_combine_cpu_s    - total CPU burned in map+combine across workers
//   critical_path_cpu_s  - sum over ranks of the slowest worker's CPU
//   critical_path_speedup- total / critical path: the wall-time speedup a
//                          machine with >= `threads` free cores would see
//                          (work-stealing balance is the only loss term)
//
// threads=1 runs the inline no-thread path, so its wall time doubles as
// the regression guard for the sequential configuration.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpid/mapred/input.hpp"
#include "mpid/shuffle/parallel.hpp"
#include "mpid/shuffle/workerpool.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;

/// WordCount-shaped map over one text chunk: tokenize and emit (word, 1).
void map_chunk(std::string_view chunk,
               const shuffle::ParallelMapper::EmitFn& emit) {
  mapred::LineReader lines(chunk);
  while (auto line = lines.next()) {
    std::size_t start = 0;
    while (start < line->size()) {
      auto end = line->find(' ', start);
      if (end == std::string_view::npos) end = line->size();
      if (end > start) emit(line->substr(start, end - start), "1");
      start = end + 1;
    }
  }
}

/// `ranks` mapper processes, each running its map task over a WorkerPool
/// of `threads` workers — the batches run sequentially (one shared core
/// budget), with the per-rank critical path accumulated from the pool's
/// CPU accounting.
void BM_ThreadedMapCombine(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto ranks = static_cast<std::size_t>(state.range(1));
  const std::uint64_t bytes_per_rank = 2 * 1024 * 1024;

  std::vector<std::string> inputs;
  inputs.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    inputs.push_back(workloads::generate_text(
        {}, bytes_per_rank, 1000 + static_cast<std::uint64_t>(r)));
  }

  shuffle::ShuffleOptions options;
  options.map_threads = threads;
  options.validate();

  std::uint64_t total_cpu_ns = 0, critical_cpu_ns = 0;
  std::uint64_t pairs = 0, frames = 0, frame_bytes = 0;
  for (auto _ : state) {
    shuffle::WorkerPool pool(threads);
    for (std::size_t r = 0; r < ranks; ++r) {
      shuffle::ShuffleCounters counters;
      shuffle::ParallelMapper::Setup setup;
      setup.partitions = 2;
      setup.combiner = [](std::string_view,
                          std::vector<std::string>&& values) {
        std::uint64_t total = 0;
        for (const auto& v : values) total += std::stoull(v);
        return std::vector<std::string>{std::to_string(total)};
      };
      setup.counters = &counters;
      setup.sink = [&](std::uint32_t, std::vector<std::byte> frame, bool) {
        ++frames;
        frame_bytes += frame.size();
        benchmark::DoNotOptimize(frame.data());
      };
      shuffle::ParallelMapper mapper(options, std::move(setup));

      const auto chunks =
          shuffle::resolve_map_chunks(options, inputs[r].size());
      const auto views =
          mapred::split_text(inputs[r], static_cast<int>(chunks));
      pairs += mapper.run(pool, views.size(),
                          [&](std::size_t chunk,
                              const shuffle::ParallelMapper::EmitFn& emit) {
                            map_chunk(views[chunk], emit);
                          });

      const auto& cpu = pool.last_batch_cpu_ns();
      std::uint64_t sum = 0, peak = 0;
      for (const auto ns : cpu) {
        sum += ns;
        peak = std::max(peak, ns);
      }
      total_cpu_ns += sum;
      critical_cpu_ns += peak;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ranks * bytes_per_rank));
  state.counters["map_combine_cpu_s"] =
      static_cast<double>(total_cpu_ns) * 1e-9;
  state.counters["critical_path_cpu_s"] =
      static_cast<double>(critical_cpu_ns) * 1e-9;
  state.counters["critical_path_speedup"] =
      critical_cpu_ns > 0 ? static_cast<double>(total_cpu_ns) /
                                static_cast<double>(critical_cpu_ns)
                          : 1.0;
  state.counters["pairs_emitted"] = static_cast<double>(pairs);
  state.counters["frames"] = static_cast<double>(frames);
  state.counters["frame_bytes"] = static_cast<double>(frame_bytes);
}
BENCHMARK(BM_ThreadedMapCombine)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->ArgNames({"threads", "ranks"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

MPID_BENCHMARK_MAIN_JSON("micro_threads")
