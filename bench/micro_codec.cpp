// Microbenchmark of the shuffle-frame codec (common/codec.hpp): MB/s and
// achieved ratio per stage on the three data shapes the runtimes ship —
// post-combiner WordCount frames (sorted Zipf keys, dictionary-friendly
// counts), JavaSort-style text records (LZ-carried), and incompressible
// random bytes (the stored-escape worst case, which bounds the overhead
// the `on` setting can cost a hostile workload).
//
// The acceptance bar for the compression PR reads off this bench: the
// WordCount encode must show ratio >= 3, and the incompressible path
// must stay within a few percent of memcpy-speed framing.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"
#include "codec_sample.hpp"

#include <cstddef>
#include <vector>

#include "mpid/common/codec.hpp"
#include "mpid/common/prng.hpp"

namespace {

using namespace mpid;

constexpr std::size_t kFrameBytes = 1 << 20;  // the runtimes' frame scale

std::vector<std::byte> random_frame(std::size_t bytes, std::uint64_t seed) {
  common::Xoshiro256StarStar rng(seed);
  std::vector<std::byte> frame(bytes);
  for (std::size_t i = 0; i < bytes; i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 8 && i + j < bytes; ++j) {
      frame[i + j] = static_cast<std::byte>(word >> (8 * j));
    }
  }
  return frame;
}

void encode_bench(benchmark::State& state, const std::vector<std::byte>& raw,
                  common::FrameKind kind) {
  std::vector<std::byte> wire;
  common::EncodeResult result{};
  for (auto _ : state) {
    wire.clear();  // encode_frame appends (callers may prefix headers)
    result = common::encode_frame(kind, raw, wire);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
  state.counters["ratio"] = static_cast<double>(result.raw_bytes) /
                            static_cast<double>(result.wire_bytes);
}

void decode_bench(benchmark::State& state, const std::vector<std::byte>& raw,
                  common::FrameKind kind) {
  std::vector<std::byte> wire;
  common::encode_frame(kind, raw, wire);
  std::vector<std::byte> out;
  for (auto _ : state) {
    common::decode_frame(wire, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
  state.counters["ratio"] = static_cast<double>(raw.size()) /
                            static_cast<double>(wire.size());
}

void BM_EncodeWordCount(benchmark::State& state) {
  encode_bench(state, mpid::bench::wordcount_frame(kFrameBytes, 11),
               common::FrameKind::kKvList);
}
BENCHMARK(BM_EncodeWordCount);

void BM_DecodeWordCount(benchmark::State& state) {
  decode_bench(state, mpid::bench::wordcount_frame(kFrameBytes, 11),
               common::FrameKind::kKvList);
}
BENCHMARK(BM_DecodeWordCount);

void BM_EncodeJavaSortText(benchmark::State& state) {
  encode_bench(state, mpid::bench::javasort_frame(kFrameBytes, 12),
               common::FrameKind::kKvList);
}
BENCHMARK(BM_EncodeJavaSortText);

void BM_DecodeJavaSortText(benchmark::State& state) {
  decode_bench(state, mpid::bench::javasort_frame(kFrameBytes, 12),
               common::FrameKind::kKvList);
}
BENCHMARK(BM_DecodeJavaSortText);

void BM_EncodeIncompressible(benchmark::State& state) {
  encode_bench(state, random_frame(kFrameBytes, 13),
               common::FrameKind::kOpaque);
}
BENCHMARK(BM_EncodeIncompressible);

void BM_DecodeIncompressible(benchmark::State& state) {
  decode_bench(state, random_frame(kFrameBytes, 13),
               common::FrameKind::kOpaque);
}
BENCHMARK(BM_DecodeIncompressible);

/// The compression-off baseline: store_frame's header-and-copy cost, the
/// number the incompressible encode is judged against.
void BM_StoreFrame(benchmark::State& state) {
  const auto raw = random_frame(kFrameBytes, 14);
  std::vector<std::byte> wire;
  for (auto _ : state) {
    wire.clear();
    common::store_frame(raw, wire);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_StoreFrame);

}  // namespace

MPID_BENCHMARK_MAIN_JSON("micro_codec")
