// Extension bench: coded shuffle (DESIGN.md §15) — trading r× redundant
// map compute for an r-fold structural cut in cross-fabric traffic.
//
// Coded MapReduce observes that if every map task runs on r distinct
// ranks, the shuffle can ship XOR-coded multicast rounds that serve a
// whole group of r reducers at once: each reducer re-derives the other
// replicas' diagonal frames locally (side information) and XORs them out
// of the received payload. The fabric carries one coded stream where the
// uncoded shuffle carried r unicasts — the same bytes-for-CPU trade the
// paper prices with the combiner and the codec, but bought with spare
// map cores instead of compression ratio.
//
// Part 1 runs the real MPI-D runtime on a value-order-sensitive job with
// incompressible values (hex digests) and shuffle compression ON, so
// shuffle_bytes_wire measures genuine wire volume with no codec rescue.
// Two single-group configurations (r = reducers, the shape where every
// partition is home and the cut approaches r^2):
//   (a) 4 mappers, 2 reducers, r in {1, 2}: wire cut must be >= 1.7x
//   (b) 3 mappers, 3 reducers, r in {1, 3}: wire cut must be >= 2.5x
// Outputs must be byte-identical to the uncoded run; the exit code gates
// both cuts, like ext_node_agg and ext_interconnect_shuffle.
//
// Part 2 asks the Figure 6 model the cluster-scale question: with the
// reducer side widened to 4 ranks, what does r x-redundant map compute
// cost against the wire bytes saved on GigE vs an IB-class fabric?
// Expected shape: on GigE the map wave is fabric-bound and coding wins
// despite scanning and mapping every split r times; on the fast wire the
// redundant compute is pure loss — the paper's asymmetry again.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mpid/common/hash.hpp"
#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/mpidsim/system.hpp"
#include "mpid/proto/profiles.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;

constexpr std::uint64_t kInputBytes = 256 * 1024;

/// Sort-style job with incompressible values: every word is tagged with
/// hex digests keyed by (word, mapper). The codec cannot shrink these,
/// so any wire cut is the coding, not compression; the reduce sorts the
/// values, so output parity proves the replica pipelines regenerate the
/// primary mappers' streams byte-for-byte.
mapred::JobDef digest_sort_def() {
  mapred::JobDef job;
  job.map = [](std::string_view line, mapred::MapContext& ctx) {
    std::size_t start = 0;
    while (start < line.size()) {
      auto end = line.find(' ', start);
      if (end == std::string_view::npos) end = line.size();
      if (end > start) {
        const auto word = line.substr(start, end - start);
        // Digest of (record, position, mapper): unique per occurrence —
        // the codec cannot fold repeats — yet a replica re-processing the
        // same record regenerates it exactly.
        const std::uint64_t h = common::fmix64(
            common::fnv1a64(line) ^ (start * 0x9e3779b97f4a7c15ULL) ^
            static_cast<std::uint64_t>(ctx.mapper_index()));
        ctx.emit(word, common::strformat("%016llx%016llx",
                                         static_cast<unsigned long long>(h),
                                         static_cast<unsigned long long>(
                                             common::fmix64(h + 1))));
      }
      start = end + 1;
    }
  };
  job.reduce = [](std::string_view key, std::span<const std::string> values,
                  mapred::ReduceContext& ctx) {
    std::vector<std::string> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& v : sorted) ctx.emit(key, v);
  };
  return job;
}

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

struct GateResult {
  core::Stats uncoded;
  core::Stats coded;
  double wire_cut = 0;
  double fabric_cut = 0;
};

/// Runs one (mappers, reducers) shape uncoded and at replication r,
/// fails fatally on any output divergence, and returns the counters.
GateResult run_gate(int mappers, int reducers, std::size_t replication,
                    std::string_view text, common::TextTable& table) {
  auto run = [&](std::size_t r) {
    auto job = digest_sort_def();
    job.tuning.shuffle_compression = core::ShuffleCompression::kOn;
    job.tuning.coded_replication = r;
    return mapred::JobRunner(mappers, reducers).run_on_text(job, text);
  };
  const auto uncoded = run(1);
  const auto coded = run(replication);
  if (coded.outputs != uncoded.outputs) {
    std::fprintf(stderr,
                 "FATAL: output differs at coded_replication=%zu "
                 "(%d mappers, %d reducers) — the coded delivery paths "
                 "are not output-preserving\n",
                 replication, mappers, reducers);
    std::exit(1);
  }

  GateResult g;
  g.uncoded = uncoded.report.totals;
  g.coded = coded.report.totals;
  g.wire_cut = static_cast<double>(g.uncoded.shuffle_bytes_wire) /
               static_cast<double>(g.coded.shuffle_bytes_wire);
  g.fabric_cut = static_cast<double>(g.uncoded.bytes_sent) /
                 static_cast<double>(g.coded.bytes_sent);

  const auto shape = common::strformat("%dx%d", mappers, reducers);
  table.add_row({shape, "1",
                 common::format_bytes(g.uncoded.shuffle_bytes_wire),
                 common::format_bytes(g.uncoded.bytes_sent), "-", "-", "-",
                 "-"});
  table.add_row(
      {shape, common::strformat("%zu", replication),
       common::format_bytes(g.coded.shuffle_bytes_wire),
       common::format_bytes(g.coded.bytes_sent),
       common::format_bytes(g.coded.bytes_pre_coding),
       common::format_bytes(g.coded.bytes_post_coding),
       common::strformat("%.2f", g.coded.coded_encode_ns / 1e6),
       common::strformat("%.2f", g.coded.coded_decode_ns / 1e6)});
  return g;
}

}  // namespace

int main() {
  std::printf(
      "== Extension: coded shuffle (incompressible digest sort, %s input, "
      "shuffle_compression=on) ==\n\n",
      common::format_bytes(kInputBytes).c_str());

  workloads::TextSpec spec;
  spec.vocabulary = 1000;
  const auto text = workloads::generate_text(spec, kInputBytes, 2027);

  // ---- Part 1: real MPI-D, single-group shapes (exit-gated) ------------
  common::TextTable table({"shape", "r", "wire bytes", "fabric payload",
                           "pre-coding", "post-coding", "encode ms",
                           "decode ms"});
  const auto r2 = run_gate(/*mappers=*/4, /*reducers=*/2, 2, text, table);
  const auto r3 = run_gate(/*mappers=*/3, /*reducers=*/3, 3, text, table);
  std::printf("MPI-D (r = reducers: one group, every partition home):\n%s\n",
              table.render().c_str());
  std::printf(
      "Outputs byte-identical at r=2 and r=3. Wire cut %.2fx at r=2 "
      "(gate >= 1.7x)\nand %.2fx at r=3 (gate >= 2.5x); XOR fold alone "
      "shrank the home-group\ndiagonal %.2fx / %.2fx (bytes_pre_coding / "
      "bytes_post_coding).\n\n",
      r2.wire_cut, r3.wire_cut,
      static_cast<double>(r2.coded.bytes_pre_coding) /
          static_cast<double>(r2.coded.bytes_post_coding),
      static_cast<double>(r3.coded.bytes_pre_coding) /
          static_cast<double>(r3.coded.bytes_post_coding));

  // ---- Part 2: Figure 6 model, widened to 4 reducers -------------------
  const auto profiles = proto::all_interconnects();
  const std::vector<proto::InterconnectProfile> ablation = {profiles.front(),
                                                            profiles.back()};
  std::printf(
      "== Model: 30 GB expansion job (map_output_ratio=2) on the Figure 6 "
      "layout, 2 reducers, r x-replicated maps ==\n\n");
  common::TextTable model_table({"interconnect", "r", "wire bytes",
                                 "map phase", "makespan"});
  std::ostringstream model_json;
  int model_rows = 0;
  for (const auto& profile : ablation) {
    for (const int r : {1, 2}) {
      auto sys = workloads::fig6_mpid_system();
      sys.fabric = profile.fabric;
      sys.reducers = 2;
      sys.coded_replication = r;
      auto job = workloads::mpid_wordcount_job(30 * common::GiB);
      // Expansion-style map (inverted indexing, feature extraction): the
      // intermediate volume doubles the input and two reducer downlinks
      // must swallow it while the map wave is still sending — the regime
      // where GigE send windows stall and coding has something to buy.
      job.map_output_ratio = 2.0;
      sim::Engine engine;
      mpidsim::MpidSystem system(engine, sys);
      const auto result = system.run(job);
      const double wire = result.intermediate_bytes / r;
      model_table.add_row(
          {profile.name, common::strformat("%d", r),
           common::format_bytes(static_cast<std::uint64_t>(wire)),
           common::strformat("%.0f s", result.map_phase_end.to_seconds()),
           common::strformat("%.0f s", result.makespan.to_seconds())});
      model_json << (model_rows++ ? ",\n" : "")
                 << common::strformat(
                        "    {\"interconnect\": \"%s\", \"replication\": %d, "
                        "\"wire_bytes\": %.0f, \"map_phase_s\": %.3f, "
                        "\"makespan_s\": %.3f}",
                        profile.name.c_str(), r, wire,
                        result.map_phase_end.to_seconds(),
                        result.makespan.to_seconds());
    }
  }
  std::printf("%s\n", model_table.render().c_str());
  std::printf(
      "Reading: the over-budget reducers spill through their disks, so the\n"
      "makespan is reduce-bound and the fabric shows up in the MAP phase\n"
      "(as in ext_node_agg). Coding charges every worker r x the disk scan\n"
      "and map CPU up front and r x the realign, then divides the fabric\n"
      "bytes by r and adds a decode pass at the reducers. On GigE the two\n"
      "reducer downlinks stall the r=1 map wave, so the halved wire more\n"
      "than repays the doubled compute; on the IB-class fabric the wire was\n"
      "never binding and the redundant scan/map lengthens the map phase\n"
      "with nothing to buy back — the paper's asymmetry, priced in spare\n"
      "map cores instead of compression ratio.\n");

  std::ofstream json("BENCH_ext_coded_shuffle.json");
  json << "{\n  \"name\": \"ext_coded_shuffle\",\n"
       << "  \"input_bytes\": " << kInputBytes << ",\n"
       << common::strformat(
              "  \"r2_wire_bytes_uncoded\": %llu,\n"
              "  \"r2_wire_bytes_coded\": %llu,\n"
              "  \"r2_wire_cut\": %.4f,\n"
              "  \"r2_fabric_cut\": %.4f,\n"
              "  \"r2_bytes_pre_coding\": %llu,\n"
              "  \"r2_bytes_post_coding\": %llu,\n"
              "  \"r3_wire_bytes_uncoded\": %llu,\n"
              "  \"r3_wire_bytes_coded\": %llu,\n"
              "  \"r3_wire_cut\": %.4f,\n"
              "  \"r3_fabric_cut\": %.4f,\n"
              "  \"r3_bytes_pre_coding\": %llu,\n"
              "  \"r3_bytes_post_coding\": %llu,\n",
              ull(r2.uncoded.shuffle_bytes_wire),
              ull(r2.coded.shuffle_bytes_wire), r2.wire_cut, r2.fabric_cut,
              ull(r2.coded.bytes_pre_coding), ull(r2.coded.bytes_post_coding),
              ull(r3.uncoded.shuffle_bytes_wire),
              ull(r3.coded.shuffle_bytes_wire), r3.wire_cut, r3.fabric_cut,
              ull(r3.coded.bytes_pre_coding), ull(r3.coded.bytes_post_coding))
       << "  \"model_rows\": [\n"
       << model_json.str() << "\n  ]\n}\n";
  std::printf("\nwrote BENCH_ext_coded_shuffle.json\n");

  // The headline claims, enforced.
  if (r2.wire_cut < 1.7) {
    std::fprintf(stderr, "FATAL: r=2 wire cut %.2fx below the 1.7x gate\n",
                 r2.wire_cut);
    return 1;
  }
  if (r3.wire_cut < 2.5) {
    std::fprintf(stderr, "FATAL: r=3 wire cut %.2fx below the 2.5x gate\n",
                 r3.wire_cut);
    return 1;
  }
  return 0;
}
