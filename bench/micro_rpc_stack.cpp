// Real (wall-clock, in-process) comparison of the functional stacks —
// Figure 2's thesis in miniature, with executable code instead of models:
// the same echo exchange costs more per message through the RPC framing
// and serialization layers than through a raw byte channel or minimpi
// send/recv, and more again through HTTP.
//
// Absolute numbers reflect this machine and in-process pipes (no real
// NIC); the *ordering and the per-layer overhead* are the point.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <thread>
#include <vector>

#include "mpid/hrpc/http.hpp"
#include "mpid/hrpc/pipe.hpp"
#include "mpid/hrpc/rpc.hpp"
#include "mpid/minimpi/comm.hpp"
#include "mpid/minimpi/world.hpp"

namespace {

using namespace mpid;

const std::vector<std::int64_t> kSizes = {1, 1024, 64 * 1024, 1024 * 1024};

// ------------------------------------------------------ raw byte pipe --

void BM_RawPipePingPong(benchmark::State& state) {
  auto [client, server] = hrpc::make_connection(1 << 22);
  std::thread echo([&server = server] {
    try {
      for (;;) {
        const auto header = server.read_exactly(4);
        std::uint32_t n = 0;
        for (const auto b : header) {
          n = (n << 8) | static_cast<std::uint8_t>(b);
        }
        const auto body = server.read_exactly(n);
        server.write(header);
        server.write(body);
      }
    } catch (const std::exception&) {
    }
  });

  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> header(4);
  for (int i = 0; i < 4; ++i) {
    header[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((size >> (8 * (3 - i))) & 0xff);
  }
  std::vector<std::byte> payload(size, std::byte{0x77});
  for (auto _ : state) {
    client.write(header);
    client.write(payload);
    benchmark::DoNotOptimize(client.read_exactly(4 + size));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
  client.close();
  echo.join();
}
BENCHMARK(BM_RawPipePingPong)->Apply([](benchmark::internal::Benchmark* b) {
  for (const auto s : kSizes) b->Arg(s);
});

// ------------------------------------------------------------ minimpi --

void BM_MinimpiPingPong(benchmark::State& state) {
  constexpr std::uint64_t kCtx = 0x77aa77aa77aa77aaULL;
  minimpi::World world(2);
  std::thread echo([&world] {
    minimpi::Comm comm(world, 1, kCtx);
    std::vector<std::byte> buf;
    for (;;) {
      const auto st = comm.recv_bytes(0, minimpi::kAnyTag, buf);
      if (st.tag == 9) return;
      comm.send_bytes(0, 0, buf);
    }
  });
  minimpi::Comm comm(world, 0, kCtx);
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)),
                                 std::byte{0x55});
  std::vector<std::byte> buf;
  for (auto _ : state) {
    comm.send_bytes(1, 0, payload);
    comm.recv_bytes(1, 0, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  comm.send_bytes(1, 9, {});
  echo.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_MinimpiPingPong)->Apply([](benchmark::internal::Benchmark* b) {
  for (const auto s : kSizes) b->Arg(s);
});

// --------------------------------------------------------- Hadoop RPC --

void BM_HadoopRpcEcho(benchmark::State& state) {
  hrpc::RpcServer server;
  server.register_method("BenchProtocol", 1, "recv",
                         [](std::span<const std::byte> args) {
                           return std::vector<std::byte>(args.begin(),
                                                         args.end());
                         });
  hrpc::RpcClient client(server);
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)),
                                 std::byte{0x33});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.call("BenchProtocol", 1, "recv", payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_HadoopRpcEcho)->Apply([](benchmark::internal::Benchmark* b) {
  for (const auto s : kSizes) b->Arg(s);
});

// ------------------------------------------------------------- HTTP ----

void BM_HttpGet(benchmark::State& state) {
  hrpc::HttpServer server;
  const std::string body(static_cast<std::size_t>(state.range(0)), 'h');
  server.add_servlet("/mapOutput",
                     [&body](std::string_view) { return body; });
  hrpc::HttpClient client(server);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get("/mapOutput?map=1&reduce=2"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HttpGet)->Apply([](benchmark::internal::Benchmark* b) {
  for (const auto s : kSizes) b->Arg(s);
});

}  // namespace

MPID_BENCHMARK_MAIN()
