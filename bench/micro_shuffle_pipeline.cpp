// Shuffle pipeline A/B microbenchmark.
//
// Measures the MPI-D shuffle hot path end to end on in-process ranks —
// mappers call MPI_D_Send, reducers drain MPI_D_Recv groups — and compares
// the seed's synchronous copy-per-frame transport (pipelined=0) against
// the pipelined zero-copy shuffle (pipelined=1: bounded-window owned
// isends, pooled frame buffers, one-frame-ahead wildcard prefetch, direct
// realignment when no combiner is configured).
//
// Reported per mode:
//   bytes_per_second   — shuffled value payload / wall time
//   mapper_stall_s     — aggregate wall time mappers spent inside the
//                        transport while flushing frames (Stats::flush_wait_ns)
//   frames             — partition frames shipped
//   pool_hit_rate      — FramePool acquire hit rate (pipelined mode)
//
// Results also land in BENCH_micro_shuffle_pipeline.json for the perf
// trajectory across PRs.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <memory>
#include <string>
#include <vector>

#include "mpid/common/framepool.hpp"
#include "mpid/core/mpid.hpp"
#include "mpid/fault/fault.hpp"
#include "mpid/minimpi/comm.hpp"
#include "mpid/minimpi/world.hpp"

namespace {

using namespace mpid;

constexpr int kMappers = 4;
constexpr int kReducers = 2;
constexpr int kPairsPerMapper = 4096;
constexpr std::size_t kValueBytes = 2048;

/// One full shuffle: every mapper ships kPairsPerMapper values of
/// kValueBytes each; reducers drain groups. Returns the master's report.
core::JobReport run_shuffle(const core::Config& config) {
  core::JobReport report;
  minimpi::run_world(config.world_size(), [&](minimpi::Comm& comm) {
    core::MpiD d(comm, config);
    switch (d.role()) {
      case core::Role::kMapper: {
        const std::string value(kValueBytes, 'x');
        // 64 distinct keys spread pairs over both partitions while keeping
        // key handling cheap relative to the 2 KiB payload.
        std::vector<std::string> keys;
        keys.reserve(64);
        for (int k = 0; k < 64; ++k) keys.push_back("key-" + std::to_string(k));
        for (int i = 0; i < kPairsPerMapper; ++i) {
          d.send(keys[static_cast<std::size_t>(i % 64)], value);
        }
        d.finalize();
        break;
      }
      case core::Role::kReducer: {
        std::string key;
        std::vector<std::string> values;
        std::size_t drained = 0;
        while (d.recv_group(key, values)) drained += values.size();
        benchmark::DoNotOptimize(drained);
        d.finalize();
        break;
      }
      case core::Role::kMaster: {
        d.finalize();
        report = d.report();
        break;
      }
    }
  });
  return report;
}

void BM_ShuffleThroughput(benchmark::State& state) {
  const bool pipelined = state.range(0) != 0;

  core::Config config;
  config.mappers = kMappers;
  config.reducers = kReducers;
  config.pipelined_shuffle = pipelined;
  config.direct_realign = pipelined;  // part of the zero-copy path
  // A dedicated pool per mode keeps hit-rate accounting clean.
  config.frame_pool = std::make_shared<common::FramePool>();

  const std::int64_t payload =
      static_cast<std::int64_t>(kMappers) * kPairsPerMapper *
      static_cast<std::int64_t>(kValueBytes);

  std::uint64_t stall_ns = 0;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    const auto report = run_shuffle(config);
    stall_ns += report.totals.flush_wait_ns;
    frames += report.totals.frames_sent;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          payload);
  state.counters["mapper_stall_s"] = static_cast<double>(stall_ns) * 1e-9;
  state.counters["frames"] = static_cast<double>(frames);
  const auto pc = config.frame_pool->counters();
  state.counters["pool_hit_rate"] =
      pc.acquires == 0 ? 0.0
                       : static_cast<double>(pc.hits) /
                             static_cast<double>(pc.acquires);
}
BENCHMARK(BM_ShuffleThroughput)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"pipelined"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Transport-only A/B at the minimpi layer: ship 256 KiB frames from one
/// rank to another, copying (span send) vs moving (owned send with pool
/// recycling). Isolates the zero-copy + pooling win from MPI-D logic.
void BM_FrameTransport(benchmark::State& state) {
  const bool owned = state.range(0) != 0;
  constexpr std::size_t kFrameBytes = 256 * 1024;
  constexpr int kFramesPerRound = 64;

  // One pool shared by both ranks, as in MPI-D: the receiver releases a
  // parsed frame's allocation and the sender's next acquire reuses it.
  const auto pool = std::make_shared<common::FramePool>();
  for (auto _ : state) {
    minimpi::run_world(2, [&](minimpi::Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<std::byte> frame(kFrameBytes, std::byte{0x42});
        for (int i = 0; i < kFramesPerRound; ++i) {
          if (owned) {
            auto buf = pool->acquire(kFrameBytes);
            buf.resize(kFrameBytes, std::byte{0x42});
            comm.send_bytes_owned(1, 1, std::move(buf));
          } else {
            comm.send_bytes(1, 1, frame);
          }
        }
      } else {
        for (int i = 0; i < kFramesPerRound; ++i) {
          std::vector<std::byte> sink;
          comm.recv_bytes(0, 1, sink);
          benchmark::DoNotOptimize(sink.data());
          if (owned) pool->release(std::move(sink));
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kFramesPerRound *
                          static_cast<std::int64_t>(kFrameBytes));
}
BENCHMARK(BM_FrameTransport)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"owned"})
    ->UseRealTime();

/// Resilient-shuffle cost curve: the same shuffle with (incarnation, seq,
/// checksum) frame headers, mapper-side retention and ack/retransmit,
/// while the injector drops the given permille of data frames. The
/// recovery counters land in the JSON artifact next to mapper_stall_s, so
/// the overhead of fault tolerance is tracked across PRs like the
/// pipelined win is.
void BM_ResilientShuffle(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 1000.0;

  core::Config config;
  config.mappers = kMappers;
  config.reducers = kReducers;
  config.pipelined_shuffle = true;
  config.resilient_shuffle = true;
  config.frame_pool = std::make_shared<common::FramePool>();

  const std::int64_t payload =
      static_cast<std::int64_t>(kMappers) * kPairsPerMapper *
      static_cast<std::int64_t>(kValueBytes);

  core::Stats totals;
  for (auto _ : state) {
    if (drop > 0.0) {
      fault::FaultPlan plan;
      plan.seed = 11;
      plan.message_drop_prob = drop;
      config.fault_injector = std::make_shared<fault::FaultInjector>(plan);
    }
    const auto report = run_shuffle(config);
    totals += report.totals;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          payload);
  state.counters["mapper_stall_s"] =
      static_cast<double>(totals.flush_wait_ns) * 1e-9;
  state.counters["frames"] = static_cast<double>(totals.frames_sent);
  state.counters["frames_retransmitted"] =
      static_cast<double>(totals.frames_retransmitted);
  state.counters["retransmit_requests"] =
      static_cast<double>(totals.retransmit_requests);
  state.counters["duplicate_frames_dropped"] =
      static_cast<double>(totals.duplicate_frames_dropped);
  state.counters["recovery_wall_s"] =
      static_cast<double>(totals.recovery_wall_ns) * 1e-9;
}
BENCHMARK(BM_ResilientShuffle)
    ->Arg(0)
    ->Arg(20)
    ->Arg(50)
    ->ArgNames({"drop_permille"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

MPID_BENCHMARK_MAIN_JSON("micro_shuffle_pipeline")
