// Representative shuffle frames plus a real-codec measurement pass,
// shared by the modeled benches (ext_interconnect_shuffle,
// fig6_wordcount) and micro_codec.
//
// The cluster models take a compression ratio as a *data property*
// (hadoop::JobSpec::shuffle_compression_ratio,
// mpidsim::MpidJobSpec::shuffle_compression_ratio). Rather than
// hand-picking that constant, the benches synthesize frames with the
// modeled workload's statistics, push them through mpid::common::codec
// and feed the measured ratio into the model — so the modeled win is the
// real codec's win on that data shape, stored escapes included.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mpid/common/codec.hpp"
#include "mpid/common/kvframe.hpp"
#include "mpid/common/prng.hpp"
#include "mpid/common/zipf.hpp"

namespace mpid::bench {

/// A post-combiner WordCount partition frame: sorted Zipf-1.0 vocabulary
/// keys, one decimal count per key — the shape both runtimes spill after
/// the map-side combiner.
inline std::vector<std::byte> wordcount_frame(std::size_t target_bytes,
                                              std::uint64_t seed) {
  common::Xoshiro256StarStar rng(seed);
  common::KvListWriter writer;
  writer.reserve(target_bytes + 64);
  // Zipf counts, generated in key order so the frame is a sorted run:
  // rank r of a Zipf-1.0 vocabulary appears ~ 1/r times, with
  // multiplicative jitter so values are not a closed formula.
  for (std::uint64_t rank = 1; writer.byte_size() < target_bytes; ++rank) {
    char key[24];
    std::snprintf(key, sizeof key, "word-%08llu",
                  static_cast<unsigned long long>(rank));
    const std::uint64_t count =
        1 + (1000000 / rank) * (90 + rng.next_below(21)) / 100;
    writer.begin_group(key, 1);
    writer.add_value(std::to_string(count));
  }
  return writer.take();
}

/// A GridMix/JavaSort-style frame: one sorted run of hex record keys with
/// ~90-byte text payloads built from a Zipf word vocabulary (the
/// map-side sorted spill of a text-record sort, hash-partitioned so keys
/// share no partition prefix).
inline std::vector<std::byte> javasort_frame(std::size_t target_bytes,
                                             std::uint64_t seed) {
  common::Xoshiro256StarStar rng(seed);
  // A Zipf-sampled vocabulary of natural-length words (3-10 letters), so
  // the payloads have real text statistics rather than numeric tokens.
  common::ZipfSampler word_rank(4096, 1.0);
  std::vector<std::string> vocabulary;
  vocabulary.reserve(4096);
  for (std::size_t w = 0; w < 4096; ++w) {
    std::string word;
    const std::size_t len = 3 + rng.next_below(8);
    for (std::size_t c = 0; c < len; ++c) {
      word += static_cast<char>('a' + rng.next_below(26));
    }
    vocabulary.push_back(std::move(word));
  }
  std::vector<std::string> keys;
  // Random keys, sorted afterwards: a sorted run over a hash-partitioned
  // keyspace (adjacent keys share only coincidental prefixes).
  const std::size_t pairs = target_bytes / 100 + 1;
  keys.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    char key[20];
    std::snprintf(key, sizeof key, "%016llx",
                  static_cast<unsigned long long>(rng()));
    keys.emplace_back(key);
  }
  std::sort(keys.begin(), keys.end());
  common::KvListWriter writer;
  writer.reserve(target_bytes + 128);
  for (const auto& key : keys) {
    if (writer.byte_size() >= target_bytes) break;
    std::string value;
    while (value.size() < 90) {
      value += vocabulary[word_rank(rng) - 1];
      value += ' ';
    }
    writer.begin_group(key, 1);
    writer.add_value(value);
  }
  return writer.take();
}

struct CodecSample {
  double ratio = 1.0;                    // raw bytes / wire bytes
  double encode_bytes_per_second = 0.0;  // raw bytes over encode time
  double decode_bytes_per_second = 0.0;  // raw bytes over decode time
};

/// Encodes and decodes `frame` a few rounds with the real codec and
/// returns the achieved ratio plus steady-state (best-round) throughput.
inline CodecSample measure_codec(const std::vector<std::byte>& frame,
                                 int rounds = 5) {
  using clock = std::chrono::steady_clock;
  std::vector<std::byte> wire;
  std::vector<std::byte> back;
  CodecSample sample;
  double best_encode = 1e300;
  double best_decode = 1e300;
  for (int r = 0; r < rounds; ++r) {
    wire.clear();  // encode_frame appends (callers may prefix headers)
    const auto t0 = clock::now();
    const auto result =
        common::encode_frame(common::FrameKind::kKvList, frame, wire);
    const auto t1 = clock::now();
    common::decode_frame(wire, back);
    const auto t2 = clock::now();
    sample.ratio = static_cast<double>(result.raw_bytes) /
                   static_cast<double>(result.wire_bytes);
    best_encode = std::min(
        best_encode, std::chrono::duration<double>(t1 - t0).count());
    best_decode = std::min(
        best_decode, std::chrono::duration<double>(t2 - t1).count());
  }
  sample.encode_bytes_per_second =
      static_cast<double>(frame.size()) / best_encode;
  sample.decode_bytes_per_second =
      static_cast<double>(frame.size()) / best_decode;
  return sample;
}

}  // namespace mpid::bench
