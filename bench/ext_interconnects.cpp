// Extension bench (paper future work #1 and #4): adds Socket-over-Java-NIO
// to the Figure 2/3 comparisons, and sweeps the whole comparison across
// interconnects (GigE -> 10 GbE -> InfiniBand QDR), in the spirit of
// Sur et al. [17].
//
// Headline: faster wires barely help Hadoop RPC (it is JVM-serialization
// bound) while MPI rides the hardware — so the gap the paper measured on
// GigE *widens* on modern interconnects.
#include <cstdio>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/proto/profiles.hpp"
#include "mpid/sim/engine.hpp"

int main() {
  using namespace mpid;
  using common::KiB;
  using common::MiB;

  std::printf("== Extension: NIO sockets + high-performance interconnects ==\n\n");

  // ---- NIO vs the paper's three stacks, on the paper's GigE fabric ----
  {
    sim::Engine engine;
    net::Fabric fabric(engine, 8);
    proto::HadoopRpcModel rpc(engine, fabric);
    proto::JettyHttpModel jetty(engine, fabric);
    proto::MpiModel mpi(engine, fabric);
    proto::NioSocketModel nio(engine, fabric);

    std::printf("latency on GigE, one-way (Figure 2 + NIO column):\n");
    common::TextTable lat({"msg size", "Hadoop RPC", "Java NIO", "MPICH2"});
    for (std::uint64_t n : {1ull, 1ull * KiB, 64ull * KiB, 1ull * MiB,
                            64ull * MiB}) {
      lat.add_row({common::format_bytes(n),
                   common::strformat("%.2f ms", rpc.one_way_latency(n).to_millis()),
                   common::strformat("%.2f ms", nio.one_way_latency(n).to_millis()),
                   common::strformat("%.2f ms", mpi.one_way_latency(n).to_millis())});
    }
    std::printf("%s\n", lat.render().c_str());

    std::printf("bandwidth on GigE, 128 MB (Figure 3 + NIO column):\n");
    common::TextTable bw({"packet", "RPC MB/s", "Jetty MB/s", "NIO MB/s",
                          "MPI MB/s"});
    const std::uint64_t total = 128 * MiB;
    for (std::uint64_t packet : {256ull, 64ull * KiB, 16ull * MiB}) {
      auto mbps = [&](double s) { return static_cast<double>(total) / s / 1e6; };
      bw.add_row({common::format_bytes(packet),
                  common::strformat("%.3f", mbps(rpc.stream_seconds(total, packet))),
                  common::strformat("%.1f", mbps(jetty.stream_seconds(total, packet))),
                  common::strformat("%.1f", mbps(nio.stream_seconds(total, packet))),
                  common::strformat("%.1f", mbps(mpi.stream_seconds(total, packet)))});
    }
    std::printf("%s\n", bw.render().c_str());
  }

  // ---- the same comparison across interconnects -----------------------
  std::printf("RPC vs MPI across interconnects (1 KiB latency / peak bandwidth):\n");
  common::TextTable sweep({"interconnect", "MPI @ 1 KiB", "RPC @ 1 KiB",
                           "RPC/MPI", "MPI peak MB/s"});
  for (const auto& profile : proto::all_interconnects()) {
    sim::Engine engine;
    net::Fabric fabric(engine, 8, profile.fabric);
    proto::MpiModel mpi(engine, fabric, profile.mpi);
    proto::HadoopRpcModel rpc(engine, fabric);
    const double m = mpi.one_way_latency(1 * KiB).to_millis();
    const double r = rpc.one_way_latency(1 * KiB).to_millis();
    const double peak = static_cast<double>(128 * MiB) /
                        mpi.stream_seconds(128 * MiB, 16 * MiB) / 1e6;
    sweep.add_row({profile.name, common::strformat("%.4f ms", m),
                   common::strformat("%.3f ms", r),
                   common::strformat("%.0fx", r / m),
                   common::strformat("%.0f", peak)});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf(
      "Reading: Hadoop RPC is serialization-bound, so its latency is\n"
      "nearly flat across fabrics while MPI improves ~100x from GigE to\n"
      "InfiniBand — adapting MPI into Hadoop pays more, not less, on\n"
      "modern hardware.\n");
  return 0;
}
