// Extension bench: MPI-D against the related-work baseline the paper
// discusses (Plimpton's MR-MPI, [15, 16]) on identical WordCount input,
// functionally (real libraries, in-process ranks).
//
// Structural difference under test: MR-MPI buffers ALL map output locally
// and shuffles it with one collective all-to-all (no combiner, no
// streaming); MPI-D combines locally, realigns incrementally and streams
// partitions while mapping. Both must produce identical counts; the
// counters show what each shipped.
#include <chrono>
#include <cstdio>
#include <map>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/mapred/mrmpi.hpp"
#include "mpid/minimpi/world.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void tokenize_into(std::string_view line,
                   const std::function<void(std::string_view)>& emit) {
  std::size_t start = 0;
  while (start < line.size()) {
    auto end = line.find(' ', start);
    if (end == std::string_view::npos) end = line.size();
    if (end > start) emit(line.substr(start, end - start));
    start = end + 1;
  }
}

}  // namespace

int main() {
  std::printf(
      "== Extension: MPI-D vs MR-MPI-style baseline (WordCount, 2 MiB, "
      "4 ranks) ==\n\n");

  const auto text = workloads::generate_text({}, 2 * 1024 * 1024, 909);
  const auto lines = [&] {
    std::vector<std::string> out;
    mapred::LineReader reader(text);
    while (auto line = reader.next()) out.emplace_back(*line);
    return out;
  }();

  // ---- MR-MPI: map -> collate (alltoall) -> reduce ----------------------
  std::map<std::string, std::uint64_t> mrmpi_counts;
  const auto mrmpi_start = Clock::now();
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    mapred::mrmpi::MapReduce mr(comm);
    mr.map(static_cast<int>(lines.size()),
           [&](int task, mapred::mrmpi::Emitter& out) {
             tokenize_into(lines[static_cast<std::size_t>(task)],
                           [&](std::string_view w) { out.emit(w, "1"); });
           });
    mr.collate();
    mr.reduce([](std::string_view key, std::span<const std::string> values,
                 mapred::mrmpi::Emitter& out) {
      out.emit(key, std::to_string(values.size()));
    });
    auto gathered = mr.gather(0);
    if (comm.rank() == 0) {
      for (auto& [k, v] : gathered) mrmpi_counts[k] = std::stoull(v);
    }
  });
  const double mrmpi_ms = ms_since(mrmpi_start);

  // ---- MPI-D: combine-as-you-go, streaming shuffle ----------------------
  mapred::JobDef job;
  job.map = [](std::string_view line, mapred::MapContext& ctx) {
    tokenize_into(line, [&](std::string_view w) { ctx.emit(w, "1"); });
  };
  job.reduce = [](std::string_view key, std::span<const std::string> values,
                  mapred::ReduceContext& ctx) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  };
  job.combiner = [](std::string_view, std::vector<std::string>&& values) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    return std::vector<std::string>{std::to_string(total)};
  };
  const auto mpid_start = Clock::now();
  const auto mpid_result = mapred::JobRunner(3, 1).run_on_text(job, text);
  const double mpid_ms = ms_since(mpid_start);

  std::map<std::string, std::uint64_t> mpid_counts;
  for (const auto& [k, v] : mpid_result.outputs) {
    mpid_counts[k] = std::stoull(v);
  }

  common::TextTable table({"system", "wall time", "pairs shuffled",
                           "bytes shuffled"});
  std::uint64_t raw_pairs = 0;
  for (const auto& [k, n] : mrmpi_counts) raw_pairs += n;
  table.add_row({"MR-MPI style (alltoall, no combiner)",
                 common::strformat("%.1f ms", mrmpi_ms),
                 common::strformat("%llu",
                                   static_cast<unsigned long long>(raw_pairs)),
                 "every (word, 1) pair"});
  table.add_row(
      {"MPI-D (combine + streaming frames)",
       common::strformat("%.1f ms", mpid_ms),
       common::strformat("%llu",
                         static_cast<unsigned long long>(
                             mpid_result.report.totals.pairs_after_combine)),
       common::format_bytes(mpid_result.report.totals.bytes_sent)});
  std::printf("%s\n", table.render().c_str());
  std::printf("results identical: %s\n",
              mrmpi_counts == mpid_counts ? "yes" : "NO (bug!)");
  std::printf(
      "Reading: the combiner + streaming design ships ~%.0fx fewer pairs\n"
      "than the buffer-everything/alltoall baseline — the paper's case\n"
      "for building the key-value semantics INTO the library.\n",
      static_cast<double>(raw_pairs) /
          static_cast<double>(
              std::max<std::uint64_t>(
                  1, mpid_result.report.totals.pairs_after_combine)));
  return mrmpi_counts == mpid_counts ? 0 : 1;
}
