// Extension bench: the paper's comparison with *functional* systems at
// in-process scale, in two parts.
//
// Part 1 (Section II's methodology, live): the same shuffle payload is
// pushed through the two transport stacks in isolation — HTTP GETs
// against the embedded server vs minimpi send/recv — where the framing,
// header-parsing and extra copies of the Hadoop path are directly
// visible in wall-clock.
//
// Part 2 (Figure 6's shape, with caveats): the same WordCount end-to-end
// through MiniHadoop (DFS + RPC control plane + HTTP shuffle) and through
// the real MPI-D library. NOTE: on a single-core container with identical
// map/reduce code, end-to-end wall time is dominated by the map/reduce
// CPU itself and the two systems land close together — the cluster-scale
// communication effect the paper measures needs a network and parallel
// hardware, which is what the calibrated fig6_wordcount bench models.
// The transport counters (GETs, RPC heartbeats, shuffled bytes) show the
// structural difference either way.
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/dfs/minidfs.hpp"
#include "mpid/hrpc/http.hpp"
#include "mpid/minimpi/comm.hpp"
#include "mpid/minimpi/world.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/minihadoop/minihadoop.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;
using Clock = std::chrono::steady_clock;

mapred::MapFn wc_map() {
  return [](std::string_view line, mapred::MapContext& ctx) {
    std::size_t start = 0;
    while (start < line.size()) {
      auto end = line.find(' ', start);
      if (end == std::string_view::npos) end = line.size();
      if (end > start) ctx.emit(line.substr(start, end - start), "1");
      start = end + 1;
    }
  };
}

mapred::ReduceFn wc_reduce() {
  return [](std::string_view key, std::span<const std::string> values,
            mapred::ReduceContext& ctx) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  };
}

core::Combiner wc_combiner() {
  return [](std::string_view, std::vector<std::string>&& values) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    return std::vector<std::string>{std::to_string(total)};
  };
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

namespace {

/// Part 1: the same framed segments through both transport stacks.
void transport_isolation() {
  using namespace mpid;
  std::printf("-- transports in isolation: 64 segments of 64 KiB --\n");
  constexpr int kSegments = 64;
  const std::string segment(64 * 1024, 'k');
  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(kSegments) * segment.size();

  // HTTP: one GET per segment against the embedded server.
  double http_ms = 0;
  {
    hrpc::HttpServer server;
    server.add_servlet("/mapOutput",
                       [&segment](std::string_view) { return segment; });
    hrpc::HttpClient client(server);
    const auto start = Clock::now();
    for (int i = 0; i < kSegments; ++i) {
      const auto response =
          client.get("/mapOutput?map=" + std::to_string(i) + "&reduce=0");
      if (response.body.size() != segment.size()) std::abort();
    }
    http_ms = ms_since(start);
  }

  // minimpi: one message per segment, wildcard receive.
  double mpi_ms = 0;
  {
    minimpi::run_world(2, [&](minimpi::Comm& comm) {
      comm.barrier();
      const auto start = Clock::now();
      if (comm.rank() == 0) {
        for (int i = 0; i < kSegments; ++i) {
          comm.send_string(1, 0, segment);
        }
        (void)comm.recv_value<int>(1, 1);  // completion ack
        mpi_ms = ms_since(start);
      } else {
        std::vector<std::byte> buf;
        for (int i = 0; i < kSegments; ++i) {
          comm.recv_bytes(minimpi::kAnySource, 0, buf);
          if (buf.size() != segment.size()) std::abort();
        }
        comm.send_value(0, 1, 1);
      }
    });
  }

  common::TextTable table({"stack", "time", "throughput"});
  table.add_row({"HTTP shuffle (embedded server)",
                 common::strformat("%.1f ms", http_ms),
                 common::strformat("%.0f MB/s",
                                   static_cast<double>(total_bytes) /
                                       (http_ms / 1e3) / 1e6)});
  table.add_row({"minimpi send/recv",
                 common::strformat("%.1f ms", mpi_ms),
                 common::strformat("%.0f MB/s",
                                   static_cast<double>(total_bytes) /
                                       (mpi_ms / 1e3) / 1e6)});
  std::printf("%s", table.render().c_str());
  std::printf("MPI-style transport advantage: %.1fx\n\n", http_ms / mpi_ms);
}

}  // namespace

int main() {
  std::printf(
      "== Extension: functional stacks compared (real code, in-process) "
      "==\n\n");
  transport_isolation();
  std::printf(
      "-- end-to-end WordCount (4 map / 2 reduce tasks, 2 workers; "
      "median of 3) --\n");

  common::TextTable table({"input", "MiniHadoop (RPC+HTTP+DFS)",
                           "MPI-D (minimpi)", "MPI-D/Hadoop",
                           "hadoop shuffle"});
  for (const std::uint64_t kib : {256ull, 1024ull, 4096ull}) {
    const auto text = workloads::generate_text({}, kib * 1024, 2026);

    auto median3 = [](auto fn) {
      double a = fn(), b = fn(), c = fn();
      if (a > b) std::swap(a, b);
      if (b > c) std::swap(b, c);
      return std::max(a, b);
    };

    minihadoop::JobSummary last_summary;
    const double hadoop_ms = median3([&] {
      dfs::MiniDfs fs(3);
      fs.create("/in", text);
      minihadoop::MiniCluster cluster(fs, 2);
      minihadoop::MiniJobConfig job;
      job.map = wc_map();
      job.reduce = wc_reduce();
      job.combiner = wc_combiner();
      job.input_path = "/in";
      job.map_tasks = 4;
      job.reduce_tasks = 2;
      const auto start = Clock::now();
      last_summary = cluster.run(job);
      return ms_since(start);
    });

    const double mpid_ms = median3([&] {
      mapred::JobDef job;
      job.map = wc_map();
      job.reduce = wc_reduce();
      job.combiner = wc_combiner();
      job.tuning.spill_threshold_bytes = 16 * 1024 * 1024;
      job.tuning.inline_combine_threshold = 0;
      const auto start = Clock::now();
      const auto result = mapred::JobRunner(4, 2).run_on_text(job, text);
      return ms_since(start) + 0 * static_cast<double>(result.outputs.size());
    });

    table.add_row(
        {common::format_bytes(kib * 1024),
         common::strformat("%.1f ms", hadoop_ms),
         common::strformat("%.1f ms", mpid_ms),
         common::strformat("%.0f%%", 100.0 * mpid_ms / hadoop_ms),
         common::strformat("%llu GETs, %s",
                           static_cast<unsigned long long>(
                               last_summary.shuffle_requests),
                           common::format_bytes(last_summary.shuffled_bytes)
                               .c_str())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the isolated transports show the Hadoop stack's framing\n"
      "and copy overhead directly (part 1). End-to-end on one in-process\n"
      "core, identical map/reduce CPU dominates and the systems converge\n"
      "(part 2) — scaling that gap up needs the cluster models\n"
      "(bench/fig6_wordcount), which is precisely why the paper measured\n"
      "on a real 8-node cluster.\n");
  return 0;
}
