// Extension bench: the full GridMix-style suite on the cluster model (the
// paper's Table I uses only JavaSort). Different workloads stress the
// copy stage very differently — the communication-dominance argument of
// Section II.A is strongest for sort-like jobs and weakest for scans.
#include <cstdio>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/gridmix.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;

  std::printf("== Extension: GridMix suite on the cluster model (27 GB, "
              "8/8 slots) ==\n\n");

  const auto cluster_spec = workloads::paper_cluster(8, 8);
  common::TextTable table({"workload", "maps", "reduces", "makespan",
                           "copy share", "transfer share", "shuffled"});
  for (const auto& entry :
       workloads::gridmix_suite(cluster_spec, 27 * GiB)) {
    sim::Engine engine;
    hadoop::Cluster cluster(engine, cluster_spec);
    const auto result = cluster.run(entry.job);
    table.add_row(
        {entry.name, common::strformat("%zu", result.maps.size()),
         common::strformat("%zu", result.reduces.size()),
         common::strformat("%.0f s", result.makespan.to_seconds()),
         common::strformat("%.1f%%", 100.0 * result.copy_fraction()),
         common::strformat("%.1f%%",
                           100.0 * result.copy_transfer_fraction()),
         common::format_bytes(static_cast<std::uint64_t>(
             result.total_shuffled_bytes()))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("monsterQuery pipeline (27 GB input, 3 chained stages):\n");
  common::TextTable stages({"stage", "input", "makespan", "copy share"});
  sim::Engine engine;
  hadoop::Cluster cluster(engine, cluster_spec);
  int stage_index = 1;
  for (const auto& stage :
       workloads::monster_query_pipeline(cluster_spec, 27 * GiB)) {
    const auto result = cluster.run(stage);
    stages.add_row({common::strformat("%d", stage_index++),
                    common::format_bytes(stage.input_bytes),
                    common::strformat("%.0f s",
                                      result.makespan.to_seconds()),
                    common::strformat("%.1f%%",
                                      100.0 * result.copy_fraction())});
  }
  std::printf("%s\n", stages.render().c_str());
  std::printf(
      "Reading: sorts shuffle every byte, so their copy share is real\n"
      "data movement; the scan moves ~2%% of the bytes yet still logs a\n"
      "large copy share because its reducers idle in the copy stage while\n"
      "maps run — the paper's own caveat that \"not all of the time in\n"
      "copy stage is caused by RPC or Jetty\", quantified. MPI adaptation\n"
      "pays most where the copy share is transfer-dominated (the sorts).\n");
  return 0;
}
