// Figure 2 — "Comparisons of Message Latency between Hadoop RPC and
// MPICH2": one-way ping-pong latency over message sizes 1 B .. 64 MB in
// the paper's three panels, plus a sanity run of the real thread-backed
// minimpi transport.
//
// Paper anchors: RPC 1.3 ms @ 1 B (2.49x MPI), 8.9 ms @ 1 KB (15.1x),
// 1259 ms @ 1 MB (123x, the peak ratio), 56827 ms @ 64 MB; the ratio
// exceeds 100x beyond 256 KB.
#include <chrono>
#include <cstdio>
#include <vector>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/minimpi/comm.hpp"
#include "mpid/minimpi/world.hpp"
#include "mpid/net/fabric.hpp"
#include "mpid/proto/models.hpp"
#include "mpid/sim/engine.hpp"

namespace {

using namespace mpid;
using common::KiB;
using common::MiB;

void print_panel(const char* title, std::uint64_t lo, std::uint64_t hi,
                 proto::HadoopRpcModel& rpc, proto::MpiModel& mpi) {
  std::printf("%s\n", title);
  common::TextTable table(
      {"msg size", "Hadoop RPC", "MPICH2 model", "RPC/MPI ratio"});
  for (std::uint64_t size = lo; size <= hi; size *= 2) {
    const double r = rpc.one_way_latency(size).to_millis();
    const double m = mpi.one_way_latency(size).to_millis();
    table.add_row({common::format_bytes(size),
                   common::strformat("%.3f ms", r),
                   common::strformat("%.3f ms", m),
                   common::strformat("%.1fx", r / m)});
  }
  std::printf("%s\n", table.render().c_str());
}

/// Real wall-clock ping-pong over the thread-backed minimpi transport:
/// demonstrates the functional library; absolute values reflect this
/// machine, not the paper's GigE testbed.
void real_minimpi_pingpong() {
  std::printf(
      "Sanity: real minimpi (in-process threads) ping-pong latency\n");
  common::TextTable table({"msg size", "half round-trip"});
  for (std::uint64_t size : {1ull, 1ull * KiB, 64ull * KiB, 1ull * MiB}) {
    constexpr int kIters = 200;
    double half_rtt_ns = 0;
    minimpi::run_world(2, [&](minimpi::Comm& comm) {
      std::vector<std::byte> payload(size, std::byte{0x5a});
      std::vector<std::byte> buf;
      comm.barrier();
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        if (comm.rank() == 0) {
          comm.send_bytes(1, 0, payload);
          comm.recv_bytes(1, 0, buf);
        } else {
          comm.recv_bytes(0, 0, buf);
          comm.send_bytes(0, 0, buf);
        }
      }
      if (comm.rank() == 0) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        half_rtt_ns = static_cast<double>(elapsed) / (2.0 * kIters);
      }
    });
    table.add_row({common::format_bytes(size),
                   common::format_duration_ns(
                       static_cast<std::int64_t>(half_rtt_ns))});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "== Figure 2: point-to-point latency, Hadoop RPC vs MPICH2 ==\n"
      "(one-way = ping-pong / 2; calibrated models on the 8-node GigE "
      "fabric)\n\n");

  sim::Engine engine;
  net::Fabric fabric(engine, 8);
  proto::HadoopRpcModel rpc(engine, fabric);
  proto::MpiModel mpi(engine, fabric);

  print_panel("(a) small messages: 1 B - 1 KB", 1, 1 * KiB, rpc, mpi);
  print_panel("(b) medium messages: 1 KB - 1 MB", 1 * KiB, 1 * MiB, rpc, mpi);
  print_panel("(c) large messages: 1 MB - 64 MB", 1 * MiB, 64 * MiB, rpc, mpi);

  std::printf("Paper anchors vs model:\n");
  common::TextTable anchors({"anchor", "paper", "model"});
  anchors.add_row({"RPC @ 1 B", "1.3 ms",
                   common::strformat("%.2f ms",
                                     rpc.one_way_latency(1).to_millis())});
  anchors.add_row(
      {"RPC/MPI @ 1 B", "2.49x",
       common::strformat("%.2fx", rpc.one_way_latency(1).to_millis() /
                                      mpi.one_way_latency(1).to_millis())});
  anchors.add_row(
      {"RPC/MPI @ 1 KB", "15.1x",
       common::strformat("%.1fx",
                         rpc.one_way_latency(1 * KiB).to_millis() /
                             mpi.one_way_latency(1 * KiB).to_millis())});
  anchors.add_row(
      {"RPC/MPI @ 1 MB (peak)", "123x",
       common::strformat("%.0fx",
                         rpc.one_way_latency(1 * MiB).to_millis() /
                             mpi.one_way_latency(1 * MiB).to_millis())});
  anchors.add_row({"RPC @ 64 MB", "56827 ms",
                   common::strformat("%.0f ms",
                                     rpc.one_way_latency(64 * MiB).to_millis())});
  anchors.add_row({"MPI @ 64 MB", "572 ms",
                   common::strformat("%.0f ms",
                                     mpi.one_way_latency(64 * MiB).to_millis())});
  std::printf("%s\n", anchors.render().c_str());

  real_minimpi_pingpong();
  return 0;
}
