// Extension bench: hierarchical node-local shuffle aggregation
// (DESIGN.md §14) — the structural cut in cross-fabric traffic.
//
// The paper's combiner shrinks each mapper's output, but every co-located
// mapper still ships its own copy of the hot keys across the wire. With
// node_aggregation the node's mappers merge duplicate keys through an
// in-node combine tree first and the fabric carries ONE stream per
// (node, reducer-partition) — with m combiner-friendly mappers per node,
// ~1/m of the traffic, before compression multiplies the cut.
//
// Part 1 runs the real runtimes (MPI-D JobRunner and MiniHadoop) on a
// combiner-enabled WordCount, 8 mappers at 4 per node, and verifies that
// (a) job output is byte-identical with aggregation on and off, on both
// runtimes, and (b) MPI-D's wire volume (shuffle_bytes_wire) drops >= 2x.
// The exit code gates (b), like ext_interconnect_shuffle.
//
// Part 2 asks the cluster-scale question on the Figure 6 model: how does
// the in-node merge (CPU spent) trade against the fabric bytes saved, on
// GigE vs an IB-class wire, with and without the codec? Expected shape:
// on GigE the shuffle is byte-bound and aggregation composes with
// compression into a large win; on the fast wire the fabric was never the
// bottleneck, so the merge CPU buys little — the same asymmetry the paper
// found for every communication-side optimization.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codec_sample.hpp"

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/dfs/minidfs.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/minihadoop/minihadoop.hpp"
#include "mpid/mpidsim/system.hpp"
#include "mpid/proto/profiles.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"
#include "mpid/workloads/text.hpp"

namespace {

using namespace mpid;

constexpr int kMappers = 8;
constexpr int kRanksPerNode = 4;  // 2 modeled nodes of 4 mappers each
constexpr int kReducers = 2;
constexpr std::uint64_t kInputBytes = 512 * 1024;

/// Combiner-friendly corpus: a vocabulary small enough that every
/// mapper's split covers most of it, so co-located mappers' combined
/// outputs are near-duplicates — the workload shape the in-node combine
/// tree exists for (a huge tail of mapper-unique words would cap the
/// structural cut at ~1x no matter the topology).
workloads::TextSpec corpus() {
  workloads::TextSpec spec;
  spec.vocabulary = 1000;
  return spec;
}

mapred::JobDef wordcount_def() {
  mapred::JobDef job;
  job.map = [](std::string_view line, mapred::MapContext& ctx) {
    std::size_t start = 0;
    while (start < line.size()) {
      auto end = line.find(' ', start);
      if (end == std::string_view::npos) end = line.size();
      if (end > start) ctx.emit(line.substr(start, end - start), "1");
      start = end + 1;
    }
  };
  job.reduce = [](std::string_view key, std::span<const std::string> values,
                  mapred::ReduceContext& ctx) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  };
  job.combiner = [](std::string_view, std::vector<std::string>&& values) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    return std::vector<std::string>{std::to_string(total)};
  };
  return job;
}

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

}  // namespace

int main() {
  std::printf(
      "== Extension: node-local shuffle aggregation (WordCount %s, "
      "%d mappers at %d per node, %d reducers) ==\n\n",
      common::format_bytes(kInputBytes).c_str(), kMappers, kRanksPerNode,
      kReducers);

  const auto text = workloads::generate_text(corpus(), kInputBytes, 2026);

  // ---- Part 1a: MPI-D, aggregation off vs on (exit-gated) --------------
  auto run_mpid = [&](bool aggregate) {
    auto job = wordcount_def();
    job.tuning.shuffle_compression = core::ShuffleCompression::kOn;
    job.tuning.node_aggregation = aggregate;
    job.tuning.ranks_per_node = kRanksPerNode;
    return mapred::JobRunner(kMappers, kReducers).run_on_text(job, text);
  };
  const auto mpid_off = run_mpid(false);
  const auto mpid_on = run_mpid(true);
  if (mpid_on.outputs != mpid_off.outputs) {
    std::fprintf(stderr,
                 "FATAL: MPI-D output differs with node aggregation on — "
                 "the combine tree is not output-preserving\n");
    return 1;
  }

  const auto& off = mpid_off.report.totals;
  const auto& on = mpid_on.report.totals;
  const double wire_cut = static_cast<double>(off.shuffle_bytes_wire) /
                          static_cast<double>(on.shuffle_bytes_wire);
  const double fabric_cut = static_cast<double>(off.bytes_sent) /
                            static_cast<double>(on.bytes_sent);
  const double structural_cut =
      static_cast<double>(on.bytes_pre_node_agg) /
      static_cast<double>(on.bytes_post_node_agg);

  common::TextTable mpid_table({"node agg", "wire bytes", "fabric payload",
                                "pre-agg", "post-agg", "merge ms"});
  mpid_table.add_row({"off", common::format_bytes(off.shuffle_bytes_wire),
                      common::format_bytes(off.bytes_sent), "-", "-", "-"});
  mpid_table.add_row(
      {"on", common::format_bytes(on.shuffle_bytes_wire),
       common::format_bytes(on.bytes_sent),
       common::format_bytes(on.bytes_pre_node_agg),
       common::format_bytes(on.bytes_post_node_agg),
       common::strformat("%.2f", on.node_agg_merge_ns / 1e6)});
  std::printf("MPI-D (shuffle_compression=on):\n%s\n",
              mpid_table.render().c_str());
  std::printf(
      "Output byte-identical; wire volume cut %.2fx (fabric payload "
      "%.2fx,\nstructural pre/post merge cut %.2fx at %d mappers/node).\n\n",
      wire_cut, fabric_cut, structural_cut, kRanksPerNode);

  // ---- Part 1b: MiniHadoop, same job, tracker == node ------------------
  dfs::MiniDfs fs(2);
  fs.create("/in", text);
  minihadoop::MiniCluster cluster(fs, 2);
  auto run_hadoop = [&](bool aggregate, const std::string& prefix) {
    const auto def = wordcount_def();
    minihadoop::MiniJobConfig job;
    job.map = def.map;
    job.reduce = def.reduce;
    job.combiner = def.combiner;
    job.input_path = "/in";
    job.output_prefix = prefix;
    job.map_tasks = kMappers;
    job.reduce_tasks = kReducers;
    job.shuffle_compression = shuffle::ShuffleCompression::kOn;
    job.node_aggregation = aggregate;
    return cluster.run(job);
  };
  const auto hadoop_off = run_hadoop(false, "/off");
  const auto hadoop_on = run_hadoop(true, "/on");
  if (hadoop_off.output_files.size() != hadoop_on.output_files.size()) {
    std::fprintf(stderr, "FATAL: MiniHadoop output file count differs\n");
    return 1;
  }
  for (std::size_t p = 0; p < hadoop_off.output_files.size(); ++p) {
    if (fs.read(hadoop_off.output_files[p]) !=
        fs.read(hadoop_on.output_files[p])) {
      std::fprintf(stderr,
                   "FATAL: MiniHadoop output differs with node aggregation "
                   "on — the aggregated servlet is not output-preserving\n");
      return 1;
    }
  }
  const double hadoop_fetch_cut =
      static_cast<double>(hadoop_off.shuffled_bytes) /
      static_cast<double>(hadoop_on.shuffled_bytes);
  std::printf(
      "MiniHadoop: output byte-identical; fetched HTTP bodies %s -> %s "
      "(%.2fx),\n%llu -> %llu shuffle GETs (one aggregated stream per "
      "tracker).\n\n",
      common::format_bytes(hadoop_off.shuffled_bytes).c_str(),
      common::format_bytes(hadoop_on.shuffled_bytes).c_str(),
      hadoop_fetch_cut, ull(hadoop_off.shuffle_requests),
      ull(hadoop_on.shuffle_requests));

  // ---- Part 2: Figure 6 model — merge CPU vs fabric bytes saved --------
  const auto wc_sample =
      bench::measure_codec(bench::wordcount_frame(4 << 20, 7));
  const auto profiles = proto::all_interconnects();
  const std::vector<proto::InterconnectProfile> ablation = {profiles.front(),
                                                            profiles.back()};

  std::printf(
      "== Model: 30 GB WordCount on the Figure 6 layout (7 mappers/node) "
      "==\n\n");
  common::TextTable model_table({"interconnect", "node agg", "codec",
                                 "wire bytes", "map phase", "makespan"});
  std::ostringstream model_json;
  int model_rows = 0;
  for (const auto& profile : ablation) {
    for (const bool aggregate : {false, true}) {
      for (const bool codec : {false, true}) {
        auto spec = workloads::fig6_mpid_system();
        spec.fabric = profile.fabric;
        spec.node_aggregation = aggregate;
        auto job = workloads::mpid_wordcount_job(30 * common::GiB);
        job.compress_shuffle = codec;
        job.shuffle_compression_ratio = wc_sample.ratio;
        sim::Engine engine;
        mpidsim::MpidSystem system(engine, spec);
        const auto result = system.run(job);
        double wire = result.intermediate_bytes;
        if (aggregate) wire /= spec.mappers_per_node;
        if (codec) wire /= wc_sample.ratio;
        model_table.add_row(
            {profile.name, aggregate ? "on" : "off", codec ? "on" : "off",
             common::format_bytes(static_cast<std::uint64_t>(wire)),
             common::strformat("%.0f s", result.map_phase_end.to_seconds()),
             common::strformat("%.0f s", result.makespan.to_seconds())});
        model_json << (model_rows++ ? ",\n" : "")
                   << common::strformat(
                          "    {\"interconnect\": \"%s\", \"node_agg\": %s, "
                          "\"codec\": %s, \"wire_bytes\": %.0f, "
                          "\"map_phase_s\": %.3f, \"makespan_s\": %.3f}",
                          profile.name.c_str(), aggregate ? "true" : "false",
                          codec ? "true" : "false", wire,
                          result.map_phase_end.to_seconds(),
                          result.makespan.to_seconds());
      }
    }
  }
  std::printf("%s\n", model_table.render().c_str());
  std::printf(
      "Reading: the single Figure 6 reducer caps the makespan at its own\n"
      "processing rate, so the fabric shows up in the MAP phase: on GigE\n"
      "the 49 mappers' send windows stall on the reducer node's downlink\n"
      "until node aggregation's structural %dx cut (stacking with the\n"
      "codec's measured %.2fx) pulls the map wave back to disk-bound — the\n"
      "level the IB-class wire reaches with no aggregation at all. Buying\n"
      "the cut with in-node merge CPU or with a faster fabric is the same\n"
      "trade the paper prices for every communication-side fix.\n",
      workloads::fig6_mpid_system().mappers_per_node, wc_sample.ratio);

  std::ofstream json("BENCH_ext_node_agg.json");
  json << "{\n  \"name\": \"ext_node_agg\",\n"
       << "  \"input_bytes\": " << kInputBytes << ",\n"
       << "  \"mappers\": " << kMappers << ",\n"
       << "  \"ranks_per_node\": " << kRanksPerNode << ",\n"
       << "  \"reducers\": " << kReducers << ",\n"
       << common::strformat(
              "  \"mpid_wire_bytes_off\": %llu,\n"
              "  \"mpid_wire_bytes_on\": %llu,\n"
              "  \"mpid_wire_cut\": %.4f,\n"
              "  \"mpid_fabric_cut\": %.4f,\n"
              "  \"mpid_bytes_pre_node_agg\": %llu,\n"
              "  \"mpid_bytes_post_node_agg\": %llu,\n"
              "  \"mpid_node_agg_merge_ns\": %llu,\n"
              "  \"hadoop_shuffled_bytes_off\": %llu,\n"
              "  \"hadoop_shuffled_bytes_on\": %llu,\n"
              "  \"hadoop_fetch_cut\": %.4f,\n",
              ull(off.shuffle_bytes_wire), ull(on.shuffle_bytes_wire),
              wire_cut, fabric_cut, ull(on.bytes_pre_node_agg),
              ull(on.bytes_post_node_agg), ull(on.node_agg_merge_ns),
              ull(hadoop_off.shuffled_bytes), ull(hadoop_on.shuffled_bytes),
              hadoop_fetch_cut)
       << "  \"model_rows\": [\n"
       << model_json.str() << "\n  ]\n}\n";
  std::printf("\nwrote BENCH_ext_node_agg.json\n");

  // The headline claim, enforced: at >= 4 combiner-friendly mappers per
  // node the aggregated wire volume must be at least half the per-mapper
  // volume — otherwise the combine tree has regressed.
  return wire_cut >= 2.0 ? 0 : 1;
}
