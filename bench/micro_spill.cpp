// mpid::store microbenchmark: the reducer-side merge with and without
// the disk tier engaged, on identical frame sets.
//
//   MergeInMemory        - SegmentMerger, unbounded budget (the baseline
//                          every PR's >10%% gate protects)
//   MergeSpilled/<fanin> - the same merge under a budget ~1/10 of the
//                          working set, so every run spills and the final
//                          merge is preceded by fan-in compaction passes;
//                          the fanin sweep exposes the pass-count vs
//                          open-runs trade-off of spill_merge_fanin
//
// Throughput is bytes of merged frame data per second; spilled_bytes and
// merge_passes counters make the disk tier's extra I/O visible in the
// JSON artifact (BENCH_micro_spill.json).
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "mpid/common/kvframe.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/merger.hpp"
#include "mpid/store/budget.hpp"

namespace {

using namespace mpid;

/// One key-sorted frame of `keys` groups with overlapping key ranges
/// across frames — the realigned-segment shape reducers actually merge.
std::vector<std::byte> make_frame(int frame, int keys, std::size_t value_bytes) {
  common::KvListWriter writer;
  for (int k = 0; k < keys; ++k) {
    const int id = frame % 5 + k * 5;
    writer.begin_group("key" + std::to_string(100000 + id), 2);
    writer.add_value("f" + std::to_string(frame) + "/" + std::to_string(id));
    writer.add_value(std::string(value_bytes, 'v'));
  }
  return writer.take();
}

std::vector<std::vector<std::byte>> make_frames(int frames, int keys,
                                                std::size_t value_bytes) {
  std::vector<std::vector<std::byte>> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) out.push_back(make_frame(f, keys, value_bytes));
  return out;
}

std::size_t total_bytes(const std::vector<std::vector<std::byte>>& frames) {
  std::size_t n = 0;
  for (const auto& f : frames) n += f.size();
  return n;
}

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "mpid-bench-XXXXXX");
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

constexpr int kFrames = 24;
constexpr int kKeysPerFrame = 200;
constexpr std::size_t kValueBytes = 96;

void drain(shuffle::SegmentMerger& merger, benchmark::State& state) {
  std::string key;
  std::vector<std::string> values;
  std::size_t groups = 0;
  while (merger.next_group(key, values)) {
    benchmark::DoNotOptimize(values);
    ++groups;
  }
  state.counters["groups"] = static_cast<double>(groups);
}

void BM_MergeInMemory(benchmark::State& state) {
  const auto frames = make_frames(kFrames, kKeysPerFrame, kValueBytes);
  for (auto _ : state) {
    shuffle::SegmentMerger merger;
    for (const auto& f : frames) merger.add_frame(f);
    drain(merger, state);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      total_bytes(frames) * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_MergeInMemory);

void BM_MergeSpilled(benchmark::State& state) {
  const auto frames = make_frames(kFrames, kKeysPerFrame, kValueBytes);
  TempDir dir;
  shuffle::ShuffleOptions opts;
  opts.spill_dir = dir.path;
  opts.spill_page_bytes = shuffle::ShuffleOptions::kMinSpillPageBytes;
  // ~1/10 of the working set: every iteration really spills.
  opts.memory_budget_bytes =
      std::max<std::size_t>(total_bytes(frames) / 10, 2 * opts.spill_page_bytes);
  opts.spill_merge_fanin = static_cast<std::size_t>(state.range(0));
  opts.validate();

  shuffle::ShuffleCounters counters;
  for (auto _ : state) {
    store::MemoryBudget budget(opts.memory_budget_bytes);
    shuffle::SegmentMerger merger;
    merger.enable_spill(opts, &budget, &counters);
    for (const auto& f : frames) merger.add_frame(f);
    merger.finish_spill_phase();
    drain(merger, state);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      total_bytes(frames) * static_cast<std::size_t>(state.iterations())));
  const auto iters = static_cast<double>(state.iterations());
  state.counters["spilled_bytes"] =
      static_cast<double>(counters.bytes_spilled_disk) / iters;
  state.counters["merge_passes"] =
      static_cast<double>(counters.external_merge_passes) / iters;
}
BENCHMARK(BM_MergeSpilled)->Arg(2)->Arg(4)->Arg(16);

}  // namespace

MPID_BENCHMARK_MAIN_JSON("micro_spill")
