// Figure 6 — "Performance Comparison of WordCount Example between Our
// Simulation System with the MPI-D Prototype and Hadoop": WordCount over
// 1-100 GB on the 8-node cluster; Hadoop runs with 7/7 slots and its
// default single reduce task; the MPI-D system runs 49 mapper processes,
// 1 reducer and a rank-0 master.
//
// Paper anchors: Hadoop 49 s -> 2001 s and MPI-D 3.9 s -> 1129 s across
// 1/10/100 GB; MPI-D's time is 8% / 48% / 56% of Hadoop's (a 44% saving
// at 100 GB).
//
// A second table re-runs every point with shuffle compression on
// (mapred.compress.map.output on the Hadoop side, shuffle_compression on
// the MPI-D side), with the ratio measured from the real codec on
// post-combiner WordCount frames — the paper anchors stay against the
// uncompressed baseline.
// Passing a threads argument (`fig6_wordcount <threads>`) reruns the
// MPI-D side with the hybrid process+threads model
// (SystemSpec::map_threads, mirroring core::Config::map_threads), so the
// paper-scale figure can be reproduced with multi-core ranks.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "codec_sample.hpp"

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/mpidsim/system.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main(int argc, char** argv) {
  using namespace mpid;
  using common::GiB;

  int map_threads = 1;
  if (argc > 1) {
    map_threads = std::atoi(argv[1]);
    if (map_threads < 1) {
      std::fprintf(stderr, "usage: %s [map_threads >= 1]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "== Figure 6: WordCount, Hadoop vs the MPI-D simulation system ==\n");
  std::printf("   (MPI-D ranks: %d worker thread%s per mapper process)\n\n",
              map_threads, map_threads == 1 ? "" : "s");

  struct PaperPoint {
    std::uint64_t gb;
    double hadoop_s;  // <= 0 when the paper doesn't quote the value
    double mpid_s;
    double ratio;
  };
  const std::vector<PaperPoint> points = {
      {1, 49.0, 3.9, 0.08},   {3, -1, -1, -1},     {10, -1, -1, 0.48},
      {30, -1, -1, -1},       {100, 2001.0, 1129.0, 0.56}};

  // The compression tables feed the model the real codec's measured
  // ratio on post-combiner WordCount frames (auto-mode semantics).
  const auto codec =
      bench::measure_codec(bench::wordcount_frame(4 << 20, 7));

  common::TextTable table({"input", "Hadoop", "MPI-D system",
                           "MPI-D/Hadoop", "paper ratio"});
  common::TextTable codec_table({"input", "shuffle raw", "shuffle wire",
                                 "Hadoop +codec", "MPI-D +codec"});
  common::TextTable store_table({"input", "folded spill", "two-tier store",
                                 "spilled", "merge passes"});
  for (const auto& p : points) {
    const auto run_hadoop = [&](bool compress) {
      sim::Engine engine;
      hadoop::Cluster cluster(engine, workloads::fig6_hadoop_cluster());
      auto job = workloads::hadoop_wordcount_job(p.gb * GiB);
      job.compress_map_output = compress;
      job.shuffle_compression_ratio = codec.ratio;
      return cluster.run(job).makespan.to_seconds();
    };
    const auto run_mpid_result = [&](bool compress, bool store_model) {
      sim::Engine engine;
      auto spec = workloads::fig6_mpid_system();
      spec.map_threads = map_threads;
      spec.model_spill_store = store_model;
      mpidsim::MpidSystem system(engine, spec);
      auto job = workloads::mpid_wordcount_job(p.gb * GiB);
      job.compress_shuffle = compress;
      job.shuffle_compression_ratio = codec.ratio;
      return system.run(job);
    };
    const auto run_mpid = [&](bool compress) {
      return run_mpid_result(compress, false).makespan.to_seconds();
    };
    const double hadoop_s = run_hadoop(false);
    const double mpid_s = run_mpid(false);

    table.add_row(
        {common::strformat("%llu GB", static_cast<unsigned long long>(p.gb)),
         p.hadoop_s > 0
             ? common::strformat("%.1f s (paper %.0f)", hadoop_s, p.hadoop_s)
             : common::strformat("%.1f s", hadoop_s),
         p.mpid_s > 0
             ? common::strformat("%.1f s (paper %.0f)", mpid_s, p.mpid_s)
             : common::strformat("%.1f s", mpid_s),
         common::strformat("%.0f%%", 100.0 * mpid_s / hadoop_s),
         p.ratio > 0 ? common::strformat("%.0f%%", 100.0 * p.ratio) : "-"});

    const double hadoop_codec_s = run_hadoop(true);
    const double mpid_codec_s = run_mpid(true);
    const double raw_gb = 0.30 * static_cast<double>(p.gb);  // combiner out
    codec_table.add_row(
        {common::strformat("%llu GB", static_cast<unsigned long long>(p.gb)),
         common::strformat("%.1f GB", raw_gb),
         common::strformat("%.1f GB", raw_gb / codec.ratio),
         common::strformat("%.1f s (%.2fx)", hadoop_codec_s,
                           hadoop_s / hadoop_codec_s),
         common::strformat("%.1f s (%.2fx)", mpid_codec_s,
                           mpid_s / mpid_codec_s)});

    // Bounded-RAM column: the same points with the two-tier store modeled
    // explicitly (budget-sized runs through the reducer node's disk plus
    // the fan-in merge cascade) instead of the folded spill rate.
    const auto store_run = run_mpid_result(false, true);
    store_table.add_row(
        {common::strformat("%llu GB", static_cast<unsigned long long>(p.gb)),
         common::strformat("%.1f s", mpid_s),
         common::strformat("%.1f s", store_run.makespan.to_seconds()),
         common::strformat("%.1f GB", store_run.spilled_bytes /
                                          static_cast<double>(GiB)),
         common::strformat("%d", store_run.external_merge_passes)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: MPI-D wins by an order of magnitude on startup-dominated\n"
      "small jobs and still saves ~40-60%% at 100 GB, where both systems\n"
      "are bounded by the single reducer — the paper's Figure 6 shape.\n\n");

  std::printf(
      "== With shuffle compression (real codec, measured %.2fx on\n"
      "   post-combiner WordCount frames) ==\n\n%s\n",
      codec.ratio, codec_table.render().c_str());
  std::printf(
      "Reading: the codec cuts the wire volume ~%.0fx, but Figure 6's\n"
      "makespans barely move — both systems funnel everything into one\n"
      "reducer whose *processing* rate, not the fabric, is the binding\n"
      "constraint here (the scalability limit the paper lists as future\n"
      "work), and MPI-D even pays a small encode/decode tax. The freed\n"
      "bandwidth is real — ext_interconnect_shuffle isolates the fetch\n"
      "path and shows the >4x transfer win — it just is not this\n"
      "workload's bottleneck. Compression composes with, rather than\n"
      "substitutes for, scaling the reducers.\n\n");

  std::printf(
      "== Bounded RAM: the two-tier spill store (mpid::store) modeled\n"
      "   explicitly ==\n\n%s\n",
      store_table.render().c_str());
  std::printf(
      "Reading: below the 1.5 GB reducer budget the columns agree — no\n"
      "spill, no merge passes. Beyond it the two-tier column charges the\n"
      "real cost shape: run writes and the fan-in merge cascade go through\n"
      "the reducer node's disk (shared with its mappers), so the spill\n"
      "penalty scales with disk bandwidth and cascade depth instead of one\n"
      "folded rate — the 100 GB-class regime mpid::store exists for.\n");
  return 0;
}
