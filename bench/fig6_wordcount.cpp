// Figure 6 — "Performance Comparison of WordCount Example between Our
// Simulation System with the MPI-D Prototype and Hadoop": WordCount over
// 1-100 GB on the 8-node cluster; Hadoop runs with 7/7 slots and its
// default single reduce task; the MPI-D system runs 49 mapper processes,
// 1 reducer and a rank-0 master.
//
// Paper anchors: Hadoop 49 s -> 2001 s and MPI-D 3.9 s -> 1129 s across
// 1/10/100 GB; MPI-D's time is 8% / 48% / 56% of Hadoop's (a 44% saving
// at 100 GB).
#include <cstdio>
#include <vector>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/mpidsim/system.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;

  std::printf(
      "== Figure 6: WordCount, Hadoop vs the MPI-D simulation system ==\n\n");

  struct PaperPoint {
    std::uint64_t gb;
    double hadoop_s;  // <= 0 when the paper doesn't quote the value
    double mpid_s;
    double ratio;
  };
  const std::vector<PaperPoint> points = {
      {1, 49.0, 3.9, 0.08},   {3, -1, -1, -1},     {10, -1, -1, 0.48},
      {30, -1, -1, -1},       {100, 2001.0, 1129.0, 0.56}};

  common::TextTable table({"input", "Hadoop", "MPI-D system",
                           "MPI-D/Hadoop", "paper ratio"});
  for (const auto& p : points) {
    sim::Engine hadoop_engine;
    hadoop::Cluster cluster(hadoop_engine, workloads::fig6_hadoop_cluster());
    const double hadoop_s =
        cluster.run(workloads::hadoop_wordcount_job(p.gb * GiB))
            .makespan.to_seconds();

    sim::Engine mpid_engine;
    mpidsim::MpidSystem system(mpid_engine, workloads::fig6_mpid_system());
    const double mpid_s =
        system.run(workloads::mpid_wordcount_job(p.gb * GiB))
            .makespan.to_seconds();

    table.add_row(
        {common::strformat("%llu GB", static_cast<unsigned long long>(p.gb)),
         p.hadoop_s > 0
             ? common::strformat("%.1f s (paper %.0f)", hadoop_s, p.hadoop_s)
             : common::strformat("%.1f s", hadoop_s),
         p.mpid_s > 0
             ? common::strformat("%.1f s (paper %.0f)", mpid_s, p.mpid_s)
             : common::strformat("%.1f s", mpid_s),
         common::strformat("%.0f%%", 100.0 * mpid_s / hadoop_s),
         p.ratio > 0 ? common::strformat("%.0f%%", 100.0 * p.ratio) : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: MPI-D wins by an order of magnitude on startup-dominated\n"
      "small jobs and still saves ~40-60%% at 100 GB, where both systems\n"
      "are bounded by the single reducer — the paper's Figure 6 shape.\n");
  return 0;
}
