// Ablation of the Hadoop scheduler knobs that dominate small-job latency
// (the regime of Figure 6's 1 GB point, where MPI-D wins 12x):
// heartbeat interval, tasks assigned per heartbeat, JVM startup and job
// setup — each removed/improved in isolation to show where the ~50 s of
// Hadoop small-job overhead lives.
#include <cstdio>

#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;

  std::printf(
      "== Ablation: where Hadoop's small-job overhead lives (1 GB "
      "WordCount) ==\n\n");

  const auto job = workloads::hadoop_wordcount_job(1 * GiB);

  struct Variant {
    const char* name;
    void (*tweak)(hadoop::ClusterSpec&);
  };
  const Variant variants[] = {
      {"baseline (0.20 defaults)", [](hadoop::ClusterSpec&) {}},
      {"heartbeat 3s -> 0.3s",
       [](hadoop::ClusterSpec& s) {
         s.heartbeat_interval = sim::milliseconds(300);
       }},
      {"assign 4 tasks per heartbeat",
       [](hadoop::ClusterSpec& s) { s.tasks_assigned_per_heartbeat = 4; }},
      {"JVM reuse (no per-task fork)",
       [](hadoop::ClusterSpec& s) { s.jvm_startup = sim::kTimeZero; }},
      {"no job setup cost",
       [](hadoop::ClusterSpec& s) { s.job_setup = sim::kTimeZero; }},
      {"all of the above",
       [](hadoop::ClusterSpec& s) {
         s.heartbeat_interval = sim::milliseconds(300);
         s.tasks_assigned_per_heartbeat = 4;
         s.jvm_startup = sim::kTimeZero;
         s.job_setup = sim::kTimeZero;
       }},
  };

  double baseline = 0;
  common::TextTable table({"variant", "makespan", "saved vs baseline"});
  for (const auto& variant : variants) {
    auto spec = workloads::fig6_hadoop_cluster();
    variant.tweak(spec);
    sim::Engine engine;
    hadoop::Cluster cluster(engine, spec);
    const double seconds = cluster.run(job).makespan.to_seconds();
    if (baseline == 0) baseline = seconds;
    table.add_row({variant.name, common::strformat("%.1f s", seconds),
                   common::strformat("%.1f s", baseline - seconds)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: scheduling latency (heartbeats + one-task-per-beat) and\n"
      "per-task JVMs explain most of the gap to MPI-D's ~10 s on the same\n"
      "1 GB job — communication is only part of the small-job story,\n"
      "which is why the paper's 8%% ratio at 1 GB is startup-dominated.\n");
  return 0;
}
