// Extension bench: does a faster wire fix Hadoop's shuffle? (the Sur et
// al. [17] question, asked of the cluster model). JavaSort 27 GB runs on
// GigE, 10 GbE and an InfiniBand-class fabric; only the interconnect
// changes — disks, JVMs and the scheduler stay fixed.
//
// Expected answer: only partially. The shuffle serving path is disk-seek
// bound (thousands of small segment reads per node), so upgrading the
// fabric shrinks the wire share of the copy stage but not its disk share
// — which is why the paper's proposal attacks the *software* stack
// (serialization, per-call overheads) and not just the wire.
//
// The second table asks the complementary software-level question:
// instead of a faster wire, compress the map outputs
// (mapred.compress.map.output — the knob the functional runtimes expose
// as shuffle_compression=auto). The ratio fed to the model is measured
// from the real codec (common/codec.hpp) on frames with the workload's
// data statistics, so the modeled win is the codec's real win. On the
// byte-bound WordCount shuffle the GigE copy stage must improve >= 1.5x;
// on the seek-bound JavaSort shuffle the same codec helps far less —
// compression, like the wire, only fixes the bottleneck it touches.
#include <cstdio>

#include "codec_sample.hpp"

#include "mpid/common/stats.hpp"
#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/mpidsim/system.hpp"
#include "mpid/proto/profiles.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

namespace {

mpid::hadoop::JobResult run_job(const mpid::hadoop::ClusterSpec& spec,
                                const mpid::hadoop::JobSpec& job) {
  mpid::sim::Engine engine;
  mpid::hadoop::Cluster cluster(engine, spec);
  return cluster.run(job);
}

double body_copy_avg(const mpid::hadoop::JobResult& result) {
  mpid::common::SampleSet all;
  for (const auto& r : result.reduces) all.add(r.copy_seconds());
  const double median = all.percentile(50);
  mpid::common::OnlineStats body;
  for (const auto& r : result.reduces) {
    if (r.copy_seconds() <= 5.0 * median) body.add(r.copy_seconds());
  }
  return body.mean();
}

}  // namespace

int main() {
  using namespace mpid;
  using common::GiB;

  // Measure the real codec once per data shape; the model consumes the
  // achieved ratio (auto-mode semantics: stored escapes included).
  const auto sort_sample =
      bench::measure_codec(bench::javasort_frame(4 << 20, 7));
  const auto wc_sample =
      bench::measure_codec(bench::wordcount_frame(4 << 20, 7));

  std::printf(
      "== Extension: JavaSort 27 GB across interconnects (Sur et al.'s "
      "question) ==\n\n");

  common::TextTable table({"interconnect", "wire rate", "makespan",
                           "copy share", "body copy avg", "makespan +codec"});
  for (const auto& profile : proto::all_interconnects()) {
    auto spec = workloads::paper_cluster(8, 8);
    spec.network = profile.fabric;
    auto job = workloads::javasort_job(spec, 27 * GiB);
    const auto result = run_job(spec, job);

    job.compress_map_output = true;
    job.shuffle_compression_ratio = sort_sample.ratio;
    const auto compressed = run_job(spec, job);

    table.add_row(
        {profile.name,
         common::strformat("%.0f MB/s",
                           profile.fabric.link_bytes_per_second / 1e6),
         common::strformat("%.0f s", result.makespan.to_seconds()),
         common::strformat("%.1f%%", 100.0 * result.copy_fraction()),
         common::strformat("%.1f s", body_copy_avg(result)),
         common::strformat("%.0f s", compressed.makespan.to_seconds())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: a 27x faster wire (GigE -> IB-class) barely moves the\n"
      "copy stage — shuffle serving is bound by disk seeks and the\n"
      "software stack, not bandwidth. Faster interconnects alone do not\n"
      "rescue Hadoop's shuffle; restructuring the communication software\n"
      "(the paper's MPI-D) is the complementary half, and Sur et al.'s\n"
      "11-219%% HDFS-level gains likewise came with SSDs in the mix.\n"
      "Compressing the sorted-text segments (measured ratio %.2fx) helps\n"
      "only marginally here for the same reason: seeks, not bytes.\n\n",
      sort_sample.ratio);

  std::printf(
      "== Compression instead of a faster wire: WordCount 30 GB "
      "(byte-bound shuffle) ==\n\n");

  // Shuffle time = the copy stage minus its waiting-for-maps component
  // (Hadoop's copy timer includes idle waits; the model itemizes them),
  // i.e. the seconds actually spent fetching bytes.
  const auto transfer_seconds = [](const hadoop::JobResult& r) {
    double total = 0;
    for (const auto& reduce : r.reduces) total += reduce.copy_transfer_seconds();
    return total;
  };

  common::TextTable wc_table({"interconnect", "shuffle off", "shuffle auto",
                              "shuffle speedup", "makespan off",
                              "makespan auto"});
  double gige_speedup = 0.0;
  bool first = true;
  for (const auto& profile : proto::all_interconnects()) {
    auto spec = workloads::fig6_hadoop_cluster();
    spec.network = profile.fabric;
    auto job = workloads::hadoop_wordcount_job(30 * GiB);
    const auto off = run_job(spec, job);

    job.compress_map_output = true;
    job.shuffle_compression_ratio = wc_sample.ratio;
    const auto on = run_job(spec, job);

    const double speedup = transfer_seconds(off) / transfer_seconds(on);
    if (first) gige_speedup = speedup;  // all_interconnects() leads GigE
    first = false;
    wc_table.add_row(
        {profile.name,
         common::strformat("%.0f s", transfer_seconds(off)),
         common::strformat("%.0f s", transfer_seconds(on)),
         common::strformat("%.2fx", speedup),
         common::strformat("%.0f s", off.makespan.to_seconds()),
         common::strformat("%.0f s", on.makespan.to_seconds())});
  }
  std::printf("%s\n", wc_table.render().c_str());
  std::printf(
      "Reading: WordCount funnels its whole intermediate volume through\n"
      "one reducer, so the fetch path is bytes-bound and the codec's\n"
      "measured %.2fx ratio (Zipf word counts, prefix-delta keys +\n"
      "dictionary values) turns into a %.2fx GigE shuffle-transfer win —\n"
      "more than the jump to a 10x faster wire buys, for the price of\n"
      "some map-side CPU. The makespan moves less (the copy stage mostly\n"
      "overlaps the map wave); compression attacks the software-level\n"
      "bottleneck — bytes through Jetty — that the wire upgrade cannot.\n",
      wc_sample.ratio, gige_speedup);

  std::printf(
      "\n== Coded shuffle instead of a faster wire: MPI-D expansion job "
      "30 GB, 2 reducers ==\n\n");

  // The third communication-side lever (DESIGN.md §15): keep the slow
  // wire but run every map task r=2 times and ship XOR-coded multicast
  // rounds, halving the fabric bytes. Same model as bench/ext_coded_shuffle.
  common::TextTable coded_table({"interconnect", "map phase r=1",
                                 "map phase r=2", "map wave bound by"});
  for (const auto& profile : proto::all_interconnects()) {
    double phases[2] = {0, 0};
    for (const int r : {1, 2}) {
      auto sys = workloads::fig6_mpid_system();
      sys.fabric = profile.fabric;
      sys.reducers = 2;
      sys.coded_replication = r;
      auto job = workloads::mpid_wordcount_job(30 * GiB);
      job.map_output_ratio = 2.0;
      sim::Engine engine;
      mpidsim::MpidSystem system(engine, sys);
      phases[r - 1] = system.run(job).map_phase_end.to_seconds();
    }
    coded_table.add_row(
        {profile.name, common::strformat("%.0f s", phases[0]),
         common::strformat("%.0f s", phases[1]),
         phases[1] < phases[0] ? "wire (coding pays)"
                               : "compute (coding costs)"});
  }
  std::printf("%s\n", coded_table.render().c_str());
  std::printf(
      "Reading: on GigE the r=1 map wave stalls on the reducer downlinks\n"
      "and r=2 coding buys the stall back with spare map cores, moving the\n"
      "slow wire to the same compute-bound operating point the IB-class\n"
      "fabric reaches uncoded; on the faster wires the map wave was never\n"
      "fabric-bound and the doubled scan/map is pure overhead. Like the\n"
      "codec, coding substitutes for bandwidth only where bandwidth is\n"
      "the binding constraint.\n");
  return gige_speedup >= 1.5 ? 0 : 1;
}
