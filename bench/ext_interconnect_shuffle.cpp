// Extension bench: does a faster wire fix Hadoop's shuffle? (the Sur et
// al. [17] question, asked of the cluster model). JavaSort 27 GB runs on
// GigE, 10 GbE and an InfiniBand-class fabric; only the interconnect
// changes — disks, JVMs and the scheduler stay fixed.
//
// Expected answer: only partially. The shuffle serving path is disk-seek
// bound (thousands of small segment reads per node), so upgrading the
// fabric shrinks the wire share of the copy stage but not its disk share
// — which is why the paper's proposal attacks the *software* stack
// (serialization, per-call overheads) and not just the wire.
#include <cstdio>

#include "mpid/common/stats.hpp"
#include "mpid/common/table.hpp"
#include "mpid/common/units.hpp"
#include "mpid/hadoop/cluster.hpp"
#include "mpid/proto/profiles.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/workloads/presets.hpp"

int main() {
  using namespace mpid;
  using common::GiB;

  std::printf(
      "== Extension: JavaSort 27 GB across interconnects (Sur et al.'s "
      "question) ==\n\n");

  common::TextTable table({"interconnect", "wire rate", "makespan",
                           "copy share", "body copy avg"});
  for (const auto& profile : proto::all_interconnects()) {
    auto spec = workloads::paper_cluster(8, 8);
    spec.network = profile.fabric;
    sim::Engine engine;
    hadoop::Cluster cluster(engine, spec);
    const auto result = cluster.run(workloads::javasort_job(spec, 27 * GiB));

    common::SampleSet all;
    for (const auto& r : result.reduces) all.add(r.copy_seconds());
    const double median = all.percentile(50);
    common::OnlineStats body;
    for (const auto& r : result.reduces) {
      if (r.copy_seconds() <= 5.0 * median) body.add(r.copy_seconds());
    }

    table.add_row(
        {profile.name,
         common::strformat("%.0f MB/s",
                           profile.fabric.link_bytes_per_second / 1e6),
         common::strformat("%.0f s", result.makespan.to_seconds()),
         common::strformat("%.1f%%", 100.0 * result.copy_fraction()),
         common::strformat("%.1f s", body.mean())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: a 27x faster wire (GigE -> IB-class) barely moves the\n"
      "copy stage — shuffle serving is bound by disk seeks and the\n"
      "software stack, not bandwidth. Faster interconnects alone do not\n"
      "rescue Hadoop's shuffle; restructuring the communication software\n"
      "(the paper's MPI-D) is the complementary half, and Sur et al.'s\n"
      "11-219%% HDFS-level gains likewise came with SSDs in the mix.\n");
  return 0;
}
