// Microbenchmarks of the real (thread-backed) minimpi transport: p2p
// latency/throughput and collective scaling. These measure this machine,
// not the paper's testbed; they exist to characterize the substrate the
// MPI-D library runs on and to feed the cost constants used by the
// cluster-scale models.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <thread>
#include <vector>

#include "mpid/minimpi/comm.hpp"
#include "mpid/minimpi/ops.hpp"
#include "mpid/minimpi/world.hpp"

namespace {

using namespace mpid;

constexpr std::uint64_t kEchoContext = 0x5eed0123456789abULL;
constexpr int kStopTag = 99;

/// Persistent two-rank world with an echo server on rank 1.
class PingPongFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    world_ = std::make_unique<minimpi::World>(2);
    echo_ = std::thread([this] {
      minimpi::Comm comm(*world_, 1, kEchoContext);
      std::vector<std::byte> buf;
      for (;;) {
        const auto st = comm.recv_bytes(0, minimpi::kAnyTag, buf);
        if (st.tag == kStopTag) return;
        comm.send_bytes(0, 0, buf);
      }
    });
  }

  void TearDown(const benchmark::State&) override {
    minimpi::Comm comm(*world_, 0, kEchoContext);
    comm.send_bytes(1, kStopTag, {});
    echo_.join();
    world_.reset();
  }

  std::unique_ptr<minimpi::World> world_;
  std::thread echo_;
};

BENCHMARK_DEFINE_F(PingPongFixture, RoundTrip)(benchmark::State& state) {
  minimpi::Comm comm(*world_, 0, kEchoContext);
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)),
                                 std::byte{0x42});
  std::vector<std::byte> buf;
  for (auto _ : state) {
    comm.send_bytes(1, 0, payload);
    comm.recv_bytes(1, 0, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK_REGISTER_F(PingPongFixture, RoundTrip)
    ->Arg(1)
    ->Arg(1024)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024);

BENCHMARK_DEFINE_F(PingPongFixture, OneWayStream)(benchmark::State& state) {
  minimpi::Comm comm(*world_, 0, kEchoContext);
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)),
                                 std::byte{0x42});
  std::vector<std::byte> buf;
  constexpr int kWindow = 32;
  for (auto _ : state) {
    for (int i = 0; i < kWindow; ++i) comm.send_bytes(1, 0, payload);
    for (int i = 0; i < kWindow; ++i) comm.recv_bytes(1, 0, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * kWindow * 2);
}
BENCHMARK_REGISTER_F(PingPongFixture, OneWayStream)
    ->Arg(1024)
    ->Arg(64 * 1024);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int rounds = 64;
  for (auto _ : state) {
    minimpi::run_world(ranks, [&](minimpi::Comm& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.counters["barriers"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * rounds,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int rounds = 64;
  for (auto _ : state) {
    minimpi::run_world(ranks, [&](minimpi::Comm& comm) {
      std::uint64_t acc = 0;
      for (int i = 0; i < rounds; ++i) {
        acc += comm.allreduce_value<std::uint64_t>(1, minimpi::Sum{});
      }
      benchmark::DoNotOptimize(acc);
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8);

void BM_AlltoallBytes(benchmark::State& state) {
  const int ranks = 4;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    minimpi::run_world(ranks, [&](minimpi::Comm& comm) {
      std::vector<std::vector<std::byte>> out(
          static_cast<std::size_t>(ranks),
          std::vector<std::byte>(bytes, std::byte{1}));
      auto in = comm.alltoall_bytes(std::move(out));
      benchmark::DoNotOptimize(in.size());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * ranks * ranks);
}
BENCHMARK(BM_AlltoallBytes)->Arg(1024)->Arg(256 * 1024);

}  // namespace

MPID_BENCHMARK_MAIN()
