// Iterative graph workloads for the job-chaining experiments.
//
// The paper's related work (Twister, MR-MPI) motivates MPI-backed
// MapReduce with exactly this workload class: label-propagation
// connected components, single-source shortest paths and triangle
// counting — jobs whose dataflow is a CHAIN of MapReduce rounds over a
// mostly-static graph. Each builder here returns the chain pieces in the
// shared mapred::ChainStage vocabulary, so one definition runs on the
// MPI-D JobChain (resident partitions) and on MiniHadoop's run_chain
// (resident splits or the HDFS round-trip ablation) byte-identically.
//
// Determinism conventions (what makes every executor agree):
//   * vertex names are fixed-width ("v000042"), so lexicographic order
//     IS numeric order and string min() is label/distance min();
//   * SSSP distances are 10-digit zero-padded decimals; the "INF"
//     sentinel compares greater than any padded number ('I' > '9');
//   * PageRank uses scaled integer arithmetic (kRankScale), never
//     floating point, so round-off is identical everywhere;
//   * every stage reduce is insensitive to value arrival order (min,
//     count, sum, or sorts first).
#pragma once

#include <cstdint>
#include <string>

#include "mpid/mapred/chain.hpp"

namespace mpid::workloads {

/// Deterministic synthetic graph: `vertices` vertices spread round-robin
/// over `components` groups, `edges` random intra-group edges (duplicates
/// and the occasional self-loop left in deliberately — the workloads must
/// cope), integer weights in [1, max_weight].
struct GraphSpec {
  int vertices = 60;
  int edges = 150;
  int components = 3;
  int max_weight = 9;
  std::uint64_t seed = 1;
};

/// Fixed-width vertex name ("v000042") for index `v`.
std::string vertex_name(int v);

/// Edge-list text, one "u v w" line per edge.
std::string generate_graph(const GraphSpec& spec);

/// The pinned static channel for label/distance propagation: each edge
/// contributes both directions. Unweighted entries are plain neighbor
/// names; weighted ones are "neighbor|ww" with the 2-digit weight.
mapred::KvVec adjacency_static(const std::string& edge_text, bool weighted);

/// Label-propagation connected components: every vertex starts as its
/// own label and adopts the minimum label it hears; the chain stops the
/// round nobody changes ("changed" counter). Output: (vertex, component
/// root name).
mapred::ChainJob cc_job(const std::string& edge_text, int max_rounds = 64);

/// Bellman-Ford style SSSP from `source` over the weighted graph.
/// Output: (vertex, zero-padded distance or "INF").
mapred::ChainJob sssp_job(const std::string& edge_text,
                          const std::string& source, int max_rounds = 64);

/// Triangle counting in three fixed stages: dedup the edge set, build
/// smaller-endpoint adjacency and emit one wedge per triangle apex, then
/// close wedges against edges. The total lands in the "triangles"
/// counter; outputs are (edge, wedges closed through it).
mapred::ChainJob triangle_job(const std::string& edge_text);

/// PageRank denominator scale: ranks are integers in units of
/// 1/kRankScale (probability x 1e6).
inline constexpr std::uint64_t kRankScale = 1000000;

/// `rounds` fixed PageRank iterations (damping 0.85, scaled integer
/// arithmetic) over the undirected graph. Output: (vertex, scaled rank).
mapred::ChainJob pagerank_job(const std::string& edge_text, int rounds,
                              int vertex_count);

// --- serial references (ground truth for the parity tests) -------------

/// Union-find connected components: (vertex, component root), sorted.
mapred::KvVec cc_reference(const std::string& edge_text);

/// Dijkstra SSSP: (vertex, padded distance or "INF"), sorted.
mapred::KvVec sssp_reference(const std::string& edge_text,
                             const std::string& source);

/// Exact triangle count by sorted-adjacency intersection.
std::uint64_t triangle_reference(const std::string& edge_text);

/// The same scaled-integer PageRank iterations run serially:
/// (vertex, scaled rank), sorted. Matches pagerank_job exactly.
mapred::KvVec pagerank_reference(const std::string& edge_text, int rounds,
                                 int vertex_count);

}  // namespace mpid::workloads
