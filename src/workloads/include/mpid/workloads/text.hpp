// Synthetic workload generators standing in for the paper's datasets.
//
// The paper processes up to 150 GB of GridMix JavaSort records and up to
// 100 GB of WordCount text but does not publish the corpora. These
// generators produce statistically equivalent data deterministically:
// Zipf-distributed words for WordCount (natural-language-like skew) and
// TeraSort-style fixed-layout records for JavaSort.
#pragma once

#include <cstdint>
#include <string>

#include "mpid/common/prng.hpp"
#include "mpid/common/zipf.hpp"
#include "mpid/mapred/input.hpp"

namespace mpid::workloads {

struct TextSpec {
  std::uint64_t vocabulary = 50000;  // distinct words
  double zipf_exponent = 1.0;
  int words_per_line_min = 5;
  int words_per_line_max = 12;
};

/// Deterministic word for a Zipf rank: short common words for low ranks,
/// longer rare ones for high ranks (like natural text).
std::string word_for_rank(std::uint64_t rank);

/// Generates approximately `target_bytes` of newline-separated text.
std::string generate_text(const TextSpec& spec, std::uint64_t target_bytes,
                          std::uint64_t seed);

/// A streaming line source producing approximately `target_bytes` of text
/// without materializing the corpus (for larger example runs).
mapred::RecordSource text_source(const TextSpec& spec,
                                 std::uint64_t target_bytes,
                                 std::uint64_t seed);

/// TeraSort/JavaSort-style record: 10-byte key, 2-byte tab/rowid filler,
/// 88-byte printable payload, newline (~100 bytes per record).
struct RecordSpec {
  std::size_t key_bytes = 10;
  std::size_t payload_bytes = 88;
};

/// One deterministic record (key is uniform-random printable bytes).
std::string generate_record(const RecordSpec& spec,
                            common::Xoshiro256StarStar& rng);

/// A streaming source of ~`target_bytes` of sort records.
mapred::RecordSource record_source(const RecordSpec& spec,
                                   std::uint64_t target_bytes,
                                   std::uint64_t seed);

/// Empirically measures WordCount's post-combiner intermediate ratio over
/// this generator's text: tokens are counted per combine buffer of
/// `combine_buffer_bytes` input, each distinct word contributing
/// word+count bytes to the output. This is the measurement behind the
/// map_output_ratio constants in presets.cpp, kept executable so the
/// calibration can be re-derived from the data (see
/// tests/workloads/test_text.cpp).
double measured_wordcount_combine_ratio(const TextSpec& spec,
                                        std::uint64_t sample_bytes,
                                        std::uint64_t combine_buffer_bytes,
                                        std::uint64_t seed);

}  // namespace mpid::workloads
