// Calibrated workload presets tying the cluster models to the paper's
// experiments. All constants live here (not scattered through the
// benches) so EXPERIMENTS.md can point at one calibration site.
//
// Calibration anchors (paper, 8-node GigE cluster, Hadoop 0.20.2):
//  * Figure 1 / Table I — GridMix JavaSort, 64 MB blocks, reduce tasks
//    scale ~1:1 with maps (Figure 1 shows 2345 reducers for 150 GB);
//    first-wave reducer copies reach ~4000 s, the body lies in 48-178 s
//    with mean ~128.5 s; sort ~0.01 s; reduce mean ~6.8 s.
//  * Figure 6 — WordCount, 49 mappers + 1 reducer; Hadoop 49 s -> 2001 s
//    and MPI-D 3.9 s -> 1129 s from 1 GB to 100 GB (ratios 8%/48%/56%).
#pragma once

#include <cstdint>

#include "mpid/hadoop/spec.hpp"
#include "mpid/mpidsim/system.hpp"

namespace mpid::workloads {

/// The paper's cluster: 8 nodes; Table I varies slots per tasktracker.
hadoop::ClusterSpec paper_cluster(int map_slots = 8, int reduce_slots = 8);

/// GridMix JavaSort job of `input_bytes` (Figures 1, Table I):
/// identity map + identity reduce in Java over ~100-byte records, full
/// intermediate volume (no combining), reduce tasks ~ map tasks.
hadoop::JobSpec javasort_job(const hadoop::ClusterSpec& cluster,
                             std::uint64_t input_bytes);

/// Hadoop WordCount (Figure 6 baseline): Java tokenizing map with a
/// combiner over Zipf text, a single reduce task.
hadoop::JobSpec hadoop_wordcount_job(std::uint64_t input_bytes);

/// Figure 6 Hadoop cluster configuration: 7/7 slots per node.
hadoop::ClusterSpec fig6_hadoop_cluster();

/// The MPI-D simulation system of Figure 6: 49 mappers, 1 reducer.
mpidsim::SystemSpec fig6_mpid_system();

/// WordCount on the MPI-D system (same data statistics as the Hadoop
/// job; C++ processing rates calibrated from the real library's
/// microbenchmarks).
mpidsim::MpidJobSpec mpid_wordcount_job(std::uint64_t input_bytes);

}  // namespace mpid::workloads
