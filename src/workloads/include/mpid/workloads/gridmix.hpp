// The rest of the GridMix suite (the paper uses its JavaSort; the suite's
// other members exercise different copy-stage regimes and complete the
// Table I picture).
//
// Classic GridMix1 workloads, as cluster-model job specs:
//   streamSort   — sort through Hadoop Streaming (slower per-byte map);
//   javaSort     — the paper's Table I / Figure 1 workload (presets.hpp);
//   combiner     — aggregation with a map-side combiner (small shuffle);
//   webdataScan  — filter: tiny intermediate output, few reducers;
//   webdataSort  — sort over large web records;
//   monsterQuery — a three-stage chained pipeline, each stage shrinking
//                  its input (returned as a job sequence).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpid/hadoop/spec.hpp"

namespace mpid::workloads {

struct GridmixEntry {
  std::string name;
  hadoop::JobSpec job;
};

hadoop::JobSpec stream_sort_job(const hadoop::ClusterSpec& cluster,
                                std::uint64_t input_bytes);
hadoop::JobSpec combiner_job(const hadoop::ClusterSpec& cluster,
                             std::uint64_t input_bytes);
hadoop::JobSpec webdata_scan_job(const hadoop::ClusterSpec& cluster,
                                 std::uint64_t input_bytes);
hadoop::JobSpec webdata_sort_job(const hadoop::ClusterSpec& cluster,
                                 std::uint64_t input_bytes);

/// The monsterQuery pipeline: each stage consumes the previous stage's
/// output (input shrinks by the stage's output ratios).
std::vector<hadoop::JobSpec> monster_query_pipeline(
    const hadoop::ClusterSpec& cluster, std::uint64_t input_bytes);

/// Every single-stage GridMix workload (including the paper's JavaSort),
/// for sweep benches.
std::vector<GridmixEntry> gridmix_suite(const hadoop::ClusterSpec& cluster,
                                        std::uint64_t input_bytes);

}  // namespace mpid::workloads
