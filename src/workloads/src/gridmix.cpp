#include "mpid/workloads/gridmix.hpp"

#include <algorithm>

#include "mpid/workloads/presets.hpp"

namespace mpid::workloads {

namespace {

int reduces_scaled(const hadoop::ClusterSpec& cluster,
                   std::uint64_t input_bytes, int divisor) {
  hadoop::JobSpec probe;
  probe.input_bytes = input_bytes;
  return std::max(1, probe.map_tasks_for(cluster) / divisor);
}

}  // namespace

hadoop::JobSpec stream_sort_job(const hadoop::ClusterSpec& cluster,
                                std::uint64_t input_bytes) {
  // Sort through Hadoop Streaming: every record crosses a pipe to an
  // external process and back, roughly halving the per-task map rate.
  hadoop::JobSpec job = javasort_job(cluster, input_bytes);
  job.map_cpu_bytes_per_second *= 0.55;
  job.reduce_cpu_bytes_per_second *= 0.7;
  return job;
}

hadoop::JobSpec combiner_job(const hadoop::ClusterSpec& cluster,
                             std::uint64_t input_bytes) {
  // Word-count-style aggregation with a map-side combiner: the shuffle
  // carries only the combined pairs.
  hadoop::JobSpec job;
  job.input_bytes = input_bytes;
  job.reduce_tasks = reduces_scaled(cluster, input_bytes, 5);
  job.map_cpu_bytes_per_second = 2.5e6;  // tokenize + combine
  job.map_output_ratio = 0.3;
  job.reduce_cpu_bytes_per_second = 20.0e6;
  job.reduce_output_ratio = 0.3;
  return job;
}

hadoop::JobSpec webdata_scan_job(const hadoop::ClusterSpec& cluster,
                                 std::uint64_t input_bytes) {
  // Selective filter over web records: the map discards ~98% of bytes.
  hadoop::JobSpec job;
  job.input_bytes = input_bytes;
  job.reduce_tasks = reduces_scaled(cluster, input_bytes, 10);
  job.map_cpu_bytes_per_second = 8.0e6;  // cheap predicate per record
  job.map_output_ratio = 0.02;
  job.reduce_cpu_bytes_per_second = 20.0e6;
  job.reduce_output_ratio = 1.0;
  return job;
}

hadoop::JobSpec webdata_sort_job(const hadoop::ClusterSpec& cluster,
                                 std::uint64_t input_bytes) {
  // Sort over large web records: full intermediate volume, slightly
  // cheaper per byte than JavaSort (bigger records, fewer of them).
  hadoop::JobSpec job = javasort_job(cluster, input_bytes);
  job.map_cpu_bytes_per_second = 1.4e6;
  job.reduce_cpu_bytes_per_second = 12.0e6;
  return job;
}

std::vector<hadoop::JobSpec> monster_query_pipeline(
    const hadoop::ClusterSpec& cluster, std::uint64_t input_bytes) {
  // Three chained stages, each keeping ~30% of its input (GridMix's
  // monsterQuery shape). Stage i+1's input is stage i's output volume.
  std::vector<hadoop::JobSpec> stages;
  std::uint64_t bytes = input_bytes;
  for (int stage = 0; stage < 3; ++stage) {
    hadoop::JobSpec job;
    job.input_bytes = bytes;
    job.reduce_tasks = reduces_scaled(cluster, bytes, 3);
    job.map_cpu_bytes_per_second = 2.0e6;
    job.map_output_ratio = 0.5;
    job.reduce_cpu_bytes_per_second = 12.0e6;
    job.reduce_output_ratio = 0.6;  // 0.5 * 0.6 = 30% kept per stage
    stages.push_back(job);
    bytes = static_cast<std::uint64_t>(
        static_cast<double>(bytes) * job.map_output_ratio *
        job.reduce_output_ratio);
    bytes = std::max<std::uint64_t>(bytes, 1);
  }
  return stages;
}

std::vector<GridmixEntry> gridmix_suite(const hadoop::ClusterSpec& cluster,
                                        std::uint64_t input_bytes) {
  return {
      {"javaSort", javasort_job(cluster, input_bytes)},
      {"streamSort", stream_sort_job(cluster, input_bytes)},
      {"combiner", combiner_job(cluster, input_bytes)},
      {"webdataScan", webdata_scan_job(cluster, input_bytes)},
      {"webdataSort", webdata_sort_job(cluster, input_bytes)},
  };
}

}  // namespace mpid::workloads
