#include "mpid/workloads/text.hpp"

#include <memory>
#include <unordered_map>

namespace mpid::workloads {

std::string word_for_rank(std::uint64_t rank) {
  // Base-26 encoding of the rank; low ranks yield short words, mirroring
  // the length/frequency correlation of natural language.
  std::string word;
  std::uint64_t v = rank;
  do {
    word.push_back(static_cast<char>('a' + v % 26));
    v /= 26;
  } while (v > 0);
  return word;
}

namespace {

class TextState {
 public:
  TextState(const TextSpec& spec, std::uint64_t target_bytes,
            std::uint64_t seed)
      : spec_(spec),
        zipf_(spec.vocabulary, spec.zipf_exponent),
        rng_(seed),
        remaining_(target_bytes) {}

  std::optional<std::string> next_line() {
    if (remaining_ == 0) return std::nullopt;
    const auto words = rng_.next_in(
        static_cast<std::uint64_t>(spec_.words_per_line_min),
        static_cast<std::uint64_t>(spec_.words_per_line_max));
    std::string line;
    for (std::uint64_t w = 0; w < words; ++w) {
      if (w > 0) line.push_back(' ');
      line.append(word_for_rank(zipf_(rng_)));
    }
    const std::uint64_t cost = line.size() + 1;  // + newline
    remaining_ = cost >= remaining_ ? 0 : remaining_ - cost;
    return line;
  }

 private:
  TextSpec spec_;
  common::ZipfSampler zipf_;
  common::Xoshiro256StarStar rng_;
  std::uint64_t remaining_;
};

}  // namespace

std::string generate_text(const TextSpec& spec, std::uint64_t target_bytes,
                          std::uint64_t seed) {
  TextState state(spec, target_bytes, seed);
  std::string text;
  text.reserve(target_bytes + 128);
  while (auto line = state.next_line()) {
    text.append(*line);
    text.push_back('\n');
  }
  return text;
}

mapred::RecordSource text_source(const TextSpec& spec,
                                 std::uint64_t target_bytes,
                                 std::uint64_t seed) {
  auto state = std::make_shared<TextState>(spec, target_bytes, seed);
  return [state]() { return state->next_line(); };
}

std::string generate_record(const RecordSpec& spec,
                            common::Xoshiro256StarStar& rng) {
  std::string record;
  record.reserve(spec.key_bytes + 2 + spec.payload_bytes);
  for (std::size_t i = 0; i < spec.key_bytes; ++i) {
    record.push_back(static_cast<char>('!' + rng.next_below(94)));
  }
  record.push_back('\t');
  record.push_back('0');
  for (std::size_t i = 0; i < spec.payload_bytes; ++i) {
    record.push_back(static_cast<char>('A' + rng.next_below(26)));
  }
  return record;
}

mapred::RecordSource record_source(const RecordSpec& spec,
                                   std::uint64_t target_bytes,
                                   std::uint64_t seed) {
  auto rng = std::make_shared<common::Xoshiro256StarStar>(seed);
  auto remaining = std::make_shared<std::uint64_t>(target_bytes);
  return [spec, rng, remaining]() -> std::optional<std::string> {
    if (*remaining == 0) return std::nullopt;
    auto record = generate_record(spec, *rng);
    const std::uint64_t cost = record.size() + 1;
    *remaining = cost >= *remaining ? 0 : *remaining - cost;
    return record;
  };
}

double measured_wordcount_combine_ratio(const TextSpec& spec,
                                        std::uint64_t sample_bytes,
                                        std::uint64_t combine_buffer_bytes,
                                        std::uint64_t seed) {
  if (sample_bytes == 0 || combine_buffer_bytes == 0) return 0.0;
  TextState state(spec, sample_bytes, seed);
  std::uint64_t input_total = 0, output_total = 0;
  std::uint64_t buffer_input = 0;
  std::unordered_map<std::string, std::uint64_t> counts;

  auto flush = [&] {
    for (const auto& [word, count] : counts) {
      // One combined pair: word bytes + a decimal count.
      output_total += word.size() + std::to_string(count).size();
    }
    counts.clear();
    buffer_input = 0;
  };

  while (auto line = state.next_line()) {
    input_total += line->size() + 1;
    buffer_input += line->size() + 1;
    std::size_t start = 0;
    while (start < line->size()) {
      auto end = line->find(' ', start);
      if (end == std::string::npos) end = line->size();
      if (end > start) ++counts[line->substr(start, end - start)];
      start = end + 1;
    }
    if (buffer_input >= combine_buffer_bytes) flush();
  }
  flush();
  return input_total > 0
             ? static_cast<double>(output_total) /
                   static_cast<double>(input_total)
             : 0.0;
}

}  // namespace mpid::workloads
