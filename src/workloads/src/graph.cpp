#include "mpid/workloads/graph.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mpid/common/prng.hpp"

namespace mpid::workloads {
namespace {

constexpr int kNameWidth = 6;
constexpr char kInf[] = "INF";
constexpr int kDistWidth = 10;
// Scaled-integer PageRank damping: new = (1-d)/N + d * sum, with d = 85/100.
constexpr std::uint64_t kDampNum = 85;
constexpr std::uint64_t kDampDen = 100;

std::string pad_number(std::uint64_t n, int width) {
  std::string s = std::to_string(n);
  if (static_cast<int>(s.size()) < width) {
    s.insert(0, static_cast<std::size_t>(width) - s.size(), '0');
  }
  return s;
}

std::string pad_dist(std::uint64_t d) { return pad_number(d, kDistWidth); }

struct Edge {
  std::string u;
  std::string v;
  std::uint64_t w;
};

std::vector<Edge> parse_edges(const std::string& text) {
  std::vector<Edge> edges;
  std::istringstream in(text);
  std::string u, v;
  std::uint64_t w;
  while (in >> u >> v >> w) edges.push_back({u, v, w});
  return edges;
}

/// "a|b" with a < b; empty for self-loops (callers skip those).
std::string edge_key(std::string_view a, std::string_view b) {
  if (a == b) return {};
  if (b < a) std::swap(a, b);
  std::string key(a);
  key += '|';
  key += b;
  return key;
}

void parse_line(std::string_view line, std::string& u, std::string& v,
                std::uint64_t& w) {
  const auto s1 = line.find(' ');
  const auto s2 = line.find(' ', s1 + 1);
  if (s1 == std::string_view::npos || s2 == std::string_view::npos) {
    throw std::invalid_argument("graph: malformed edge line");
  }
  u.assign(line.substr(0, s1));
  v.assign(line.substr(s1 + 1, s2 - s1 - 1));
  w = std::stoull(std::string(line.substr(s2 + 1)));
}

/// Shared min-propagation reduce for CC and SSSP: values are "=" + state
/// (the vertex's current label/distance, possibly duplicated) and ">" +
/// candidate (a propagated improvement). Order-insensitive by
/// construction — both folds are min().
void min_propagate_reduce(std::string_view key, std::vector<std::string>& values,
                          mapred::ChainReduceContext& ctx) {
  std::string_view old_state;
  std::string_view best;
  for (const auto& value : values) {
    const std::string_view payload(value.data() + 1, value.size() - 1);
    if (value[0] == '=') {
      if (old_state.empty() || payload < old_state) old_state = payload;
    }
    if (best.empty() || payload < best) best = payload;
  }
  if (old_state.empty()) {
    throw std::logic_error("graph: vertex lost its '=' state record");
  }
  ctx.emit(key, best);
  if (best < old_state) ctx.incr("changed");
}

}  // namespace

std::string vertex_name(int v) {
  return "v" + pad_number(static_cast<std::uint64_t>(v), kNameWidth);
}

std::string generate_graph(const GraphSpec& spec) {
  if (spec.vertices <= 1 || spec.components < 1 || spec.max_weight < 1) {
    throw std::invalid_argument("graph: degenerate GraphSpec");
  }
  const int components = std::min(spec.components, spec.vertices / 2);
  common::SplitMix64 rng(spec.seed);
  std::string text;
  // A spanning path per component first, so every vertex appears in at
  // least one edge and the "components" knob is a guarantee, not a hint
  // (vertex i lives in component i % components; the path links
  // consecutive members).
  for (int c = 0; c < components; ++c) {
    int prev = c;
    for (int v = c + components; v < spec.vertices; v += components) {
      text += vertex_name(prev) + " " + vertex_name(v) + " " +
              std::to_string(1 + rng() % spec.max_weight) + "\n";
      prev = v;
    }
  }
  for (int e = 0; e < spec.edges; ++e) {
    const int c = static_cast<int>(rng() % components);
    const int span = (spec.vertices - c + components - 1) / components;
    if (span < 2) continue;
    const int a = c + components * static_cast<int>(rng() % span);
    const int b = c + components * static_cast<int>(rng() % span);
    text += vertex_name(a) + " " + vertex_name(b) + " " +
            std::to_string(1 + rng() % spec.max_weight) + "\n";
  }
  return text;
}

mapred::KvVec adjacency_static(const std::string& edge_text, bool weighted) {
  mapred::KvVec statics;
  for (const auto& edge : parse_edges(edge_text)) {
    if (edge.u == edge.v) continue;
    if (weighted) {
      const std::string w = pad_number(edge.w, 2);
      statics.emplace_back(edge.u, edge.v + "|" + w);
      statics.emplace_back(edge.v, edge.u + "|" + w);
    } else {
      statics.emplace_back(edge.u, edge.v);
      statics.emplace_back(edge.v, edge.u);
    }
  }
  return statics;
}

mapred::ChainJob cc_job(const std::string& edge_text, int max_rounds) {
  mapred::ChainJob job;
  job.static_input = adjacency_static(edge_text, /*weighted=*/false);
  // Round 1 folds the first propagation hop into ingest (each endpoint
  // hears the other's label), so "changed" is live from the start.
  job.ingest = [](std::string_view line, mapred::MapContext& ctx) {
    std::string u, v;
    std::uint64_t w;
    parse_line(line, u, v, w);
    ctx.emit(u, "=" + u);
    ctx.emit(v, "=" + v);
    if (u != v) {
      ctx.emit(u, ">" + v);
      ctx.emit(v, ">" + u);
    }
  };
  mapred::ChainStage propagate;
  propagate.name = "cc-propagate";
  propagate.map = [](std::string_view key, std::string_view label,
                     mapred::ChainMapContext& ctx) {
    ctx.emit(key, std::string("=") += label);
    if (const auto* neighbors = ctx.statics(key)) {
      const std::string msg = std::string(">") += label;
      for (const auto& n : *neighbors) ctx.emit(n, msg);
    }
  };
  propagate.reduce = min_propagate_reduce;
  propagate.max_rounds = max_rounds;
  propagate.until = [](const mapred::RoundCounters& c) {
    return c.value("changed") == 0;
  };
  job.stages.push_back(std::move(propagate));
  return job;
}

mapred::ChainJob sssp_job(const std::string& edge_text,
                          const std::string& source, int max_rounds) {
  mapred::ChainJob job;
  job.static_input = adjacency_static(edge_text, /*weighted=*/true);
  job.ingest = [source](std::string_view line, mapred::MapContext& ctx) {
    std::string u, v;
    std::uint64_t w;
    parse_line(line, u, v, w);
    ctx.emit(u, u == source ? "=" + pad_dist(0) : std::string("=") + kInf);
    ctx.emit(v, v == source ? "=" + pad_dist(0) : std::string("=") + kInf);
    // First relaxation hop, so a no-op round 1 can't stop the chain
    // before anything left the source.
    if (u != v) {
      if (u == source) ctx.emit(v, ">" + pad_dist(w));
      if (v == source) ctx.emit(u, ">" + pad_dist(w));
    }
  };
  mapred::ChainStage relax;
  relax.name = "sssp-relax";
  relax.map = [](std::string_view key, std::string_view dist,
                 mapred::ChainMapContext& ctx) {
    ctx.emit(key, std::string("=") += dist);
    if (dist == kInf) return;
    const std::uint64_t d = std::stoull(std::string(dist));
    if (const auto* neighbors = ctx.statics(key)) {
      for (const auto& entry : *neighbors) {
        const auto bar = entry.rfind('|');
        const std::uint64_t w = std::stoull(entry.substr(bar + 1));
        ctx.emit(std::string_view(entry).substr(0, bar), ">" + pad_dist(d + w));
      }
    }
  };
  relax.reduce = min_propagate_reduce;
  relax.max_rounds = max_rounds;
  relax.until = [](const mapred::RoundCounters& c) {
    return c.value("changed") == 0;
  };
  job.stages.push_back(std::move(relax));
  return job;
}

mapred::ChainJob triangle_job(const std::string& edge_text) {
  (void)edge_text;  // the edge list arrives as run input; no static channel
  mapred::ChainJob job;
  job.ingest = [](std::string_view line, mapred::MapContext& ctx) {
    std::string u, v;
    std::uint64_t w;
    parse_line(line, u, v, w);
    const std::string key = edge_key(u, v);
    if (!key.empty()) ctx.emit(key, "E");
  };

  // Stage 1: collapse duplicate edges to one "E" record per "a|b".
  mapred::ChainStage dedup;
  dedup.name = "tri-dedup";
  dedup.reduce = [](std::string_view key, std::vector<std::string>&,
                    mapred::ChainReduceContext& ctx) { ctx.emit(key, "E"); };
  job.stages.push_back(std::move(dedup));

  // Stage 2: route each edge to its smaller endpoint (and keep the edge
  // record flowing); the endpoint emits one wedge "b|c" per sorted
  // neighbor pair — the two sides a triangle through apex a must close.
  mapred::ChainStage wedges;
  wedges.name = "tri-wedges";
  wedges.map = [](std::string_view key, std::string_view value,
                  mapred::ChainMapContext& ctx) {
    const auto bar = key.find('|');
    ctx.emit(key.substr(0, bar), key.substr(bar + 1));
    ctx.emit(key, value);
  };
  wedges.reduce = [](std::string_view key, std::vector<std::string>& values,
                     mapred::ChainReduceContext& ctx) {
    if (key.find('|') != std::string_view::npos) {
      ctx.emit(key, "E");
      return;
    }
    std::sort(values.begin(), values.end());
    for (std::size_t i = 0; i < values.size(); ++i) {
      for (std::size_t j = i + 1; j < values.size(); ++j) {
        ctx.emit(values[i] + "|" + values[j], "W");
      }
    }
  };
  job.stages.push_back(std::move(wedges));

  // Stage 3: a wedge whose far side is a real edge is a triangle.
  mapred::ChainStage close;
  close.name = "tri-close";
  close.map = [](std::string_view key, std::string_view value,
                 mapred::ChainMapContext& ctx) { ctx.emit(key, value); };
  close.reduce = [](std::string_view key, std::vector<std::string>& values,
                    mapred::ChainReduceContext& ctx) {
    bool is_edge = false;
    std::uint64_t wedge_count = 0;
    for (const auto& value : values) {
      if (value == "E") is_edge = true;
      if (value == "W") ++wedge_count;
    }
    if (is_edge && wedge_count > 0) {
      ctx.emit(key, std::to_string(wedge_count));
      ctx.incr("triangles", wedge_count);
    }
  };
  job.stages.push_back(std::move(close));
  return job;
}

mapred::ChainJob pagerank_job(const std::string& edge_text, int rounds,
                              int vertex_count) {
  if (rounds < 1 || vertex_count < 1) {
    throw std::invalid_argument("pagerank: rounds and vertex_count >= 1");
  }
  mapred::ChainJob job;
  job.static_input = adjacency_static(edge_text, /*weighted=*/false);
  const std::uint64_t n = static_cast<std::uint64_t>(vertex_count);
  const std::uint64_t base = (kRankScale - kDampNum * kRankScale / kDampDen) / n;
  job.ingest = [](std::string_view line, mapred::MapContext& ctx) {
    std::string u, v;
    std::uint64_t w;
    parse_line(line, u, v, w);
    ctx.emit(u, "R");
    ctx.emit(v, "R");
  };
  mapred::ChainStage iterate;
  iterate.name = "pagerank";
  iterate.map = [](std::string_view key, std::string_view rank,
                   mapred::ChainMapContext& ctx) {
    ctx.emit(key, "=");
    if (rank == "R") return;  // round 1: init markers carry no mass
    const auto* neighbors = ctx.statics(key);
    if (neighbors == nullptr || neighbors->empty()) return;
    const std::uint64_t share =
        std::stoull(std::string(rank)) / neighbors->size();
    const std::string msg = ">" + std::to_string(share);
    for (const auto& n : *neighbors) ctx.emit(n, msg);
  };
  iterate.reduce = [base, n](std::string_view key,
                             std::vector<std::string>& values,
                             mapred::ChainReduceContext& ctx) {
    bool init = false;
    std::uint64_t sum = 0;
    for (const auto& value : values) {
      if (value == "R") init = true;
      if (value[0] == '>') sum += std::stoull(value.substr(1));
    }
    if (init) {
      ctx.emit(key, std::to_string(kRankScale / n));
      return;
    }
    ctx.emit(key, std::to_string(base + kDampNum * sum / kDampDen));
  };
  // Round 1 only seeds uniform ranks, so `rounds` iterations need
  // rounds + 1 chain rounds.
  iterate.max_rounds = rounds + 1;
  job.stages.push_back(std::move(iterate));
  return job;
}

mapred::KvVec cc_reference(const std::string& edge_text) {
  const auto edges = parse_edges(edge_text);
  std::map<std::string, std::string> parent;
  for (const auto& e : edges) {
    parent.emplace(e.u, e.u);
    parent.emplace(e.v, e.v);
  }
  auto find = [&parent](std::string v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const auto& e : edges) {
    // Union by name: the lexicographically smaller root wins, matching
    // the chain's min-label fixpoint.
    std::string ru = find(e.u), rv = find(e.v);
    if (ru != rv) (rv < ru ? parent[ru] : parent[rv]) = std::min(ru, rv);
  }
  mapred::KvVec out;
  for (const auto& [v, _] : parent) out.emplace_back(v, find(v));
  std::sort(out.begin(), out.end());
  return out;
}

mapred::KvVec sssp_reference(const std::string& edge_text,
                             const std::string& source) {
  const auto edges = parse_edges(edge_text);
  std::map<std::string, std::vector<std::pair<std::string, std::uint64_t>>> adj;
  for (const auto& e : edges) {
    adj[e.u];
    adj[e.v];
    if (e.u == e.v) continue;
    adj[e.u].emplace_back(e.v, e.w);
    adj[e.v].emplace_back(e.u, e.w);
  }
  std::map<std::string, std::uint64_t> dist;
  using Item = std::pair<std::uint64_t, std::string>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  if (adj.count(source) != 0) {
    dist[source] = 0;
    heap.emplace(0, source);
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    for (const auto& [n, w] : adj[v]) {
      const std::uint64_t nd = d + w;
      auto it = dist.find(n);
      if (it == dist.end() || nd < it->second) {
        dist[n] = nd;
        heap.emplace(nd, n);
      }
    }
  }
  mapred::KvVec out;
  for (const auto& [v, _] : adj) {
    const auto it = dist.find(v);
    out.emplace_back(v, it == dist.end() ? kInf : pad_dist(it->second));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t triangle_reference(const std::string& edge_text) {
  std::set<std::string> edges;
  std::map<std::string, std::vector<std::string>> up;  // smaller -> larger
  for (const auto& e : parse_edges(edge_text)) {
    const std::string key = edge_key(e.u, e.v);
    if (key.empty() || !edges.insert(key).second) continue;
    const auto bar = key.find('|');
    up[key.substr(0, bar)].push_back(key.substr(bar + 1));
  }
  std::uint64_t triangles = 0;
  for (auto& [_, neighbors] : up) {
    std::sort(neighbors.begin(), neighbors.end());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        if (edges.count(neighbors[i] + "|" + neighbors[j]) != 0) ++triangles;
      }
    }
  }
  return triangles;
}

mapred::KvVec pagerank_reference(const std::string& edge_text, int rounds,
                                 int vertex_count) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& e : parse_edges(edge_text)) {
    adj[e.u];
    adj[e.v];
    if (e.u == e.v) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  const std::uint64_t n = static_cast<std::uint64_t>(vertex_count);
  const std::uint64_t base = (kRankScale - kDampNum * kRankScale / kDampDen) / n;
  std::map<std::string, std::uint64_t> rank;
  for (const auto& [v, _] : adj) rank[v] = kRankScale / n;
  for (int r = 0; r < rounds; ++r) {
    std::map<std::string, std::uint64_t> sums;
    for (const auto& [v, _] : adj) sums[v] = 0;
    for (const auto& [v, neighbors] : adj) {
      if (neighbors.empty()) continue;
      const std::uint64_t share = rank[v] / neighbors.size();
      for (const auto& nb : neighbors) sums[nb] += share;
    }
    for (auto& [v, value] : rank) value = base + kDampNum * sums[v] / kDampDen;
  }
  mapred::KvVec out;
  for (const auto& [v, value] : rank) {
    out.emplace_back(v, std::to_string(value));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mpid::workloads
