#include "mpid/workloads/presets.hpp"

namespace mpid::workloads {

hadoop::ClusterSpec paper_cluster(int map_slots, int reduce_slots) {
  hadoop::ClusterSpec cluster;  // 8 nodes, GigE, 64 MB blocks: the testbed
  cluster.map_slots = map_slots;
  cluster.reduce_slots = reduce_slots;
  return cluster;
}

hadoop::JobSpec javasort_job(const hadoop::ClusterSpec& cluster,
                             std::uint64_t input_bytes) {
  hadoop::JobSpec job;
  job.input_bytes = input_bytes;
  // GridMix JavaSort: one reduce task per map task (Figure 1 shows 2345
  // reducers for 150 GB / 64 MB blocks).
  job.reduce_tasks = std::max(1, job.map_tasks_for(cluster));
  // Identity map, but every record is deserialized, buffered, sorted and
  // spilled through the Java serialization stack; Figure 1's first reduce
  // wave (copy ~4000 s = the map phase) pins the effective rate near
  // 0.8 MB/s per task for the 150 GB run.
  job.map_cpu_bytes_per_second = 0.8e6;
  job.map_output_ratio = 1.0;  // sort moves every byte
  job.reduce_cpu_bytes_per_second = 10.0e6;
  job.reduce_output_ratio = 1.0;
  return job;
}

hadoop::ClusterSpec fig6_hadoop_cluster() {
  // "the maximum concurrent number of mappers and reducers are 7/7, and
  // left one slot to the OS".
  return paper_cluster(7, 7);
}

hadoop::JobSpec hadoop_wordcount_job(std::uint64_t input_bytes) {
  hadoop::JobSpec job;
  job.input_bytes = input_bytes;
  job.reduce_tasks = 1;  // Hadoop WordCount's default single reducer
  // Java tokenization + combiner hash-table churn per map task.
  job.map_cpu_bytes_per_second = 3.0e6;
  // Zipf text after a per-task combiner. The ratio depends strongly on
  // vocabulary size and combine-buffer size (see
  // workloads::measured_wordcount_combine_ratio): the small-vocabulary
  // demo generator combines down to ~0.05, while web-scale text with a
  // multi-million-word vocabulary stays near ~0.3. The paper's corpus is
  // unpublished; 0.3 is what its 100 GB Hadoop anchor (2001 s with one
  // reducer) implies.
  job.map_output_ratio = 0.30;
  // Single Java reducer: merge + sum + object overhead.
  job.reduce_cpu_bytes_per_second = 30.0e6;
  job.reduce_output_ratio = 0.3;
  return job;
}

mpidsim::SystemSpec fig6_mpid_system() {
  mpidsim::SystemSpec spec;  // 8 nodes, 49 mappers, 1 reducer: the paper's
  return spec;               // Figure 6 layout is the default
}

mpidsim::MpidJobSpec mpid_wordcount_job(std::uint64_t input_bytes) {
  mpidsim::MpidJobSpec job;
  job.input_bytes = input_bytes;
  job.map_output_ratio = 0.30;  // same data statistics as the Hadoop run
  job.reduce_output_ratio = 0.3;
  return job;
}

}  // namespace mpid::workloads
