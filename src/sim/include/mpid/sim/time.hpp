// Strongly typed virtual time for the discrete-event engine.
//
// All simulated clocks are 64-bit signed nanoseconds. A strong type (rather
// than a bare int64) keeps byte counts, rates and times from being mixed up
// in the network and protocol models.
#pragma once

#include <compare>
#include <cstdint>

namespace mpid::sim {

struct Time {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) noexcept {
    ns += rhs.ns;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) noexcept {
    ns -= rhs.ns;
    return *this;
  }

  constexpr friend Time operator+(Time a, Time b) noexcept {
    return {a.ns + b.ns};
  }
  constexpr friend Time operator-(Time a, Time b) noexcept {
    return {a.ns - b.ns};
  }
  constexpr friend Time operator*(Time a, std::int64_t k) noexcept {
    return {a.ns * k};
  }
  constexpr friend Time operator*(std::int64_t k, Time a) noexcept {
    return {a.ns * k};
  }

  constexpr double to_seconds() const noexcept {
    return static_cast<double>(ns) / 1e9;
  }
  constexpr double to_millis() const noexcept {
    return static_cast<double>(ns) / 1e6;
  }
  constexpr double to_micros() const noexcept {
    return static_cast<double>(ns) / 1e3;
  }
};

constexpr Time nanoseconds(std::int64_t n) noexcept { return {n}; }
constexpr Time microseconds(std::int64_t n) noexcept { return {n * 1000}; }
constexpr Time milliseconds(std::int64_t n) noexcept { return {n * 1000000}; }
constexpr Time seconds(std::int64_t n) noexcept { return {n * 1000000000}; }

/// Fractional seconds (model parameters are often doubles). Rounds to the
/// nearest nanosecond.
constexpr Time from_seconds(double s) noexcept {
  return {static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

inline constexpr Time kTimeZero{0};
inline constexpr Time kTimeMax{INT64_MAX};

}  // namespace mpid::sim
