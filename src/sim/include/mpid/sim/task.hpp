// Coroutine process type for the discrete-event engine.
//
// A simulation process is written as a C++20 coroutine returning Task<> (or
// Task<T> when it produces a value for its awaiter):
//
//   sim::Task<> copier(sim::Engine& eng, net::Link& link) {
//     co_await eng.delay(sim::milliseconds(3));
//     co_await link.transfer(bytes);
//   }
//
// Root processes are handed to Engine::spawn, which owns their frames and
// destroys them after completion. Child tasks are awaited with co_await and
// owned by the awaiting frame (structured concurrency: a parent cannot
// complete before its awaited child).
//
// Tasks are lazy: nothing runs until the engine resumes a spawned root or a
// parent co_awaits a child (symmetric transfer starts the child
// immediately).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace mpid::sim {

class Engine;

namespace detail {

/// Shared, type-erased part of every Task promise. The engine interacts
/// with coroutines only through this base, so Engine::retire does not need
/// to know the Task's value type.
struct PromiseBase {
  std::coroutine_handle<> continuation{};
  Engine* owning_engine = nullptr;  // non-null only for spawned roots
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

/// Called by Engine::spawn / FinalAwaiter; defined in engine.cpp to avoid a
/// circular include.
void retire_root(Engine& engine, std::coroutine_handle<> handle,
                 std::exception_ptr exception);

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& promise = static_cast<PromiseBase&>(h.promise());
    if (promise.continuation) return promise.continuation;
    if (promise.owning_engine != nullptr) {
      retire_root(*promise.owning_engine, h, promise.exception);
    }
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
struct TaskPromise : detail::PromiseBase {
  T value{};

  Task<T> get_return_object() noexcept;
  detail::FinalAwaiter final_suspend() noexcept { return {}; }
  void return_value(T v) noexcept(noexcept(T(std::move(v)))) {
    value = std::move(v);
  }
};

template <>
struct TaskPromise<void> : detail::PromiseBase {
  Task<void> get_return_object() noexcept;
  detail::FinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() const noexcept {}
};

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  /// Transfers frame ownership to the caller (used by Engine::spawn).
  handle_type release() noexcept { return std::exchange(handle_, {}); }

  /// Awaiting a task starts it (symmetric transfer) and resumes the parent
  /// when it completes, returning its value / rethrowing its exception.
  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type handle;

      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) std::rethrow_exception(promise.exception);
        if constexpr (!std::is_void_v<T>) return std::move(promise.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  handle_type handle_{};
};

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace mpid::sim
