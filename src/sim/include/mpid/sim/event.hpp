// One-shot broadcast event for simulation processes.
//
// Processes co_await ev.wait(); ev.set() resumes every waiter (scheduled at
// the current virtual time, preserving deterministic FIFO order). Waiting
// on an already-set event completes immediately without suspension.
#pragma once

#include <coroutine>
#include <vector>

#include "mpid/sim/engine.hpp"

namespace mpid::sim {

class Event {
 public:
  explicit Event(Engine& engine) noexcept : engine_(engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const noexcept { return set_; }

  /// Sets the event and schedules all current waiters. Idempotent.
  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_.schedule_at(engine_.now(), h);
    waiters_.clear();
  }

  /// Clears the set flag so the event can be waited on again. Does not
  /// affect waiters already scheduled by a previous set().
  void reset() noexcept { set_ = false; }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event& event;
      bool await_ready() const noexcept { return event.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiter_count() const noexcept { return waiters_.size(); }

 private:
  Engine& engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace mpid::sim
