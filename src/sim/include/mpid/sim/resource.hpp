// Counted resource with FIFO acquisition, in the style of SimPy's Resource.
//
// Models contended capacities in the cluster simulators: map/reduce task
// slots on a TaskTracker, disk bandwidth tokens, RPC handler threads.
//
// Acquisition is strictly FIFO: a large request at the head of the queue
// blocks later small requests even if they would fit (no starvation).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <stdexcept>

#include "mpid/sim/engine.hpp"

namespace mpid::sim {

class Resource {
 public:
  Resource(Engine& engine, std::uint64_t capacity)
      : engine_(engine), capacity_(capacity), available_(capacity) {
    if (capacity == 0) throw std::invalid_argument("Resource: zero capacity");
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t available() const noexcept { return available_; }
  std::size_t waiter_count() const noexcept { return waiters_.size(); }

  class [[nodiscard]] AcquireAwaiter {
   public:
    AcquireAwaiter(Resource& resource, std::uint64_t amount)
        : resource_(resource), amount_(amount) {}
    bool await_ready() {
      if (resource_.waiters_.empty() && resource_.available_ >= amount_) {
        resource_.available_ -= amount_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      resource_.waiters_.push_back(this);
    }
    void await_resume() const noexcept {}

   private:
    friend class Resource;
    Resource& resource_;
    std::uint64_t amount_;
    std::coroutine_handle<> handle_{};
  };

  /// Awaitable that completes once `amount` units have been granted.
  /// `amount` must be <= capacity (otherwise it could never be granted).
  AcquireAwaiter acquire(std::uint64_t amount = 1) {
    if (amount == 0 || amount > capacity_) {
      throw std::invalid_argument("Resource::acquire: bad amount");
    }
    return AcquireAwaiter(*this, amount);
  }

  /// Returns `amount` units and grants as many queued waiters as now fit
  /// (in FIFO order).
  void release(std::uint64_t amount = 1) {
    if (available_ + amount > capacity_) {
      throw std::logic_error("Resource::release: over-release");
    }
    available_ += amount;
    while (!waiters_.empty() && waiters_.front()->amount_ <= available_) {
      AcquireAwaiter* waiter = waiters_.front();
      waiters_.pop_front();
      available_ -= waiter->amount_;
      engine_.schedule_at(engine_.now(), waiter->handle_);
    }
  }

 private:
  Engine& engine_;
  std::uint64_t capacity_;
  std::uint64_t available_;
  std::deque<AcquireAwaiter*> waiters_;
};

/// RAII helper: releases on scope exit. Acquire explicitly, then adopt:
///
///   co_await slots.acquire(2);
///   sim::Lease lease(slots, 2);
///   ... // released when lease leaves scope
class Lease {
 public:
  Lease(Resource& resource, std::uint64_t amount) noexcept
      : resource_(&resource), amount_(amount) {}
  Lease(Lease&& other) noexcept
      : resource_(std::exchange(other.resource_, nullptr)),
        amount_(other.amount_) {}
  Lease& operator=(Lease&& other) noexcept {
    if (this != &other) {
      reset();
      resource_ = std::exchange(other.resource_, nullptr);
      amount_ = other.amount_;
    }
    return *this;
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease() { reset(); }

  void reset() {
    if (resource_ != nullptr) {
      resource_->release(amount_);
      resource_ = nullptr;
    }
  }

 private:
  Resource* resource_;
  std::uint64_t amount_;
};

}  // namespace mpid::sim
