// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a priority queue of scheduled
// coroutine resumptions. Two events at the same timestamp are processed in
// schedule order (a monotonically increasing sequence number breaks ties),
// which makes every simulation in this repository fully deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <vector>

#include "mpid/sim/task.hpp"
#include "mpid/sim/time.hpp"

namespace mpid::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  /// Registers a root process. The engine owns its frame and will start it
  /// at the current virtual time (through the event queue, so spawning is
  /// never reentrant).
  void spawn(Task<void> task);

  /// Awaitable: resumes the awaiting coroutine `d` later. d must be >= 0.
  /// A zero delay still goes through the event queue (yield semantics).
  [[nodiscard]] auto delay(Time d) {
    struct Awaiter {
      Engine& engine;
      Time duration;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_after(duration, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Schedules a raw coroutine resumption (used by Event/Channel/Resource).
  void schedule_at(Time at, std::coroutine_handle<> h);
  void schedule_after(Time d, std::coroutine_handle<> h);

  /// Runs until the event queue is empty. Rethrows the first exception that
  /// escaped any root process.
  void run();

  /// Runs events with timestamp <= deadline, then sets now() = deadline.
  void run_until(Time deadline);

  /// Processes a single event; returns false when the queue is empty.
  bool step();

  /// Number of spawned root processes that have not yet completed. After
  /// run() returns this is nonzero only if processes are deadlocked
  /// (waiting on an Event/Channel/Resource that nothing will trigger).
  std::size_t live_process_count() const noexcept {
    return spawned_ - retired_;
  }

  /// Total events processed so far (monotonic; useful for zeno guards).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

 private:
  friend void detail::retire_root(Engine&, std::coroutine_handle<>,
                                  std::exception_ptr);

  struct Scheduled {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Scheduled& rhs) const noexcept {
      if (at != rhs.at) return at > rhs.at;
      return seq > rhs.seq;
    }
  };

  void retire(std::coroutine_handle<> handle, std::exception_ptr exception);
  void drain_retired();

  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      queue_;
  std::vector<std::coroutine_handle<>> retired_handles_;
  std::vector<std::coroutine_handle<>> roots_;
  std::exception_ptr pending_exception_{};
  Time now_ = kTimeZero;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t spawned_ = 0;
  std::size_t retired_ = 0;
};

}  // namespace mpid::sim
