// FIFO message channel between simulation processes.
//
// Unbounded by default; an optional capacity turns send() into a blocking
// (suspending) operation when full, giving back-pressure. Capacity 0 gives
// rendezvous semantics: a send completes only when a receiver is waiting.
//
// Delivery is strictly FIFO and deterministic: values are handed to
// receivers in arrival order; blocked senders are released in arrival
// order. There is no cancellation — a process suspended on a channel stays
// suspended until a matching operation occurs or the engine is destroyed.
#pragma once

#include <coroutine>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "mpid/sim/engine.hpp"

namespace mpid::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(
      Engine& engine,
      std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : engine_(engine), capacity_(capacity) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Number of buffered values.
  std::size_t size() const noexcept { return queue_.size(); }
  bool empty() const noexcept { return queue_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Non-suspending send. Returns false (leaving `value` untouched) when
  /// the channel is full and no receiver is waiting.
  bool try_send(T& value) {
    if (!recv_waiters_.empty()) {
      deliver_to_waiter(std::move(value));
      return true;
    }
    if (queue_.size() < capacity_) {
      queue_.push_back(std::move(value));
      return true;
    }
    return false;
  }
  bool try_send(T&& value) { return try_send(value); }

  /// Non-suspending receive.
  std::optional<T> try_recv() {
    if (queue_.empty()) {
      if (send_waiters_.empty()) return std::nullopt;
      // Rendezvous: take directly from the oldest blocked sender.
      SendAwaiter* sender = send_waiters_.front();
      send_waiters_.pop_front();
      T value = std::move(sender->value);
      engine_.schedule_at(engine_.now(), sender->handle);
      return value;
    }
    T value = std::move(queue_.front());
    queue_.pop_front();
    release_one_sender();
    return value;
  }

  class [[nodiscard]] SendAwaiter {
   public:
    SendAwaiter(Channel& channel, T value)
        : channel_(channel), value(std::move(value)) {}
    bool await_ready() { return channel_.try_send(value); }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      channel_.send_waiters_.push_back(this);
    }
    void await_resume() const noexcept {}

   private:
    friend class Channel;
    Channel& channel_;
    T value;
    std::coroutine_handle<> handle{};
  };

  class [[nodiscard]] RecvAwaiter {
   public:
    explicit RecvAwaiter(Channel& channel) : channel_(channel) {}
    bool await_ready() {
      value = channel_.try_recv();
      return value.has_value();
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      channel_.recv_waiters_.push_back(this);
    }
    T await_resume() { return std::move(*value); }

   private:
    friend class Channel;
    Channel& channel_;
    std::optional<T> value{};
    std::coroutine_handle<> handle{};
  };

  /// Suspending send; completes when the value is buffered or handed to a
  /// receiver.
  SendAwaiter send(T value) { return SendAwaiter(*this, std::move(value)); }

  /// Suspending receive; completes with the next value in FIFO order.
  RecvAwaiter recv() { return RecvAwaiter(*this); }

  std::size_t recv_waiter_count() const noexcept {
    return recv_waiters_.size();
  }
  std::size_t send_waiter_count() const noexcept {
    return send_waiters_.size();
  }

 private:
  void deliver_to_waiter(T value) {
    RecvAwaiter* waiter = recv_waiters_.front();
    recv_waiters_.pop_front();
    waiter->value = std::move(value);
    engine_.schedule_at(engine_.now(), waiter->handle);
  }

  /// After a buffered value is consumed, move the oldest blocked sender's
  /// value into the freed slot.
  void release_one_sender() {
    if (send_waiters_.empty() || queue_.size() >= capacity_) return;
    SendAwaiter* sender = send_waiters_.front();
    send_waiters_.pop_front();
    queue_.push_back(std::move(sender->value));
    engine_.schedule_at(engine_.now(), sender->handle);
  }

  Engine& engine_;
  std::size_t capacity_;
  std::deque<T> queue_;
  // The awaiter objects themselves are the waiter nodes; they live in the
  // suspended coroutines' frames, so their addresses are stable.
  std::deque<SendAwaiter*> send_waiters_;
  std::deque<RecvAwaiter*> recv_waiters_;
};

}  // namespace mpid::sim
