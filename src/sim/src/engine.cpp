#include "mpid/sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mpid::sim {

namespace detail {

void retire_root(Engine& engine, std::coroutine_handle<> handle,
                 std::exception_ptr exception) {
  engine.retire(handle, exception);
}

}  // namespace detail

Engine::~Engine() {
  // Destroy any root frames that never completed (deadlocked processes or
  // an aborted run). Child frames are destroyed recursively because they
  // live as Task locals inside their parents' frames.
  for (auto handle : roots_) handle.destroy();
}

void Engine::spawn(Task<void> task) {
  auto handle = task.release();
  if (!handle) throw std::invalid_argument("Engine::spawn: empty task");
  handle.promise().owning_engine = this;
  roots_.push_back(handle);
  ++spawned_;
  schedule_at(now_, handle);
}

void Engine::schedule_at(Time at, std::coroutine_handle<> h) {
  assert(h);
  assert(at >= now_);
  queue_.push(Scheduled{at, seq_++, h});
}

void Engine::schedule_after(Time d, std::coroutine_handle<> h) {
  if (d.ns < 0) throw std::invalid_argument("negative delay");
  schedule_at(now_ + d, h);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  const Scheduled next = queue_.top();
  queue_.pop();
  assert(next.at >= now_);
  now_ = next.at;
  ++events_processed_;
  next.handle.resume();
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time deadline) {
  if (deadline < now_) throw std::invalid_argument("deadline in the past");
  while (!queue_.empty() && queue_.top().at <= deadline) step();
  now_ = deadline;
}

void Engine::retire(std::coroutine_handle<> handle,
                    std::exception_ptr exception) {
  ++retired_;
  const auto it = std::find(roots_.begin(), roots_.end(), handle);
  assert(it != roots_.end());
  if (it != roots_.end()) {
    *it = roots_.back();
    roots_.pop_back();
  }
  handle.destroy();
  if (exception && !pending_exception_) pending_exception_ = exception;
}

}  // namespace mpid::sim
