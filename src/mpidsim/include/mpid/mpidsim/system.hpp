// Cluster-scale model of the paper's "simulation system with the MPI-D
// prototype" (Section IV.C) for the Figure 6 experiment.
//
// Layout mirrors the paper exactly: 8 nodes; rank 0 on the master node
// simulates the jobtracker; 49 mapper processes (7 per worker node) scan
// locally distributed input; 1 reducer process receives every partition
// with wildcard MPI receives.
//
// Why a model and not the real library: the functional MPI-D library in
// src/core runs for real (tests, examples, microbenches), but pushing
// 100 GB through it on one machine is not feasible; this module replays
// its execution structure on the discrete-event engine with per-byte cost
// constants calibrated from microbenchmarks of the real implementation
// (see bench/micro_mpid.cpp). Map compute, combine/realign CPU, spill
// chunking, pipelined MPI sends over the shared fabric, streaming reduce
// and output writes are all represented.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mpid/net/fabric.hpp"
#include "mpid/proto/models.hpp"
#include "mpid/sim/channel.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/sim/task.hpp"

namespace mpid::mpidsim {

struct SystemSpec {
  int nodes = 8;             // node 0 = master
  int mappers_per_node = 7;  // 49 mapper processes on 7 workers
  int reducers = 1;          // the paper's Figure 6 configuration

  /// Interconnect of the modeled cluster (default: the paper's GigE
  /// testbed). Swap in a proto::all_interconnects() profile fabric for
  /// wire-upgrade ablations.
  net::FabricSpec fabric;

  /// mpiexec launch + MPI_D_Init (no JVM, no heartbeat scheduling).
  sim::Time job_startup = sim::milliseconds(900);

  /// Per-mapper launch skew (deterministic, seeded by mapper id). Without
  /// it, identical mappers run in lockstep and alternate disk/CPU phases
  /// in unison, idling the disk — an artifact no real cluster shows.
  sim::Time startup_jitter_max = sim::milliseconds(1500);

  /// Per-chunk compute-time variance (deterministic, seeded by mapper and
  /// chunk): real map tasks never process byte-for-byte uniformly, and
  /// without this the shared disk phase-locks the mappers ("herding").
  double chunk_jitter_frac = 0.10;

  /// Per-node disk rate, shared by that node's mapper processes.
  double disk_bytes_per_second = 90.0e6;

  /// C++ map function rate (tokenize + hash-table combine), calibrated
  /// from the real MPI-D WordCount microbenchmark.
  double map_cpu_bytes_per_second = 25.0e6;
  /// Data-realignment rate over *intermediate* bytes (serializing the
  /// hash table into contiguous partition frames).
  double realign_bytes_per_second = 400.0e6;
  /// Reducer-side processing is two-regime: reverse realignment + reduce
  /// over in-memory partitions is fast, but once the received volume
  /// exceeds the memory budget the prototype reducer spills and merges
  /// through its disk (the scalability limit the paper lists as future
  /// work — "optimize the MPI-D library ... especially improving
  /// scalability").
  double reduce_memory_budget_bytes = 1.5e9;
  double reduce_in_memory_bytes_per_second = 60.0e6;
  double reduce_spill_bytes_per_second = 27.0e6;

  /// Model the two-tier spill store (mpid::store, DESIGN.md §13) instead
  /// of the folded reduce_spill_bytes_per_second constant: over-budget
  /// bytes are written as budget-sized sorted runs through the reducer
  /// node's *disk* (sharing it with that node's mappers and the output
  /// write), runs beyond spill_merge_fanin cost explicit read+rewrite
  /// compaction passes, and the final stream re-reads every surviving run
  /// — so spill cost scales with the disk rate and the merge cascade
  /// depth, not a single calibrated rate.
  bool model_spill_store = false;
  /// Fan-in of the external merge (ShuffleOptions::spill_merge_fanin).
  int spill_merge_fanin = 16;
  /// CPU rate of the external merge itself (loser tree + group copies),
  /// calibrated from bench/micro_spill; disk time is charged separately.
  double spill_merge_bytes_per_second = 300.0e6;

  /// Mapper spill granularity: input consumed between spills; each spill's
  /// combined output is sent as pipelined MPI messages.
  std::uint64_t spill_input_bytes = 16 * 1024 * 1024;

  /// Worker threads per mapper process — the hybrid process+threads model
  /// (core::Config::map_threads). The map function and the realignment
  /// are the parallelized stages, so their CPU time divides by
  /// map_thread_speedup(); the codec stage stays serial (the real
  /// library compresses at the serialized sequencer drain), and disk and
  /// fabric are unaffected.
  int map_threads = 1;
  /// Marginal efficiency of each extra worker thread (work-stealing
  /// imbalance, shared-cache pressure, the serialized frame hand-off).
  /// Calibrate against bench/micro_threads on a multi-core host.
  double thread_efficiency = 0.85;

  double map_thread_speedup() const noexcept {
    return 1.0 + (map_threads - 1) * thread_efficiency;
  }

  /// Hierarchical node-local aggregation (DESIGN.md §14, the
  /// core::Config::node_aggregation knob): each worker node's co-located
  /// mappers route their spills through an in-node combine tree before
  /// anything touches the fabric, so the wire carries the merged stream
  /// (pre-aggregation bytes / MpidJobSpec::node_agg_ratio) at the cost
  /// of intra-node merge CPU over the full pre-aggregation volume.
  bool node_aggregation = false;
  /// CPU rate of the in-node merge (frame decode + combine table +
  /// re-encode), calibrated from ShuffleCounters::node_agg_merge_ns in
  /// bench/micro_mpid.
  double node_agg_merge_bytes_per_second = 250.0e6;

  /// Coded shuffle (DESIGN.md §15, core::Config::coded_replication): the
  /// compute-for-communication trade of Coded MapReduce. Every map task
  /// runs r times on r distinct ranks, and one XOR-coded multicast round
  /// then serves a whole group of r reducers where the uncoded shuffle
  /// sent r unicasts — so the map side pays r× scan + map CPU + realign
  /// while the fabric carries wire / r, and each reducer pays an XOR
  /// decode pass over its received bytes. 1 = off; must divide reducers
  /// (the placement needs whole groups of r).
  int coded_replication = 1;
  /// XOR fold/decode rate (memory-bandwidth bound), calibrated from
  /// coded_encode_ns / coded_decode_ns in bench/micro_mpid.
  double coded_decode_bytes_per_second = 2.0e9;

  /// Codec throughput of the real library's shuffle compression
  /// (core::Config::shuffle_compression), calibrated from
  /// bench/micro_codec: mappers encode each spill before MPI_D_Send,
  /// the reducer decodes before the reverse realignment. Only charged
  /// when the job sets compress_shuffle.
  double compress_bytes_per_second = 400.0e6;
  double decompress_bytes_per_second = 900.0e6;

  /// MPI_D_Send returns immediately and the transfer overlaps the next
  /// chunk's scan (the library's buffered-send design). Setting this to
  /// false makes every send synchronous — the ablation for the paper's
  /// "MPI_Isend and MPI_Irecv adoption to achieve much more overlapping"
  /// future-work point.
  bool overlap_sends = true;

  /// Maximum in-flight spill transfers per mapper when overlapping
  /// (bounded by the library's finite send buffers; unbounded overlap
  /// would just queue everything on the fabric).
  int send_window = 4;

  int total_mappers() const noexcept {
    return (nodes - 1) * mappers_per_node;
  }
};

struct MpidJobSpec {
  std::uint64_t input_bytes = 0;
  /// Intermediate bytes per input byte after the map-side combiner.
  double map_output_ratio = 0.30;
  /// Reducer output bytes per reduce-input byte.
  double reduce_output_ratio = 0.3;

  /// Model of core::Config::shuffle_compression: spills are codec-framed
  /// before the send, so the fabric carries raw / shuffle_compression_ratio
  /// bytes per spill while combine/realign/reduce still process raw bytes.
  /// The ratio is a data property — measure it with the real codec on
  /// representative frames (bench/codec_sample.hpp). Default off.
  bool compress_shuffle = false;
  double shuffle_compression_ratio = 3.0;

  /// Cross-mapper duplicate-key factor the node combine tree removes
  /// (only read when SystemSpec::node_aggregation is set):
  /// post-aggregation bytes = pre-aggregation bytes / node_agg_ratio.
  /// 0 (the default) means "perfectly combinable keys" — the ratio is
  /// the node's mapper count, the WordCount-style upper bound; measure
  /// real jobs with bytes_pre/post_node_agg and set the quotient here.
  double node_agg_ratio = 0.0;

  // --- chain-round knobs (set by MpidSystem::run_chain) ---

  /// Resident round of a chain (mapred::JobChain): the map input is the
  /// previous round's reducer partitions, already aligned in this
  /// process's memory — mappers skip the local-disk input scan.
  bool map_input_resident = false;
  /// Resident world: MPI_D processes stay up between rounds
  /// (Config::resident_rounds), so the round pays no mpiexec/MPI_D_Init
  /// startup.
  bool world_resident = false;
  /// > 1 models the iterative-Hadoop ablation's inter-round HDFS
  /// writeback: each reducer's output is pushed through a replication
  /// pipeline — (replicas - 1) fabric hops, a disk write per replica —
  /// before the next round may start. 0/1 writes only the local copy.
  int hdfs_writeback_replicas = 0;
};

/// Iterative (chained) job for the Figure-6-style graph experiments:
/// `rounds` MapReduce rounds over a conserved state volume. Round 1
/// ingests `round.input_bytes` from the distributed input; rounds >= 2
/// map over the previous round's reducer output. With `resident` set the
/// chain models mapred::JobChain — the world stays up and the state stays
/// in the reducer partitions (no disk scan, no writeback); without it,
/// the chain models what iterative Hadoop jobs actually do between
/// rounds: replicate every part file through HDFS, tear the job down,
/// pay startup again and re-ingest the state from disk.
struct MpidChainSpec {
  MpidJobSpec round;  // round-1 shape; input_bytes = the external input
  int rounds = 5;
  /// Rounds >= 2 dataflow shape: state -> intermediate -> state. The
  /// defaults conserve the state volume (label-propagation-like
  /// workloads); round 1's output is round.input_bytes *
  /// round.map_output_ratio * round.reduce_output_ratio.
  double state_map_output_ratio = 1.0;
  double state_reduce_output_ratio = 1.0;
  bool resident = true;
  /// dfs.replication of the ablation's inter-round writeback.
  int hdfs_replicas = 3;
};

struct MpidJobResult {
  sim::Time makespan;
  sim::Time map_phase_end;      // last mapper finished scanning + sending
  sim::Time reduce_end;         // reducer drained and wrote output
  double intermediate_bytes = 0;
  /// Two-tier store accounting (zero unless model_spill_store and the
  /// reduce volume exceeded the budget): total disk-write volume including
  /// compaction rewrites, and how many fan-in passes ran — the model's
  /// bytes_spilled_disk / external_merge_passes.
  double spilled_bytes = 0;
  int external_merge_passes = 0;
};

struct MpidChainResult {
  sim::Time makespan;  // first round's spawn to last round's drain
  std::vector<MpidJobResult> rounds;
  /// Ablation accounting (zero on a resident chain): state bytes
  /// re-scanned from disk in rounds >= 2, and part-file bytes pushed
  /// through the inter-round replication pipeline (all copies).
  double reingest_bytes = 0;
  double writeback_bytes = 0;
};

class MpidSystem {
 public:
  MpidSystem(sim::Engine& engine, SystemSpec spec);
  MpidSystem(const MpidSystem&) = delete;
  MpidSystem& operator=(const MpidSystem&) = delete;

  MpidJobResult run(const MpidJobSpec& job);

  /// Runs `chain.rounds` rounds back-to-back on this system (see
  /// MpidChainSpec for the resident / ablation semantics).
  MpidChainResult run_chain(const MpidChainSpec& chain);

  const SystemSpec& spec() const noexcept { return spec_; }

 private:
  struct Run;

  sim::Task<> mapper(Run& run, int node, int index_on_node);
  sim::Task<> reducer(Run& run, int reducer_index);

  sim::Engine& engine_;
  SystemSpec spec_;
  net::Fabric fabric_;
  proto::MpiModel mpi_;
  std::vector<std::unique_ptr<net::Fabric>> disks_;
};

}  // namespace mpid::mpidsim
