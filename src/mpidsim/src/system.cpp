#include "mpid/mpidsim/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "mpid/common/hash.hpp"
#include "mpid/common/prng.hpp"
#include "mpid/sim/event.hpp"
#include "mpid/sim/resource.hpp"

namespace mpid::mpidsim {

struct MpidSystem::Run {
  MpidJobSpec job;
  std::uint64_t share_bytes = 0;       // input per mapper (last takes tail)
  std::uint64_t total_chunks = 0;      // spill rounds across all mappers
  double total_intermediate = 0;
  int mappers_done = 0;
  std::vector<std::unique_ptr<sim::Channel<double>>> to_reducer;
  std::vector<std::uint64_t> chunks_for_reducer;
  int reducers_done = 0;
  std::unique_ptr<sim::Event> done;
  sim::Time started;
  MpidJobResult result;
};

MpidSystem::MpidSystem(sim::Engine& engine, SystemSpec spec)
    : engine_(engine),
      spec_(spec),
      fabric_(engine, spec.nodes, spec.fabric),
      mpi_(engine, fabric_) {
  if (spec.nodes < 2 || spec.mappers_per_node < 1 || spec.reducers < 1) {
    throw std::invalid_argument("MpidSystem: bad topology");
  }
  if (spec.map_threads < 1 || spec.thread_efficiency <= 0.0 ||
      spec.thread_efficiency > 1.0) {
    throw std::invalid_argument(
        "MpidSystem: map_threads must be >= 1 and thread_efficiency in "
        "(0, 1]");
  }
  if (spec.node_aggregation && spec.node_agg_merge_bytes_per_second <= 0.0) {
    throw std::invalid_argument(
        "MpidSystem: node_agg_merge_bytes_per_second must be > 0 when "
        "node_aggregation is set");
  }
  if (spec.coded_replication < 1) {
    throw std::invalid_argument(
        "MpidSystem: coded_replication must be >= 1 (1 = coding off)");
  }
  if (spec.coded_replication > 1) {
    if (spec.reducers % spec.coded_replication != 0) {
      throw std::invalid_argument(
          "MpidSystem: coded_replication must divide reducers — the coded "
          "placement needs whole groups of r reducers");
    }
    if (spec.coded_decode_bytes_per_second <= 0.0) {
      throw std::invalid_argument(
          "MpidSystem: coded_decode_bytes_per_second must be > 0 when "
          "coded_replication > 1");
    }
  }
  disks_.reserve(static_cast<std::size_t>(spec.nodes));
  for (int n = 0; n < spec.nodes; ++n) {
    net::FabricSpec disk_spec;
    disk_spec.loopback_bytes_per_second = spec.disk_bytes_per_second;
    disk_spec.link_latency = sim::kTimeZero;
    disks_.push_back(std::make_unique<net::Fabric>(engine_, 1, disk_spec));
  }
}

namespace {

/// Chunks a byte count into spill-sized pieces (last piece is the tail).
std::uint64_t chunk_count(std::uint64_t bytes, std::uint64_t chunk) {
  return (bytes + chunk - 1) / chunk;
}

}  // namespace

sim::Task<> MpidSystem::mapper(Run& run, int node, int index_on_node) {
  const int mapper_id = (node - 1) * spec_.mappers_per_node + index_on_node;
  if (!run.job.world_resident) co_await engine_.delay(spec_.job_startup);
  if (spec_.startup_jitter_max.ns > 0) {
    common::SplitMix64 jitter_rng(static_cast<std::uint64_t>(mapper_id) + 1);
    co_await engine_.delay(sim::Time{static_cast<std::int64_t>(
        jitter_rng() % static_cast<std::uint64_t>(
                           spec_.startup_jitter_max.ns))});
  }
  const bool last = mapper_id == spec_.total_mappers() - 1;
  std::uint64_t remaining =
      last ? run.job.input_bytes -
                 run.share_bytes *
                     static_cast<std::uint64_t>(spec_.total_mappers() - 1)
           : run.share_bytes;

  // Finite send buffering: at most send_window spill transfers in flight.
  const auto window_size = static_cast<std::uint64_t>(
      std::max(1, spec_.overlap_sends ? spec_.send_window : 1));
  sim::Resource window(engine_, window_size);
  std::uint64_t chunk_index = 0;
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, spec_.spill_input_bytes);
    // Coded shuffle: this process also runs the replicas of r-1 other
    // tasks' chunks (symmetric placement — every task runs on r ranks),
    // so scan, map CPU and realign all scale by r; the XOR fold then
    // collapses the group's r aligned frame streams into one multicast
    // payload on the wire.
    const auto replication =
        static_cast<std::uint64_t>(spec_.coded_replication);
    // Scan input records from the local disk, run the map function and the
    // combiner over the hash-table buffer. Resident chain rounds map the
    // previous round's in-memory reducer partitions instead — no scan.
    if (!run.job.map_input_resident) {
      co_await disks_[static_cast<std::size_t>(node)]->transfer(
          0, 0, chunk * replication);
    }
    const double jitter =
        1.0 + spec_.chunk_jitter_frac *
                  (2.0 * (static_cast<double>(common::fmix64(
                              (static_cast<std::uint64_t>(mapper_id) << 32) ^
                              chunk_index) >>
                          11) *
                          0x1.0p-53) -
                   1.0);
    // Map compute and realignment run on the process's worker pool
    // (map_threads); the codec stage below stays serial, matching the
    // real library's serialized sequencer drain.
    const double thread_speedup = spec_.map_thread_speedup();
    co_await engine_.delay(sim::from_seconds(
        static_cast<double>(chunk * replication) /
        spec_.map_cpu_bytes_per_second * jitter / thread_speedup));

    // Spill: realign the combined buffer into contiguous partition frames,
    // then (when the job compresses its shuffle) codec-frame them so the
    // fabric only carries wire bytes.
    const double out =
        static_cast<double>(chunk) * run.job.map_output_ratio;
    co_await engine_.delay(sim::from_seconds(
        out * static_cast<double>(replication) /
        spec_.realign_bytes_per_second / thread_speedup));
    double post = out;
    if (spec_.node_aggregation) {
      // In-node combine tree (DESIGN.md §14): the node's mappers merge
      // duplicate keys before the fabric sees anything. Merge CPU is
      // charged over the full pre-aggregation volume; the wire — and
      // the reducer — then carry only the merged stream.
      co_await engine_.delay(
          sim::from_seconds(out / spec_.node_agg_merge_bytes_per_second));
      const double ratio = run.job.node_agg_ratio > 0.0
                               ? run.job.node_agg_ratio
                               : static_cast<double>(spec_.mappers_per_node);
      post = out / ratio;
    }
    double wire = post;
    if (run.job.compress_shuffle) {
      co_await engine_.delay(
          sim::from_seconds(post / spec_.compress_bytes_per_second));
      wire = post / run.job.shuffle_compression_ratio;
    }
    if (spec_.coded_replication > 1) {
      // One coded multicast round replaces the group's r unicasts: the
      // fabric carries 1/r of the (possibly compressed) wire volume. The
      // reducer is still handed the full raw volume below — decode
      // reconstructs it from side information computed by the replicas.
      wire /= static_cast<double>(replication);
    }

    // MPI_Send of the full frames. With overlap_sends the transfer is
    // pipelined with the next chunk's scan (MPI_D_Send returns
    // immediately); without it the mapper blocks until delivery.
    const int reducer_index =
        static_cast<int>((static_cast<std::uint64_t>(mapper_id) + chunk_index) %
                         static_cast<std::uint64_t>(spec_.reducers));
    const int reducer_node = 1 + reducer_index % (spec_.nodes - 1);
    auto deliver = [](MpidSystem& self, Run& r, sim::Resource& win, int src,
                      int dst_node, int reducer, double raw_bytes,
                      double wire_bytes) -> sim::Task<> {
      co_await self.mpi_.send(src, dst_node,
                              static_cast<std::uint64_t>(wire_bytes));
      // The reducer is handed the raw volume: its realignment/reduce and
      // memory budget are over decoded bytes.
      co_await r.to_reducer[static_cast<std::size_t>(reducer)]->send(
          raw_bytes);
      win.release();
    };
    co_await window.acquire();
    if (spec_.overlap_sends) {
      engine_.spawn(deliver(*this, run, window, node, reducer_node,
                            reducer_index, post, wire));
    } else {
      co_await deliver(*this, run, window, node, reducer_node, reducer_index,
                       post, wire);
    }

    remaining -= chunk;
    ++chunk_index;
  }
  // Drain outstanding transfers before reporting completion (the window
  // resource lives in this frame, so spawned deliveries must finish).
  co_await window.acquire(window_size);
  window.release(window_size);

  if (++run.mappers_done == spec_.total_mappers()) {
    run.result.map_phase_end = engine_.now();
  }
}

sim::Task<> MpidSystem::reducer(Run& run, int reducer_index) {
  if (!run.job.world_resident) co_await engine_.delay(spec_.job_startup);
  const int node = 1 + reducer_index % (spec_.nodes - 1);

  std::uint64_t consumed = 0;
  double received_bytes = 0;
  double spilled_total = 0;  // run bytes written during reception
  auto& inbox = *run.to_reducer[static_cast<std::size_t>(reducer_index)];
  while (consumed <
         run.chunks_for_reducer[static_cast<std::size_t>(reducer_index)]) {
    const double bytes = co_await inbox.recv();
    // Compressed spills are decoded as they arrive, before the reverse
    // realignment sees them.
    if (run.job.compress_shuffle) {
      co_await engine_.delay(
          sim::from_seconds(bytes / spec_.decompress_bytes_per_second));
    }
    // Coded payloads XOR against the locally recomputed side terms before
    // anything downstream sees them (memory-bandwidth-class pass).
    if (spec_.coded_replication > 1) {
      co_await engine_.delay(
          sim::from_seconds(bytes / spec_.coded_decode_bytes_per_second));
    }
    // Streaming mode: reverse realignment + the reduce function, applied
    // as the partitions arrive. Within the memory budget this is pure
    // in-memory work; beyond it the prototype spills and merges through
    // the local disk at a much lower effective rate.
    const double in_memory = std::max(
        0.0, std::min(bytes,
                      spec_.reduce_memory_budget_bytes - received_bytes));
    const double spilled = bytes - in_memory;
    if (spec_.model_spill_store) {
      // Two-tier store (mpid::store): over-budget bytes are staged to a
      // sorted run through this node's disk — shared with the node's
      // mappers, so spill I/O and input scans contend like they would on a
      // real box. The merge cascade is charged after the drain.
      co_await engine_.delay(
          sim::from_seconds(in_memory /
                            spec_.reduce_in_memory_bytes_per_second));
      if (spilled > 0) {
        co_await disks_[static_cast<std::size_t>(node)]->transfer(
            0, 0, static_cast<std::uint64_t>(spilled));
        spilled_total += spilled;
      }
    } else {
      // Legacy folded model: the spill rate already includes the disk
      // round-trip of the merge.
      co_await engine_.delay(sim::from_seconds(
          in_memory / spec_.reduce_in_memory_bytes_per_second +
          spilled / spec_.reduce_spill_bytes_per_second));
    }
    received_bytes += bytes;
    ++consumed;
  }
  if (spec_.model_spill_store && spilled_total > 0) {
    // External merge (store/extmerge.hpp): every spill drains the full
    // budget's worth of cursors, so runs are budget-sized. Fan-in
    // compaction merges the oldest spill_merge_fanin runs per pass
    // (read + rewrite through the disk, merge CPU on top), then the final
    // stream re-reads every surviving run once.
    std::vector<double> runs;
    double left = spilled_total;
    while (left > 0) {
      const double r = std::min(left, spec_.reduce_memory_budget_bytes);
      runs.push_back(r);
      left -= r;
    }
    const auto fanin = static_cast<std::size_t>(
        std::max(2, spec_.spill_merge_fanin));
    while (runs.size() > fanin) {
      double merged = 0;
      for (std::size_t i = 0; i < fanin; ++i) merged += runs[i];
      runs.erase(runs.begin(),
                 runs.begin() + static_cast<std::ptrdiff_t>(fanin));
      runs.insert(runs.begin(), merged);
      // One pass = read the inputs + write the merged run.
      co_await disks_[static_cast<std::size_t>(node)]->transfer(
          0, 0, static_cast<std::uint64_t>(2 * merged));
      co_await engine_.delay(
          sim::from_seconds(merged / spec_.spill_merge_bytes_per_second));
      spilled_total += merged;
      run.result.external_merge_passes += 1;
    }
    double surviving = 0;
    for (const double r : runs) surviving += r;
    co_await disks_[static_cast<std::size_t>(node)]->transfer(
        0, 0, static_cast<std::uint64_t>(surviving));
    co_await engine_.delay(
        sim::from_seconds(surviving / spec_.spill_merge_bytes_per_second));
    run.result.spilled_bytes += spilled_total;
  }
  // Final output write to the local disk.
  const auto output_bytes = static_cast<std::uint64_t>(
      received_bytes * run.job.reduce_output_ratio);
  co_await disks_[static_cast<std::size_t>(node)]->transfer(0, 0,
                                                            output_bytes);
  // Inter-round HDFS writeback (ablation rounds only): the part file is
  // pushed through the replication pipeline before the round may end —
  // one fabric hop and one disk write per extra replica.
  for (int rep = 1; rep < run.job.hdfs_writeback_replicas; ++rep) {
    const int replica_node = 1 + (node - 1 + rep) % (spec_.nodes - 1);
    co_await mpi_.send(node, replica_node, output_bytes);
    co_await disks_[static_cast<std::size_t>(replica_node)]->transfer(
        0, 0, output_bytes);
  }

  if (++run.reducers_done == spec_.reducers) {
    run.result.reduce_end = engine_.now();
    run.result.makespan = engine_.now() - run.started;
    run.result.intermediate_bytes = run.total_intermediate;
    run.done->set();
  }
}

MpidJobResult MpidSystem::run(const MpidJobSpec& job) {
  Run run;
  run.job = job;
  run.started = engine_.now();
  run.done = std::make_unique<sim::Event>(engine_);
  const auto mappers = static_cast<std::uint64_t>(spec_.total_mappers());
  run.share_bytes = job.input_bytes / mappers;
  run.total_intermediate =
      static_cast<double>(job.input_bytes) * job.map_output_ratio;

  // Precompute how many spill chunks each reducer will consume, mirroring
  // the mapper loop exactly so termination is exact.
  run.chunks_for_reducer.assign(static_cast<std::size_t>(spec_.reducers), 0);
  for (std::uint64_t m = 0; m < mappers; ++m) {
    const std::uint64_t bytes =
        m + 1 == mappers ? job.input_bytes - run.share_bytes * (mappers - 1)
                         : run.share_bytes;
    const std::uint64_t chunks =
        chunk_count(bytes, spec_.spill_input_bytes);
    run.total_chunks += chunks;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const auto reducer = static_cast<std::size_t>(
          (m + c) % static_cast<std::uint64_t>(spec_.reducers));
      ++run.chunks_for_reducer[reducer];
    }
  }

  for (int r = 0; r < spec_.reducers; ++r) {
    run.to_reducer.push_back(
        std::make_unique<sim::Channel<double>>(engine_));
  }

  for (int node = 1; node < spec_.nodes; ++node) {
    for (int i = 0; i < spec_.mappers_per_node; ++i) {
      engine_.spawn(mapper(run, node, i));
    }
  }
  for (int r = 0; r < spec_.reducers; ++r) engine_.spawn(reducer(run, r));

  engine_.run();
  if (!run.done->is_set()) {
    throw std::runtime_error("MpidSystem::run: job did not complete");
  }
  return run.result;
}

MpidChainResult MpidSystem::run_chain(const MpidChainSpec& chain) {
  if (chain.rounds < 1) {
    throw std::invalid_argument("MpidSystem::run_chain: rounds must be >= 1");
  }
  if (chain.round.input_bytes == 0) {
    throw std::invalid_argument(
        "MpidSystem::run_chain: round.input_bytes must be set");
  }
  MpidChainResult result;
  const sim::Time started = engine_.now();
  // State carried between rounds: round N's reducer output volume.
  double state = static_cast<double>(chain.round.input_bytes) *
                 chain.round.map_output_ratio * chain.round.reduce_output_ratio;
  for (int r = 1; r <= chain.rounds; ++r) {
    MpidJobSpec job = chain.round;
    if (r >= 2) {
      job.input_bytes = static_cast<std::uint64_t>(state);
      job.map_output_ratio = chain.state_map_output_ratio;
      job.reduce_output_ratio = chain.state_reduce_output_ratio;
      // Resident rounds keep the world up and map the reducer partitions
      // in place; the ablation relaunched the job and re-scans the
      // replicated part files.
      job.map_input_resident = chain.resident;
      job.world_resident = chain.resident;
      if (!chain.resident) {
        result.reingest_bytes += static_cast<double>(job.input_bytes);
      }
      state = static_cast<double>(job.input_bytes) * job.map_output_ratio *
              job.reduce_output_ratio;
    }
    const bool writeback = !chain.resident && r < chain.rounds;
    job.hdfs_writeback_replicas = writeback ? chain.hdfs_replicas : 0;
    if (writeback) {
      result.writeback_bytes += state * std::max(1, chain.hdfs_replicas);
    }
    result.rounds.push_back(run(job));
  }
  result.makespan = engine_.now() - started;
  return result;
}

}  // namespace mpid::mpidsim
