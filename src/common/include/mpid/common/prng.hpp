// Deterministic pseudo-random number generation for simulations and
// workload synthesis.
//
// All models in this repository must be reproducible run-to-run, so we do
// not use std::random_device or unseeded std::mt19937. Instead every
// component owns a SplitMix64 or Xoshiro256StarStar instance seeded from an
// explicit, documented seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mpid::common {

/// SplitMix64: tiny, fast, decent-quality 64-bit generator.
///
/// Primarily used to expand a single user seed into the larger state of
/// Xoshiro256StarStar, and directly where speed matters more than quality
/// (e.g. per-message jitter).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose generator used for all workload synthesis.
///
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions when needed, though most call sites use the uniform
/// helpers below for exact cross-platform determinism.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1). Uses the top 53 bits for an unbiased mantissa.
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  /// Lemire-style multiply-shift without the rejection loop; the residual
  /// bias (< 2^-64 * bound) is irrelevant for simulation workloads.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return mulhi64((*this)(), bound);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// High 64 bits of a 64x64 multiply, in portable ISO C++ (32-bit split).
  static constexpr std::uint64_t mulhi64(std::uint64_t a,
                                         std::uint64_t b) noexcept {
    const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
    const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
    const std::uint64_t mid1 = a_hi * b_lo + ((a_lo * b_lo) >> 32);
    const std::uint64_t mid2 = a_lo * b_hi + (mid1 & 0xffffffffULL);
    return a_hi * b_hi + (mid1 >> 32) + (mid2 >> 32);
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mpid::common
