// Byte and time unit helpers.
//
// Simulated time is a strong type (see sim/time.hpp); here we keep the
// dimensionless helpers shared across modules: byte-size literals,
// human-readable formatting, and rate math.
#pragma once

#include <cstdint>
#include <string>

namespace mpid::common {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// "1.5 KiB", "64 MiB", "150 GiB" — used by bench harness output.
std::string format_bytes(std::uint64_t bytes);

/// "1.30 ms", "56.83 s", "480 ns" — used by bench harness output.
std::string format_duration_ns(std::int64_t ns);

/// Bytes per second given a payload and elapsed nanoseconds (0 ns -> 0).
double bytes_per_second(std::uint64_t bytes, std::int64_t elapsed_ns);

}  // namespace mpid::common
