// Online statistics used by the bench harnesses and the simulators'
// per-stage accounting (Figure 1, Table I).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mpid::common {

/// Welford-style single-pass mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Keeps every sample; supports exact percentiles. Appropriate for the
/// per-reducer series in Figure 1 (a few thousand samples).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept;
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;

  /// Exact percentile by nearest-rank; p in [0, 100]. Sorts lazily.
  double percentile(double p) const;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Log2-bucketed histogram for message-size / latency distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept;
  std::uint64_t count() const noexcept { return total_; }
  /// Number of samples whose value had `bucket` as floor(log2(value)),
  /// bucket 0 holding values 0 and 1.
  std::uint64_t bucket_count(std::size_t bucket) const noexcept;
  static constexpr std::size_t kBuckets = 64;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace mpid::common
