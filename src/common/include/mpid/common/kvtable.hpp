// KvCombineTable: the allocation-free combine buffer of the map stage.
//
// Both runtimes buffer every emitted (key, value) pair until a spill
// realigns the buffer into partition frames (Section IV.A of the paper).
// A node-based std::unordered_map<std::string, std::vector<std::string>>
// makes that hot path pay a hash-node allocation, a key copy and a
// small-string append per MPI_D_Send. This table replaces it with the
// cache-conscious layout production shuffle engines use:
//
//   * an open-addressing slot array (linear probing) of packed 32-bit
//     words — entry index plus a fingerprint byte — so a probe touches a
//     single contiguous array and compares keys only on a fingerprint hit;
//   * a dense entry array in first-insertion order (the slot array stores
//     entry indices), which makes iteration a linear scan and growth a
//     control-array rebuild — entries never move;
//   * keys interned into a bump-pointer arena (chunked, stable addresses);
//   * per-key value lists as chains of fixed-size blocks slab-allocated
//     from a second arena, values serialized varint-length-prefixed —
//     exactly the byte layout KvListWriter ships, so a spill streams
//     values from the slab into the frame without re-encoding.
//
// recycle() drains everything back to empty while keeping every arena
// chunk and the slot array, so the steady state of map → spill → map does
// zero allocations per pair. Incremental combining (collect / replace)
// rewrites one key's chain in place, returning displaced blocks to an
// internal free list.
//
// Iteration is deterministic: first-insertion order, or sorted by key on
// demand (for_each(sorted=true)) to feed Hadoop-style sorted spills.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mpid::common {

class KvListWriter;

/// A chunked bump-pointer allocator with stable addresses. recycle()
/// rewinds to the first chunk without freeing, so steady-state allocation
/// is a pointer bump.
class BumpArena {
 public:
  explicit BumpArena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;
  BumpArena(BumpArena&&) = default;
  BumpArena& operator=(BumpArena&&) = default;

  /// Returns `n` bytes aligned to `align` (a power of two). Oversize
  /// requests get a dedicated chunk.
  std::byte* allocate(std::size_t n, std::size_t align);

  /// Rewinds every chunk to empty; keeps all allocations.
  void recycle() noexcept {
    current_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since construction or the last recycle().
  std::size_t bytes_used() const noexcept { return used_; }

  /// Total bytes owned by the arena (capacity across all chunks).
  std::size_t bytes_reserved() const noexcept { return reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t offset_ = 0;   // bump offset within chunks_[current_]
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

class KvCombineTable {
 public:
  struct Options {
    /// Initial slot count; rounded up to a power of two.
    std::size_t initial_slots = 1024;
    /// Chunk size of the key-interning arena.
    std::size_t key_arena_chunk_bytes = 64 * 1024;
    /// Payload size of a chain's first value-slab block. Blocks double
    /// from here up to value_block_bytes, so the skewed tail of keys with
    /// one or two short values costs ~a cache line of slab, not a full
    /// block — the slab footprint tracks the data, and a spill's
    /// insertion-order drain walks the arena near-sequentially.
    std::size_t value_block_first_bytes = 32;
    /// Payload size cap of one value-slab block. A value longer than
    /// this gets a dedicated block; short values pack many per block.
    std::size_t value_block_bytes = 1024;
    /// Chunk size of the value-slab arena.
    std::size_t slab_chunk_bytes = 64 * 1024;
  };

  struct Counters {
    std::uint64_t rehashes = 0;       // slot-array growth events
    std::uint64_t block_reuses = 0;   // slab blocks served from the free list
    std::uint64_t recycles = 0;       // recycle() calls
  };

  KvCombineTable() : KvCombineTable(Options()) {}
  explicit KvCombineTable(Options options);

  KvCombineTable(const KvCombineTable&) = delete;
  KvCombineTable& operator=(const KvCombineTable&) = delete;

  /// Streams one entry's values back out of its slab chain, in append
  /// order. Views alias the slab and stay valid until replace()/recycle().
  class ValueCursor {
   public:
    std::optional<std::string_view> next();

    /// Streams every remaining value into `out`'s open group as raw
    /// encoded bytes — the slabs hold the writer's exact wire format, so
    /// this is a block memcpy per chain link, no per-value decode or
    /// re-encode. The caller's begin_group must have declared at least
    /// the remaining count. Consumes the cursor.
    void drain_to(KvListWriter& out);

   private:
    friend class KvCombineTable;
    const std::byte* block_ = nullptr;  // current block header
    std::size_t offset_ = 0;            // payload offset within the block
    std::size_t remaining_ = 0;         // values left across the chain
  };

  /// One entry as seen by for_each: the interned key, the value count
  /// (known up front — KvListWriter::begin_group needs it), the exact
  /// serialized size of the (key, value-list) group, and a value cursor.
  struct EntryView {
    std::string_view key;
    /// The cached fnv1a64(key) — the same hash hash_partition() computes,
    /// so a spill can pick the partition without rehashing the key.
    std::uint64_t key_hash = 0;
    std::size_t value_count = 0;
    /// Exact bytes this entry serializes to as a KvListWriter group.
    std::size_t frame_bytes = 0;
    ValueCursor values;
  };

  /// Appends `value` under `key`, interning the key on first sight.
  /// Returns the entry's value count after the append (the incremental-
  /// combine trigger).
  std::size_t append(std::string_view key, std::string_view value);

  /// The dense index of the entry the last append() touched. With
  /// entry_at()/replace_at() an incremental combine right after an append
  /// reuses the probe that append already paid for instead of re-hashing
  /// the key twice more.
  std::uint32_t last_index() const noexcept { return last_index_; }

  /// The entry at a dense index in [0, size()), in first-insertion order.
  EntryView entry_at(std::uint32_t index) const noexcept {
    return view_of(index);
  }

  /// Copies one entry's values into `out` (appended; caller clears).
  /// Returns false if the key is absent.
  bool collect(std::string_view key, std::vector<std::string>& out) const;

  /// Replaces one entry's value list in place (the combiner's output),
  /// releasing the old chain's blocks to the free list. The key must be
  /// present.
  void replace(std::string_view key, std::span<const std::string> values);

  /// As replace(), but addressed by dense index — no probe.
  void replace_at(std::uint32_t index, std::span<const std::string> values);

  /// Looks one entry up without touching it.
  std::optional<EntryView> find(std::string_view key) const;

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Spill-threshold accounting: interned key bytes + encoded value bytes
  /// + per-entry bookkeeping. Monotone under append; shrinks on replace.
  std::size_t bytes_used() const noexcept { return bytes_used_; }

  /// High-water mark of bytes_used() since construction (not reset by
  /// recycle — it sizes frame reservations across spill rounds).
  std::size_t bytes_peak() const noexcept { return bytes_peak_; }

  /// Largest frame_bytes among the current entries: the exact worst-case
  /// overshoot of a partition frame past its flush threshold, so frames
  /// reserved at target + max_entry_frame_bytes() never reallocate
  /// mid-spill. One O(entries) scan at the spill boundary — cheaper than
  /// bookkeeping on every append, and it warms the entry array the drain
  /// is about to walk.
  std::size_t max_entry_frame_bytes() const noexcept;

  /// Visits every entry: first-insertion order, or sorted by key when
  /// `sorted` (one index-array sort; entries themselves never move).
  /// `fn` receives an EntryView by value.
  template <typename Fn>
  void for_each(bool sorted, Fn&& fn) const {
    if (!sorted) {
      for (std::uint32_t i = 0; i < entries_.size(); ++i) fn(view_of(i));
      return;
    }
    std::vector<std::uint32_t> order(entries_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    sort_by_key(order);
    for (const auto i : order) fn(view_of(i));
  }

  /// Drains the table back to empty without freeing: slots are cleared,
  /// both arenas rewind, the block free list resets. All EntryViews and
  /// interned keys are invalidated.
  void recycle() noexcept;

  const Counters& counters() const noexcept { return counters_; }

 private:
  /// Slab block header; `cap` payload bytes follow in the same arena
  /// allocation. Chains are singly linked in append order.
  struct Block {
    Block* next = nullptr;
    std::uint32_t used = 0;
    std::uint32_t cap = 0;
  };

  struct Entry {
    const char* key = nullptr;  // interned; stable until recycle()
    std::uint32_t key_len = 0;
    std::uint32_t value_count = 0;
    std::uint64_t hash = 0;          // cached for rehash
    std::size_t encoded_bytes = 0;   // varint+payload bytes across the chain
    Block* head = nullptr;
    Block* tail = nullptr;
  };

  static std::byte* payload(Block* b) noexcept {
    return reinterpret_cast<std::byte*>(b + 1);
  }
  static const std::byte* payload(const Block* b) noexcept {
    return reinterpret_cast<const std::byte*>(b + 1);
  }

  std::uint8_t fingerprint(std::uint64_t hash) const noexcept {
    // Top bits (the mask consumes the low ones); never 0 = empty.
    return static_cast<std::uint8_t>((hash >> 57) | 0x80);
  }

  /// One slot word: entry index in the high 24 bits, fingerprint in the
  /// low 8. The fingerprint's set high bit makes 0 mean "empty", and the
  /// packing keeps a probe inside a single cache line instead of touching
  /// a control array and an index array separately.
  static std::uint32_t pack_slot(std::uint32_t entry,
                                 std::uint8_t fp) noexcept {
    return (entry << 8) | fp;
  }
  static std::uint32_t slot_entry(std::uint32_t slot) noexcept {
    return slot >> 8;
  }
  static std::uint8_t slot_fp(std::uint32_t slot) noexcept {
    return static_cast<std::uint8_t>(slot);
  }

  /// Probes for `key`; returns the entry index or UINT32_MAX, leaving the
  /// slot index of the miss in `slot` for the subsequent insert.
  std::uint32_t probe(std::string_view key, std::uint64_t hash,
                      std::size_t& slot) const noexcept;

  Block* allocate_block(std::size_t min_payload, std::size_t target_payload);
  void release_chain(Entry& e) noexcept;
  void append_encoded(Entry& e, std::string_view value);
  void grow();
  EntryView view_of(std::uint32_t index) const noexcept;
  void sort_by_key(std::vector<std::uint32_t>& order) const;
  static std::size_t group_frame_bytes(const Entry& e) noexcept;

  Options options_;
  std::vector<std::uint32_t> slots_;  // packed (entry, fp); 0 = empty
  std::vector<Entry> entries_;        // dense, first-insertion order
  std::size_t slot_mask_ = 0;
  BumpArena key_arena_;
  BumpArena slab_arena_;
  Block* free_blocks_ = nullptr;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_peak_ = 0;
  std::uint32_t last_index_ = 0;
  Counters counters_;
};

}  // namespace mpid::common
