// Zipf-distributed sampling for workload synthesis.
//
// Natural-language word frequencies (the WordCount input of Figure 6) are
// approximately Zipfian with exponent ~1. We use rejection-inversion
// (W. Hörmann & G. Derflinger, "Rejection-inversion to generate variates
// from monotone discrete distributions", 1996) so sampling is O(1) per
// draw and needs no O(N) table, which matters when synthesizing streams
// standing in for 100 GB of text.
#pragma once

#include <cstdint>

#include "mpid/common/prng.hpp"

namespace mpid::common {

/// Samples ranks in [1, n] with P(k) proportional to 1 / k^s.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` must be > 0 and != 1 handling is internal
  /// (s == 1 uses the logarithmic branch).
  ZipfSampler(std::uint64_t n, double s);

  /// Draws one rank in [1, n] using the caller's generator.
  std::uint64_t operator()(Xoshiro256StarStar& rng) const;

  std::uint64_t n() const noexcept { return n_; }
  double s() const noexcept { return s_; }

 private:
  double h(double x) const;          // integral of the density
  double h_inverse(double x) const;  // inverse of h

  std::uint64_t n_;
  double s_;
  double h_x1_;        // h(1.5) - 1
  double h_n_;         // h(n + 0.5)
  double cut_;         // 1 - h_inverse(h(1.5) - 1/1^s)
};

}  // namespace mpid::common
