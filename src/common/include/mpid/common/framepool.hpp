// FramePool: a bounded, thread-safe recycler of frame byte buffers.
//
// The MPI-D shuffle moves data in fixed-target-size partition frames
// (std::vector<std::byte>). Without pooling every spill allocates a fresh
// buffer on the mapper, the transport hands it to the reducer, and the
// reducer frees it after reverse realignment — an allocate/free pair per
// frame on the hottest path in the system. A FramePool closes that loop:
// reducers release parsed frame buffers, mappers acquire them for the next
// spill, and the allocator drops out of the steady state entirely.
//
// The pool is deliberately small and dumb: a mutex-guarded LIFO stack of
// vectors. LIFO keeps the most recently touched (cache-warm) buffer on
// top. Bounds prevent pathological retention: at most `max_buffers`
// vectors are kept, and any buffer whose capacity exceeds
// `max_buffer_bytes` is dropped instead of cached (a one-off jumbo frame
// must not pin memory forever).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace mpid::common {

class FramePool {
 public:
  struct Counters {
    std::uint64_t acquires = 0;  // acquire() calls
    std::uint64_t hits = 0;      // acquires satisfied from the pool
    std::uint64_t releases = 0;  // release() calls
    std::uint64_t drops = 0;     // releases discarded (full pool / jumbo)
  };

  explicit FramePool(std::size_t max_buffers = 32,
                     std::size_t max_buffer_bytes = 8 * 1024 * 1024)
      : max_buffers_(max_buffers), max_buffer_bytes_(max_buffer_bytes) {
    free_.reserve(max_buffers_);  // keeps release() allocation-free
  }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// Returns an empty buffer, reusing a pooled allocation when one is
  /// available; reserves at least `capacity_hint` bytes either way.
  std::vector<std::byte> acquire(std::size_t capacity_hint = 0);

  /// Returns a buffer to the pool. Contents are discarded; the allocation
  /// is kept unless the pool is full or the buffer is over the size cap.
  void release(std::vector<std::byte>&& buf) noexcept;

  /// Number of buffers currently cached.
  std::size_t cached() const;

  Counters counters() const;

  /// A process-wide shared pool. In-process minimpi worlds run every rank
  /// as a thread of one process, so a single shared pool lets reducer
  /// threads recycle buffers straight back to mapper threads.
  static const std::shared_ptr<FramePool>& process_pool();

 private:
  const std::size_t max_buffers_;
  const std::size_t max_buffer_bytes_;
  mutable std::mutex mu_;
  std::vector<std::vector<std::byte>> free_;
  Counters counters_;
};

}  // namespace mpid::common
