// Hash functions shared by the MPI-D partitioner, the combiner hash table
// and the simulators.
//
// Determinism requirement: partition selection (hash(key) mod R) must give
// identical results on every platform and every run, so we do NOT use
// std::hash (implementation-defined). FNV-1a and the Murmur3 finalizer are
// fixed algorithms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace mpid::common {

/// FNV-1a 64-bit over an arbitrary byte range.
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept {
  return fnv1a64(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

/// Murmur3 64-bit finalizer; good avalanche for integer keys.
constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Partition selection used by MPI-D and the mapred layer: equivalent in
/// spirit to Hadoop's HashPartitioner (hash & MAX_INT % numPartitions).
constexpr std::uint32_t hash_partition(std::string_view key,
                                       std::uint32_t num_partitions) noexcept {
  return static_cast<std::uint32_t>(fnv1a64(key) % num_partitions);
}

/// Transparent (heterogeneous) hash for std::string-keyed containers:
/// probes by std::string_view never construct a temporary std::string.
/// Used by the legacy unordered_map combine buffers kept for A/B runs
/// against KvCombineTable.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return static_cast<std::size_t>(fnv1a64(s));
  }
};

/// Transparent equality companion to TransparentStringHash.
struct TransparentStringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace mpid::common
