// Contiguous key-value frame serialization.
//
// This is the substrate of MPI-D "data realignment" (Section IV.A of the
// paper): variable-sized, non-contiguous key-value pairs are reformatted
// into address-sequential byte buffers suitable for a single MPI_Send, and
// recovered to key-value pairs on the receiving side.
//
// Wire formats (all integers are LEB128 varints):
//   flat pair frame:  [klen][vlen][key bytes][value bytes]
//   key/value-list:   [klen][key bytes][count][vlen][v bytes] * count
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace mpid::common {

/// Appends a LEB128 varint to `out`.
void put_varint(std::vector<std::byte>& out, std::uint64_t value);

/// Reads a LEB128 varint at `offset`, advancing it. Returns nullopt on
/// truncated or overlong (>10 byte) input.
std::optional<std::uint64_t> get_varint(std::span<const std::byte> buf,
                                        std::size_t& offset);

/// A borrowed view of one key-value pair inside a frame buffer.
struct KvView {
  std::string_view key;
  std::string_view value;
};

/// Serializes flat (key, value) pairs into one contiguous buffer.
class KvWriter {
 public:
  void append(std::string_view key, std::string_view value);
  std::size_t pair_count() const noexcept { return pairs_; }
  std::size_t byte_size() const noexcept { return buf_.size(); }
  const std::vector<std::byte>& buffer() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept;
  void clear() noexcept;
  /// Adopts `recycled` (typically from a FramePool) as the backing buffer,
  /// discarding its contents but keeping its allocation — the move-only
  /// complement of take() that lets buffers cycle writer → wire → pool →
  /// writer without copies.
  void reset(std::vector<std::byte>&& recycled) noexcept;
  /// Grows the backing buffer to at least `bytes` capacity up front, so a
  /// spill whose exact size is known (KvCombineTable byte accounting)
  /// never reallocates mid-append.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }
  std::size_t capacity() const noexcept { return buf_.capacity(); }

 private:
  std::vector<std::byte> buf_;
  std::size_t pairs_ = 0;
};

/// Iterates flat (key, value) pairs out of a contiguous buffer.
///
/// The returned views alias the underlying buffer, which must outlive them.
class KvReader {
 public:
  explicit KvReader(std::span<const std::byte> buf) noexcept : buf_(buf) {}

  /// Returns the next pair, or nullopt at end of buffer.
  /// Throws std::runtime_error on a corrupt frame.
  std::optional<KvView> next();

  bool at_end() const noexcept { return offset_ == buf_.size(); }
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::span<const std::byte> buf_;
  std::size_t offset_ = 0;
};

/// Serializes (key, [value...]) groups — the combined form MPI-D builds in
/// its hash-table buffer before spilling to a partition.
class KvListWriter {
 public:
  /// Starts a group for `key` with a known value count.
  void begin_group(std::string_view key, std::size_t value_count);
  /// Adds one value to the currently open group; must be called exactly
  /// `value_count` times per begin_group.
  void add_value(std::string_view value);
  /// Appends values already serialized in this writer's wire format
  /// (varint-length-prefixed), e.g. streamed straight out of
  /// KvCombineTable's value slabs. `value_count` says how many of the
  /// open group's pending values the bytes settle; a multi-chunk run may
  /// pass 0 for all chunks but the one that closes the tally.
  void add_encoded_values(std::span<const std::byte> encoded,
                          std::size_t value_count);
  std::size_t group_count() const noexcept { return groups_; }
  std::size_t byte_size() const noexcept { return buf_.size(); }
  const std::vector<std::byte>& buffer() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept;
  void clear() noexcept;
  /// Adopts `recycled` as the backing buffer (see KvWriter::reset).
  void reset(std::vector<std::byte>&& recycled) noexcept;
  /// Pre-sizes the backing buffer (see KvWriter::reserve).
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }
  std::size_t capacity() const noexcept { return buf_.capacity(); }

 private:
  std::vector<std::byte> buf_;
  std::size_t groups_ = 0;
  std::size_t pending_values_ = 0;
};

/// A borrowed view of one (key, [value...]) group.
struct KvListView {
  std::string_view key;
  std::vector<std::string_view> values;
};

/// Iterates (key, [value...]) groups out of a contiguous buffer.
class KvListReader {
 public:
  explicit KvListReader(std::span<const std::byte> buf) noexcept : buf_(buf) {}

  /// Returns the next group, or nullopt at end of buffer.
  /// Throws std::runtime_error on a corrupt frame.
  std::optional<KvListView> next();

  bool at_end() const noexcept { return offset_ == buf_.size(); }

 private:
  std::span<const std::byte> buf_;
  std::size_t offset_ = 0;
};

}  // namespace mpid::common
