// Minimal fixed-width ASCII table renderer for the bench harnesses, so
// every figure/table binary prints rows in the same visual format the
// paper's tables use.
#pragma once

#include <string>
#include <vector>

namespace mpid::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to the widest cell.
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper producing a std::string (used to fill table cells).
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mpid::common
