// KV-frame-aware block codec for shuffle wire frames.
//
// The shuffle ships realigned key-value frames (kvframe.hpp) whose bytes
// are highly redundant on MapReduce workloads: WordCount frames repeat the
// value "1" thousands of times, sorted spill runs carry keys that share
// long prefixes, and GridMix records repeat dictionary words. The copy
// stage the paper measures as dominant (Figure 1, Table I) is therefore
// mostly redundant bytes on the wire — trading cheap CPU for shuffle
// bandwidth is the same lever Hadoop exposes as
// `mapred.compress.map.output` and Coded MapReduce formalizes.
//
// The codec is frame-structure-aware rather than generic:
//
//   * keys are prefix-delta coded against the previous key of the frame
//     ([shared][suffix-len][suffix bytes]) — a no-op-cost transform on
//     unsorted frames, a large win on sorted runs and on the grouped
//     (equal keys adjacent) layout both runtimes emit;
//   * values are run-length coded (consecutive identical values collapse
//     to one token) and dictionary coded (a value seen anywhere earlier
//     in the frame becomes a varint back-reference) — WordCount's "1"
//     costs two bytes per group instead of two bytes per pair;
//   * an optional byte-oriented LZ stage (greedy LZ77, varint tokens)
//     squeezes residual redundancy out of the transformed stream, and
//     doubles as the fallback for payloads that are not KV frames at all;
//   * every encode is guarded by a stored escape: if the encoded form is
//     not smaller than the raw frame (times `max_wire_fraction`), the
//     frame ships verbatim, so the worst case is the raw frame plus a
//     few header bytes.
//
// Wire format of one codec frame (self-describing; all varints LEB128):
//
//   [u8 codec id][varint raw size][payload bytes]
//
// decode_frame() dispatches on the codec id, so a receiver needs no
// out-of-band negotiation beyond "this buffer is a codec frame". Decoding
// is hostile-input safe: corrupt or truncated frames throw
// std::runtime_error, never read out of bounds, and never allocate more
// than the declared raw size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mpid::common {

/// Structure hint for the encoder: which wire layout `raw` uses.
/// (The *decoder* never needs it — codec frames are self-describing.)
enum class FrameKind : std::uint8_t {
  kKvList,  // KvListWriter frames: [klen][key][count]([vlen][v])*count ...
  kKvPair,  // KvWriter frames:     [klen][vlen][key][value] ...
  kOpaque,  // arbitrary bytes: only the LZ stage / stored escape apply
};

/// Codec id stamped into byte 0 of a codec frame.
enum class FrameCodec : std::uint8_t {
  kStored = 0,    // payload is the raw frame verbatim
  kKvList = 1,    // KV transform of a KvList frame
  kKvPair = 2,    // KV transform of a flat pair frame
  kLz = 3,        // byte-oriented LZ over the raw bytes
  kKvListLz = 4,  // KV transform of a KvList frame, then LZ
  kKvPairLz = 5,  // KV transform of a flat pair frame, then LZ
};

struct CodecOptions {
  /// Skip the LZ stage (and the LZ fallback): the KV transform alone is
  /// already within ~20% of the two-stage ratio on combiner-off frames
  /// and roughly twice as fast to encode.
  bool enable_lz = true;
  /// Encoded/raw must come in at or below this fraction, or the frame is
  /// stored verbatim — the escape that bounds incompressible-input cost.
  double max_wire_fraction = 0.95;
};

/// What one encode_frame() call did (the caller folds this into Stats).
struct EncodeResult {
  FrameCodec codec = FrameCodec::kStored;
  std::size_t raw_bytes = 0;   // input frame size
  std::size_t wire_bytes = 0;  // bytes appended to `out` (header included)
};

/// Encodes `raw` as one self-describing codec frame appended to `out`.
/// Tries the KV transform matching `kind` (falling back to LZ when the
/// frame does not parse), then the stored escape. Never throws on any
/// input; the output always round-trips through decode_frame(). The wire
/// frame is *appended* to `out` (so a caller can prefix its own header);
/// clear the buffer first when reusing one across frames.
EncodeResult encode_frame(FrameKind kind, std::span<const std::byte> raw,
                          std::vector<std::byte>& out,
                          const CodecOptions& options = {});

/// Appends `raw` as a stored codec frame without attempting compression —
/// the cheap path for frames the caller already decided not to compress
/// (below a size threshold, or skipped by an auto heuristic).
EncodeResult store_frame(std::span<const std::byte> raw,
                         std::vector<std::byte>& out);

/// Decodes one codec frame produced by encode_frame() into `out` (cleared
/// first; capacity is reused, so pool-recycled buffers decode in place).
/// Returns the codec the frame was encoded with. Throws
/// std::runtime_error on corrupt, truncated or oversized input.
FrameCodec decode_frame(std::span<const std::byte> wire,
                        std::vector<std::byte>& out);

/// The codec id of a wire buffer, or nullopt if the buffer is empty or
/// the id byte is not a known codec (diagnostics / tests).
std::optional<FrameCodec> peek_codec(std::span<const std::byte> wire) noexcept;

}  // namespace mpid::common
