#include "mpid/common/codec.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace mpid::common {
namespace {

// ---------------------------------------------------------------------------
// Byte-level varint helpers (LEB128, matching kvframe.cpp's wire varints but
// operating on std::byte buffers).

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

/// Bounds-checked varint read; advances `pos`. Throws on truncation or a
/// varint longer than 64 bits.
std::uint64_t get_varint(std::span<const std::byte> in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= in.size()) throw std::runtime_error("codec: truncated varint");
    if (shift >= 64) throw std::runtime_error("codec: varint overflow");
    const auto b = static_cast<std::uint8_t>(in[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::string_view view_of(std::span<const std::byte> in, std::size_t pos,
                         std::size_t len) {
  return {reinterpret_cast<const char*>(in.data()) + pos, len};
}

void append_bytes(std::vector<std::byte>& out, std::string_view bytes) {
  const auto* p = reinterpret_cast<const std::byte*>(bytes.data());
  out.insert(out.end(), p, p + bytes.size());
}

/// Reads `len` raw bytes as a view; advances `pos`. Throws on truncation.
std::string_view get_bytes(std::span<const std::byte> in, std::size_t& pos,
                           std::size_t len) {
  if (len > in.size() - pos) throw std::runtime_error("codec: truncated bytes");
  const auto v = view_of(in, pos, len);
  pos += len;
  return v;
}

std::size_t shared_prefix(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

// ---------------------------------------------------------------------------
// KV transform.
//
// Transformed stream layout (all varints):
//
//   group*  := [shared][suffix_len][suffix bytes][value tokens...]
//   tokens  := for kKvList frames, exactly the group's `count` values; for
//              kKvPair frames, exactly one value per "group" (each pair is
//              its own group — equal adjacent keys still share prefixes).
//
// A value token is  [(run_len << 1) | is_dict]  followed by either
// [dict_id] (is_dict) or [vlen][value bytes] (literal). `run_len` counts
// consecutive identical values collapsed into the token (>= 1). Literal
// values are appended to the dictionary when they fit the caps below; the
// decoder mirrors the same rule, so dict ids agree without shipping the
// dictionary.
//
// Group counts are NOT re-encoded: the token run lengths reconstruct them.
// For kKvList the group is terminated by an explicit total-count varint
// before the tokens so the decoder can rebuild the [count] field exactly.

constexpr std::size_t kDictMaxEntries = 1 << 16;
constexpr std::size_t kDictMaxValueLen = 256;

class ValueDict {
 public:
  /// Returns the id of `v` if present, else nullopt.
  std::optional<std::uint32_t> find(std::string_view v) const {
    if (v.size() > kDictMaxValueLen) return std::nullopt;
    const auto it = ids_.find(std::string(v));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  /// Inserts `v` if caps allow; both encoder and decoder call this with the
  /// same literals in the same order, keeping ids in sync.
  void maybe_add(std::string_view v) {
    if (v.size() > kDictMaxValueLen || entries_.size() >= kDictMaxEntries)
      return;
    auto [it, inserted] =
        ids_.emplace(std::string(v), static_cast<std::uint32_t>(entries_.size()));
    if (inserted) entries_.push_back(it->first);
  }

  std::string_view at(std::uint64_t id) const {
    if (id >= entries_.size())
      throw std::runtime_error("codec: dictionary id out of range");
    return entries_[id];
  }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string_view> entries_;  // views into ids_ keys (stable)
};

/// One parsed group of the input frame: key + its values (views into raw).
struct RawGroup {
  std::string_view key;
  // Values of the group, in order. For kKvPair frames this is one value.
  std::vector<std::string_view> values;
};

/// Parses a KvList frame ([klen][key][count]([vlen][v])*count ...). Returns
/// false (without throwing) if the bytes do not parse as that layout.
bool parse_kvlist(std::span<const std::byte> raw, std::vector<RawGroup>& groups) {
  groups.clear();
  std::size_t pos = 0;
  try {
    while (pos < raw.size()) {
      RawGroup g;
      const auto klen = get_varint(raw, pos);
      g.key = get_bytes(raw, pos, klen);
      const auto count = get_varint(raw, pos);
      if (count == 0 || count > raw.size()) return false;  // implausible
      g.values.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto vlen = get_varint(raw, pos);
        g.values.push_back(get_bytes(raw, pos, vlen));
      }
      groups.push_back(std::move(g));
    }
  } catch (const std::runtime_error&) {
    return false;
  }
  return !groups.empty();
}

/// Parses a flat-pair frame ([klen][vlen][key][value] ...).
bool parse_kvpair(std::span<const std::byte> raw, std::vector<RawGroup>& groups) {
  groups.clear();
  std::size_t pos = 0;
  try {
    while (pos < raw.size()) {
      RawGroup g;
      const auto klen = get_varint(raw, pos);
      const auto vlen = get_varint(raw, pos);
      g.key = get_bytes(raw, pos, klen);
      g.values.push_back(get_bytes(raw, pos, vlen));
      groups.push_back(std::move(g));
    }
  } catch (const std::runtime_error&) {
    return false;
  }
  return !groups.empty();
}

/// Encodes parsed groups as the KV-transformed stream described above.
void kv_transform(const std::vector<RawGroup>& groups, bool list_counts,
                  std::vector<std::byte>& out) {
  ValueDict dict;
  std::string_view prev_key;
  for (const auto& g : groups) {
    const std::size_t shared = shared_prefix(prev_key, g.key);
    put_varint(out, shared);
    put_varint(out, g.key.size() - shared);
    append_bytes(out, g.key.substr(shared));
    prev_key = g.key;
    if (list_counts) put_varint(out, g.values.size());
    for (std::size_t i = 0; i < g.values.size();) {
      const std::string_view v = g.values[i];
      std::size_t run = 1;
      while (i + run < g.values.size() && g.values[i + run] == v) ++run;
      if (const auto id = dict.find(v)) {
        put_varint(out, (run << 1) | 1);
        put_varint(out, *id);
      } else {
        put_varint(out, run << 1);
        put_varint(out, v.size());
        append_bytes(out, v);
        dict.maybe_add(v);
      }
      i += run;
    }
  }
}

/// Rebuilds the raw frame from a KV-transformed payload. `list_counts`
/// selects the KvList vs flat-pair output layout. `raw_len` is the declared
/// output size — used for bounds enforcement and final validation.
void kv_untransform(std::span<const std::byte> in, bool list_counts,
                    std::size_t raw_len, std::vector<std::byte>& out) {
  ValueDict dict;
  std::string prev_key;
  std::string key;
  std::size_t pos = 0;
  // Scratch for one group's decoded values; token runs expand into it so
  // the [count] field (KvList) can be emitted before the values.
  std::vector<std::string> val_bytes;
  while (pos < in.size()) {
    const auto shared = get_varint(in, pos);
    const auto suffix_len = get_varint(in, pos);
    if (shared > prev_key.size())
      throw std::runtime_error("codec: bad key prefix length");
    const auto suffix = get_bytes(in, pos, suffix_len);
    key.assign(prev_key, 0, shared);
    key.append(suffix);
    prev_key = key;

    std::uint64_t remaining = 1;  // kKvPair: one value per group
    if (list_counts) remaining = get_varint(in, pos);
    if (remaining == 0) throw std::runtime_error("codec: empty group");

    val_bytes.clear();
    std::uint64_t decoded = 0;
    while (decoded < remaining) {
      const auto token = get_varint(in, pos);
      const std::uint64_t run = token >> 1;
      if (run == 0 || run > remaining - decoded)
        throw std::runtime_error("codec: bad value run length");
      std::string v;
      if (token & 1) {
        v = std::string(dict.at(get_varint(in, pos)));
      } else {
        const auto vlen = get_varint(in, pos);
        v = std::string(get_bytes(in, pos, vlen));
        dict.maybe_add(v);
      }
      for (std::uint64_t r = 0; r < run; ++r) val_bytes.push_back(v);
      decoded += run;
    }

    // Emit the group in the requested raw layout.
    if (list_counts) {
      put_varint(out, key.size());
      append_bytes(out, key);
      put_varint(out, val_bytes.size());
      for (const auto& v : val_bytes) {
        put_varint(out, v.size());
        append_bytes(out, v);
      }
    } else {
      for (const auto& v : val_bytes) {
        put_varint(out, key.size());
        put_varint(out, v.size());
        append_bytes(out, key);
        append_bytes(out, v);
      }
    }
    if (out.size() > raw_len)
      throw std::runtime_error("codec: decoded frame exceeds declared size");
  }
}

// ---------------------------------------------------------------------------
// Byte-oriented LZ stage: greedy LZ77 with a 4-byte hash-table match finder.
//
// Token stream: [lit_len][literal bytes][match_len][dist], repeated; a
// match_len of 0 terminates (its dist is omitted). Matches are >= 4 bytes;
// dist is 1-based and may be < match_len (overlapping copy, RLE-style).

constexpr std::size_t kLzHashBits = 14;
constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzMaxDist = 1 << 20;

std::uint32_t lz_hash(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kLzHashBits);
}

void lz_compress(std::span<const std::byte> in, std::vector<std::byte>& out) {
  std::vector<std::uint32_t> table(std::size_t{1} << kLzHashBits, 0xffffffffu);
  std::size_t pos = 0, lit_start = 0;
  const std::size_t n = in.size();
  auto flush_literals = [&](std::size_t end) {
    put_varint(out, end - lit_start);
    out.insert(out.end(), in.begin() + lit_start, in.begin() + end);
  };
  while (pos + kLzMinMatch <= n) {
    const auto h = lz_hash(in.data() + pos);
    const auto cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != 0xffffffffu && pos - cand <= kLzMaxDist &&
        std::memcmp(in.data() + cand, in.data() + pos, kLzMinMatch) == 0) {
      std::size_t len = kLzMinMatch;
      while (pos + len < n && in[cand + len] == in[pos + len]) ++len;
      flush_literals(pos);
      put_varint(out, len);
      put_varint(out, pos - cand);
      // Seed the table through the match so long repeats stay findable.
      const std::size_t stop = std::min(pos + len, n - kLzMinMatch);
      for (std::size_t p = pos + 1; p < stop; p += 2)
        table[lz_hash(in.data() + p)] = static_cast<std::uint32_t>(p);
      pos += len;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literals(n);
  put_varint(out, 0);  // terminator
}

void lz_decompress(std::span<const std::byte> in, std::size_t raw_len,
                   std::vector<std::byte>& out) {
  std::size_t pos = 0;
  while (true) {
    const auto lit_len = get_varint(in, pos);
    if (lit_len > raw_len - out.size())
      throw std::runtime_error("codec: LZ literals exceed declared size");
    const auto lits = get_bytes(in, pos, lit_len);
    append_bytes(out, lits);
    const auto match_len = get_varint(in, pos);
    if (match_len == 0) break;
    const auto dist = get_varint(in, pos);
    if (dist == 0 || dist > out.size())
      throw std::runtime_error("codec: LZ distance out of range");
    if (match_len > raw_len - out.size())
      throw std::runtime_error("codec: LZ match exceeds declared size");
    // Byte-at-a-time copy: overlapping (dist < match_len) is well-defined.
    std::size_t src = out.size() - dist;
    for (std::uint64_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
  if (pos != in.size())
    throw std::runtime_error("codec: trailing bytes after LZ stream");
}

// ---------------------------------------------------------------------------

void put_header(std::vector<std::byte>& out, FrameCodec codec,
                std::size_t raw_len) {
  out.push_back(static_cast<std::byte>(codec));
  put_varint(out, raw_len);
}

}  // namespace

EncodeResult encode_frame(FrameKind kind, std::span<const std::byte> raw,
                          std::vector<std::byte>& out,
                          const CodecOptions& options) {
  EncodeResult result;
  result.raw_bytes = raw.size();
  const std::size_t start = out.size();

  // Candidate payloads are built in scratch buffers and the smallest one
  // that beats the stored threshold wins.
  const auto budget = static_cast<std::size_t>(
      static_cast<double>(raw.size()) * options.max_wire_fraction);

  std::vector<std::byte> kv;   // KV transform (maybe +LZ) payload
  FrameCodec kv_codec = FrameCodec::kStored;
  if (kind != FrameKind::kOpaque && !raw.empty()) {
    std::vector<RawGroup> groups;
    const bool list = kind == FrameKind::kKvList;
    const bool parsed =
        list ? parse_kvlist(raw, groups) : parse_kvpair(raw, groups);
    if (parsed) {
      kv_transform(groups, list, kv);
      kv_codec = list ? FrameCodec::kKvList : FrameCodec::kKvPair;
      if (options.enable_lz && kv.size() > kLzMinMatch) {
        std::vector<std::byte> lzd;
        lz_compress(kv, lzd);
        if (lzd.size() < kv.size()) {
          kv = std::move(lzd);
          kv_codec = list ? FrameCodec::kKvListLz : FrameCodec::kKvPairLz;
        }
      }
    }
  }

  std::vector<std::byte> lz;  // raw-bytes LZ fallback payload
  const bool try_lz =
      options.enable_lz && raw.size() > kLzMinMatch &&
      (kv_codec == FrameCodec::kStored || kv.size() > budget);
  if (try_lz) lz_compress(raw, lz);

  // Pick the smallest candidate under the stored threshold.
  const std::byte* payload = nullptr;
  std::size_t payload_len = 0;
  if (kv_codec != FrameCodec::kStored && kv.size() <= budget &&
      (lz.empty() || kv.size() <= lz.size())) {
    result.codec = kv_codec;
    payload = kv.data();
    payload_len = kv.size();
  } else if (try_lz && lz.size() <= budget) {
    result.codec = FrameCodec::kLz;
    payload = lz.data();
    payload_len = lz.size();
  } else {
    result.codec = FrameCodec::kStored;
    payload = raw.data();
    payload_len = raw.size();
  }

  put_header(out, result.codec, raw.size());
  if (payload_len != 0) out.insert(out.end(), payload, payload + payload_len);
  result.wire_bytes = out.size() - start;
  return result;
}

EncodeResult store_frame(std::span<const std::byte> raw,
                         std::vector<std::byte>& out) {
  EncodeResult result;
  result.codec = FrameCodec::kStored;
  result.raw_bytes = raw.size();
  const std::size_t start = out.size();
  put_header(out, FrameCodec::kStored, raw.size());
  out.insert(out.end(), raw.begin(), raw.end());
  result.wire_bytes = out.size() - start;
  return result;
}

FrameCodec decode_frame(std::span<const std::byte> wire,
                        std::vector<std::byte>& out) {
  out.clear();
  if (wire.empty()) throw std::runtime_error("codec: empty wire frame");
  const auto id = static_cast<std::uint8_t>(wire[0]);
  if (id > static_cast<std::uint8_t>(FrameCodec::kKvPairLz))
    throw std::runtime_error("codec: unknown codec id");
  const auto codec = static_cast<FrameCodec>(id);
  std::size_t pos = 1;
  const auto raw_len64 = get_varint(wire, pos);
  // Cap the declared size at something a frame could plausibly be, so a
  // corrupt length can't drive a giant allocation (frames are ~256 KiB;
  // 1 GiB leaves room for any configured frame size).
  if (raw_len64 > (std::uint64_t{1} << 30))
    throw std::runtime_error("codec: declared frame size too large");
  const auto raw_len = static_cast<std::size_t>(raw_len64);
  const auto payload = wire.subspan(pos);
  out.reserve(raw_len);

  switch (codec) {
    case FrameCodec::kStored:
      if (payload.size() != raw_len)
        throw std::runtime_error("codec: stored payload size mismatch");
      out.insert(out.end(), payload.begin(), payload.end());
      break;
    case FrameCodec::kKvList:
      kv_untransform(payload, /*list_counts=*/true, raw_len, out);
      break;
    case FrameCodec::kKvPair:
      kv_untransform(payload, /*list_counts=*/false, raw_len, out);
      break;
    case FrameCodec::kLz:
      lz_decompress(payload, raw_len, out);
      break;
    case FrameCodec::kKvListLz:
    case FrameCodec::kKvPairLz: {
      std::vector<std::byte> transformed;
      // The transformed stream is itself bounded by the raw size plus the
      // per-group token overhead; 2x raw is a safe hostile-input cap.
      lz_decompress(payload, 2 * raw_len + 64, transformed);
      kv_untransform(transformed, codec == FrameCodec::kKvListLz, raw_len, out);
      break;
    }
  }
  if (out.size() != raw_len)
    throw std::runtime_error("codec: decoded size mismatch");
  return codec;
}

std::optional<FrameCodec> peek_codec(
    std::span<const std::byte> wire) noexcept {
  if (wire.empty()) return std::nullopt;
  const auto id = static_cast<std::uint8_t>(wire[0]);
  if (id > static_cast<std::uint8_t>(FrameCodec::kKvPairLz)) return std::nullopt;
  return static_cast<FrameCodec>(id);
}

}  // namespace mpid::common
