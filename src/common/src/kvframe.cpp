#include "mpid/common/kvframe.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace mpid::common {

namespace {

void put_bytes(std::vector<std::byte>& out, std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

std::string_view view_bytes(std::span<const std::byte> buf, std::size_t offset,
                            std::size_t len) {
  return {reinterpret_cast<const char*>(buf.data()) + offset, len};
}

[[noreturn]] void corrupt() { throw std::runtime_error("kvframe: corrupt frame"); }

/// Reads a varint that must fit and a byte range of that length.
std::string_view read_sized(std::span<const std::byte> buf, std::size_t& offset) {
  const auto len = get_varint(buf, offset);
  if (!len || *len > buf.size() - offset) corrupt();
  const auto view = view_bytes(buf, offset, static_cast<std::size_t>(*len));
  offset += static_cast<std::size_t>(*len);
  return view;
}

}  // namespace

void put_varint(std::vector<std::byte>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::optional<std::uint64_t> get_varint(std::span<const std::byte> buf,
                                        std::size_t& offset) {
  std::uint64_t value = 0;
  int shift = 0;
  std::size_t pos = offset;
  while (pos < buf.size() && shift < 64) {
    const auto b = static_cast<std::uint8_t>(buf[pos++]);
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      offset = pos;
      return value;
    }
    shift += 7;
  }
  return std::nullopt;
}

void KvWriter::append(std::string_view key, std::string_view value) {
  put_varint(buf_, key.size());
  put_varint(buf_, value.size());
  put_bytes(buf_, key);
  put_bytes(buf_, value);
  ++pairs_;
}

std::vector<std::byte> KvWriter::take() noexcept {
  pairs_ = 0;
  return std::move(buf_);
}

void KvWriter::clear() noexcept {
  buf_.clear();
  pairs_ = 0;
}

void KvWriter::reset(std::vector<std::byte>&& recycled) noexcept {
  buf_ = std::move(recycled);
  buf_.clear();
  pairs_ = 0;
}

std::optional<KvView> KvReader::next() {
  if (offset_ == buf_.size()) return std::nullopt;
  const auto klen = get_varint(buf_, offset_);
  const auto vlen = get_varint(buf_, offset_);
  if (!klen || !vlen) corrupt();
  if (*klen + *vlen > buf_.size() - offset_) corrupt();
  KvView view;
  view.key = view_bytes(buf_, offset_, static_cast<std::size_t>(*klen));
  offset_ += static_cast<std::size_t>(*klen);
  view.value = view_bytes(buf_, offset_, static_cast<std::size_t>(*vlen));
  offset_ += static_cast<std::size_t>(*vlen);
  return view;
}

void KvListWriter::begin_group(std::string_view key, std::size_t value_count) {
  if (pending_values_ != 0) {
    throw std::logic_error("KvListWriter: previous group not complete");
  }
  put_varint(buf_, key.size());
  put_bytes(buf_, key);
  put_varint(buf_, value_count);
  pending_values_ = value_count;
  ++groups_;
}

void KvListWriter::add_value(std::string_view value) {
  if (pending_values_ == 0) {
    throw std::logic_error("KvListWriter: add_value without open group");
  }
  put_varint(buf_, value.size());
  put_bytes(buf_, value);
  --pending_values_;
}

void KvListWriter::add_encoded_values(std::span<const std::byte> encoded,
                                      std::size_t value_count) {
  if (pending_values_ == 0) {
    throw std::logic_error(
        "KvListWriter: add_encoded_values without open group");
  }
  if (value_count > pending_values_) {
    throw std::logic_error("KvListWriter: add_encoded_values over-settles");
  }
  buf_.insert(buf_.end(), encoded.begin(), encoded.end());
  pending_values_ -= value_count;
}

std::vector<std::byte> KvListWriter::take() noexcept {
  groups_ = 0;
  pending_values_ = 0;
  return std::move(buf_);
}

void KvListWriter::clear() noexcept {
  buf_.clear();
  groups_ = 0;
  pending_values_ = 0;
}

void KvListWriter::reset(std::vector<std::byte>&& recycled) noexcept {
  buf_ = std::move(recycled);
  buf_.clear();
  groups_ = 0;
  pending_values_ = 0;
}

std::optional<KvListView> KvListReader::next() {
  if (offset_ == buf_.size()) return std::nullopt;
  KvListView view;
  view.key = read_sized(buf_, offset_);
  const auto count = get_varint(buf_, offset_);
  if (!count) corrupt();
  // Every value costs at least one length byte, so a count beyond the
  // remaining bytes is corrupt — check BEFORE reserving, or a hostile
  // count drives reserve() into bad_alloc.
  if (*count > buf_.size() - offset_) corrupt();
  view.values.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    view.values.push_back(read_sized(buf_, offset_));
  }
  return view;
}

}  // namespace mpid::common
