#include "mpid/common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace mpid::common {

namespace {

std::string format_scaled(double value, double scale,
                          std::array<const char*, 5> suffixes) {
  std::size_t idx = 0;
  while (value >= scale && idx + 1 < suffixes.size()) {
    value /= scale;
    ++idx;
  }
  char buf[48];
  if (idx == 0 && std::floor(value) == value) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, suffixes[idx]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, suffixes[idx]);
  }
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  return format_scaled(static_cast<double>(bytes), 1024.0,
                       {"B", "KiB", "MiB", "GiB", "TiB"});
}

std::string format_duration_ns(std::int64_t ns) {
  const bool neg = ns < 0;
  auto s = format_scaled(static_cast<double>(neg ? -ns : ns), 1000.0,
                         {"ns", "us", "ms", "s", "ks"});
  return neg ? "-" + s : s;
}

double bytes_per_second(std::uint64_t bytes, std::int64_t elapsed_ns) {
  if (elapsed_ns <= 0) return 0.0;
  return static_cast<double>(bytes) * 1e9 / static_cast<double>(elapsed_ns);
}

}  // namespace mpid::common
