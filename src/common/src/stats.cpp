#include "mpid/common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mpid::common {

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::sum() const noexcept {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleSet::mean() const noexcept {
  return samples_.empty() ? 0.0
                          : sum() / static_cast<double>(samples_.size());
}

double SampleSet::min() const noexcept {
  return samples_.empty()
             ? 0.0
             : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const noexcept {
  return samples_.empty()
             ? 0.0
             : *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) throw std::domain_error("percentile of empty set");
  if (p < 0.0 || p > 100.0) throw std::out_of_range("percentile p not in [0,100]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto n = samples_.size();
  // Nearest-rank: smallest index i with (i+1)/n >= p/100.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return samples_[rank == 0 ? 0 : rank - 1];
}

void Log2Histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket =
      value < 2 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  ++buckets_[bucket];
  ++total_;
}

std::uint64_t Log2Histogram::bucket_count(std::size_t bucket) const noexcept {
  return bucket < kBuckets ? buckets_[bucket] : 0;
}

}  // namespace mpid::common
