#include "mpid/common/table.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mpid::common {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    throw std::runtime_error("strformat: bad format");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace mpid::common
