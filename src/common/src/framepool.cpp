#include "mpid/common/framepool.hpp"

namespace mpid::common {

std::vector<std::byte> FramePool::acquire(std::size_t capacity_hint) {
  std::vector<std::byte> buf;
  {
    std::lock_guard lock(mu_);
    ++counters_.acquires;
    if (!free_.empty()) {
      ++counters_.hits;
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  buf.clear();
  if (buf.capacity() < capacity_hint) buf.reserve(capacity_hint);
  return buf;
}

void FramePool::release(std::vector<std::byte>&& buf) noexcept {
  std::unique_lock lock(mu_);
  ++counters_.releases;
  if (buf.capacity() == 0 || buf.capacity() > max_buffer_bytes_ ||
      free_.size() >= max_buffers_) {
    ++counters_.drops;
    lock.unlock();  // free the jumbo allocation outside the lock
    return;
  }
  buf.clear();
  free_.push_back(std::move(buf));
}

std::size_t FramePool::cached() const {
  std::lock_guard lock(mu_);
  return free_.size();
}

FramePool::Counters FramePool::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

const std::shared_ptr<FramePool>& FramePool::process_pool() {
  static const std::shared_ptr<FramePool> pool =
      std::make_shared<FramePool>();
  return pool;
}

}  // namespace mpid::common
