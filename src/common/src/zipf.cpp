#include "mpid/common/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace mpid::common {

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n < 1) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (!(s > 0.0)) throw std::invalid_argument("ZipfSampler: s must be > 0");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  cut_ = 1.0 - h_inverse(h(1.5) - std::pow(1.0, -s));
}

double ZipfSampler::h(double x) const {
  // h(x) = integral of x^-s: (x^(1-s) - 1)/(1-s), or log(x) when s == 1.
  const double one_minus_s = 1.0 - s_;
  if (std::abs(one_minus_s) < 1e-12) return std::log(x);
  return (std::pow(x, one_minus_s) - 1.0) / one_minus_s;
}

double ZipfSampler::h_inverse(double x) const {
  const double one_minus_s = 1.0 - s_;
  if (std::abs(one_minus_s) < 1e-12) return std::exp(x);
  return std::pow(1.0 + one_minus_s * x, 1.0 / one_minus_s);
}

std::uint64_t ZipfSampler::operator()(Xoshiro256StarStar& rng) const {
  if (n_ == 1) return 1;
  // Rejection-inversion over the hat function h.
  for (;;) {
    const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= cut_) return k;
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

}  // namespace mpid::common
