#include "mpid/common/kvtable.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "mpid/common/hash.hpp"
#include "mpid/common/kvframe.hpp"

namespace mpid::common {

namespace {

constexpr std::uint32_t kNoEntry = std::numeric_limits<std::uint32_t>::max();

/// Per-entry bookkeeping charged against the spill threshold on top of the
/// raw key/value bytes: the Entry record plus roughly one slot.
constexpr std::size_t kEntryOverhead = sizeof(std::uint64_t) * 8;

std::size_t varint_len(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Encodes a LEB128 varint at `out`; returns the bytes written. The caller
/// guarantees capacity (10 bytes suffice for any u64).
std::size_t encode_varint(std::byte* out, std::uint64_t v) noexcept {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::byte>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  out[n++] = static_cast<std::byte>(v);
  return n;
}

}  // namespace

// ------------------------------------------------------------- BumpArena --

std::byte* BumpArena::allocate(std::size_t n, std::size_t align) {
  for (;;) {
    if (current_ < chunks_.size()) {
      auto& chunk = chunks_[current_];
      const std::size_t aligned =
          (offset_ + align - 1) & ~(align - 1);
      if (aligned + n <= chunk.size) {
        offset_ = aligned + n;
        used_ += n;
        return chunk.mem.get() + aligned;
      }
      // This chunk is spent (or too small for an oversize request after a
      // recycle); move on. The skipped tail is reclaimed at the next
      // recycle, not leaked.
      ++current_;
      offset_ = 0;
      continue;
    }
    const std::size_t size = std::max(chunk_bytes_, n + align);
    chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
  }
}

// ------------------------------------------------------- KvCombineTable --

KvCombineTable::KvCombineTable(Options options)
    : options_(options),
      key_arena_(options.key_arena_chunk_bytes),
      slab_arena_(options.slab_chunk_bytes) {
  const std::size_t slots =
      std::bit_ceil(std::max<std::size_t>(options_.initial_slots, 8));
  slots_.assign(slots, 0);
  slot_mask_ = slots - 1;
}

std::uint32_t KvCombineTable::probe(std::string_view key, std::uint64_t hash,
                                    std::size_t& slot) const noexcept {
  const std::uint8_t fp = fingerprint(hash);
  std::size_t i = static_cast<std::size_t>(hash) & slot_mask_;
  for (;;) {
    const std::uint32_t s = slots_[i];
    if (s == 0) {
      slot = i;
      return kNoEntry;
    }
    if (slot_fp(s) == fp) {
      const std::uint32_t e = slot_entry(s);
      const Entry& entry = entries_[e];
      // The cached full hash screens out fingerprint collisions before
      // the memcmp touches the interned key's cache line.
      if (entry.hash == hash && entry.key_len == key.size() &&
          std::memcmp(entry.key, key.data(), key.size()) == 0) {
        slot = i;
        return e;
      }
    }
    i = (i + 1) & slot_mask_;
  }
}

void KvCombineTable::grow() {
  const std::size_t slots = (slot_mask_ + 1) * 2;
  slots_.assign(slots, 0);
  slot_mask_ = slots - 1;
  for (std::uint32_t e = 0; e < entries_.size(); ++e) {
    const std::uint64_t hash = entries_[e].hash;
    std::size_t i = static_cast<std::size_t>(hash) & slot_mask_;
    while (slots_[i] != 0) i = (i + 1) & slot_mask_;
    slots_[i] = pack_slot(e, fingerprint(hash));
  }
  ++counters_.rehashes;
}

KvCombineTable::Block* KvCombineTable::allocate_block(
    std::size_t min_payload, std::size_t target_payload) {
  const std::size_t want = std::max(
      min_payload, std::min(target_payload, options_.value_block_bytes));
  if (free_blocks_ != nullptr && free_blocks_->cap >= want) {
    Block* b = free_blocks_;
    free_blocks_ = b->next;
    b->next = nullptr;
    b->used = 0;
    ++counters_.block_reuses;
    return b;
  }
  auto* mem = slab_arena_.allocate(sizeof(Block) + want, alignof(Block));
  auto* b = new (mem) Block;
  b->cap = static_cast<std::uint32_t>(want);
  return b;
}

void KvCombineTable::release_chain(Entry& e) noexcept {
  // Prepend the whole chain to the free list, preserving relative order.
  if (e.head == nullptr) return;
  e.tail->next = free_blocks_;
  free_blocks_ = e.head;
  e.head = nullptr;
  e.tail = nullptr;
}

void KvCombineTable::append_encoded(Entry& e, std::string_view value) {
  const std::size_t need = varint_len(value.size()) + value.size();
  Block* tail = e.tail;
  if (tail == nullptr || tail->cap - tail->used < need) {
    // Chains grow geometrically: a first block sized for a handful of
    // short values, doubling toward the cap as the chain proves hot.
    const std::size_t target =
        tail == nullptr ? options_.value_block_first_bytes
                        : static_cast<std::size_t>(tail->cap) * 2;
    Block* b = allocate_block(need, target);
    if (tail == nullptr) {
      e.head = b;
    } else {
      tail->next = b;
    }
    e.tail = b;
    tail = b;
  }
  std::byte* out = payload(tail) + tail->used;
  std::size_t n = encode_varint(out, value.size());
  std::memcpy(out + n, value.data(), value.size());
  tail->used += static_cast<std::uint32_t>(need);
  ++e.value_count;
  e.encoded_bytes += need;
  bytes_used_ += need;
}

std::size_t KvCombineTable::group_frame_bytes(const Entry& e) noexcept {
  return varint_len(e.key_len) + e.key_len + varint_len(e.value_count) +
         e.encoded_bytes;
}

std::size_t KvCombineTable::append(std::string_view key,
                                   std::string_view value) {
  // Grow at 3/4 occupancy, before the probe, so the insert slot is valid
  // and probe runs stay short.
  if ((entries_.size() + 1) * 4 > (slot_mask_ + 1) * 3) grow();
  const std::uint64_t hash = fnv1a64(key);
  std::size_t slot = 0;
  std::uint32_t e = probe(key, hash, slot);
  if (e == kNoEntry) {
    e = static_cast<std::uint32_t>(entries_.size());
    if (e >= (1u << 24)) {
      // The packed slot word carries a 24-bit entry index; a combine
      // buffer approaching 16M distinct keys has long overshot any sane
      // spill threshold.
      throw std::length_error("KvCombineTable: entry limit exceeded");
    }
    Entry entry;
    auto* interned = key_arena_.allocate(std::max<std::size_t>(key.size(), 1),
                                         alignof(char));
    std::memcpy(interned, key.data(), key.size());
    entry.key = reinterpret_cast<const char*>(interned);
    entry.key_len = static_cast<std::uint32_t>(key.size());
    entry.hash = hash;
    entries_.push_back(entry);
    slots_[slot] = pack_slot(e, fingerprint(hash));
    bytes_used_ += key.size() + kEntryOverhead;
  }
  Entry& entry = entries_[e];
  append_encoded(entry, value);
  bytes_peak_ = std::max(bytes_peak_, bytes_used_);
  last_index_ = e;
  return entry.value_count;
}

std::size_t KvCombineTable::max_entry_frame_bytes() const noexcept {
  std::size_t max_bytes = 0;
  for (const auto& e : entries_) {
    max_bytes = std::max(max_bytes, group_frame_bytes(e));
  }
  return max_bytes;
}

std::optional<std::string_view> KvCombineTable::ValueCursor::next() {
  if (remaining_ == 0) return std::nullopt;
  const auto* b = reinterpret_cast<const Block*>(block_);
  if (offset_ == b->used) {
    b = b->next;
    block_ = reinterpret_cast<const std::byte*>(b);
    offset_ = 0;
  }
  // Tight LEB128 decode: the table wrote this encoding itself, so the
  // bounds-checked get_varint path is unnecessary on the read side. The
  // common case (length < 128) never enters the loop.
  const std::byte* base = payload(b);
  const std::byte* p = base + offset_;
  std::uint64_t len = static_cast<std::uint8_t>(*p++);
  if (len >= 0x80) {
    len &= 0x7f;
    int shift = 7;
    for (;;) {
      const std::uint64_t byte = static_cast<std::uint8_t>(*p++);
      len |= (byte & 0x7f) << shift;
      if (byte < 0x80) break;
      shift += 7;
    }
  }
  const auto* begin = reinterpret_cast<const char*>(p);
  offset_ = static_cast<std::size_t>(p - base) + static_cast<std::size_t>(len);
  --remaining_;
  return std::string_view(begin, static_cast<std::size_t>(len));
}

void KvCombineTable::ValueCursor::drain_to(KvListWriter& out) {
  const auto* b = reinterpret_cast<const Block*>(block_);
  std::size_t off = offset_;
  while (remaining_ > 0) {
    if (off == b->used) {
      b = b->next;
      off = 0;
      continue;
    }
    const bool last = b->next == nullptr;
    out.add_encoded_values(
        std::span(payload(b) + off, b->used - off),
        last ? remaining_ : 0);
    if (last) {
      remaining_ = 0;
      off = b->used;
      break;
    }
    b = b->next;
    off = 0;
  }
  block_ = reinterpret_cast<const std::byte*>(b);
  offset_ = off;
}

KvCombineTable::EntryView KvCombineTable::view_of(
    std::uint32_t index) const noexcept {
  const Entry& e = entries_[index];
  EntryView view;
  view.key = std::string_view(e.key, e.key_len);
  view.key_hash = e.hash;
  view.value_count = e.value_count;
  view.frame_bytes = group_frame_bytes(e);
  view.values.block_ = reinterpret_cast<const std::byte*>(e.head);
  view.values.offset_ = 0;
  view.values.remaining_ = e.value_count;
  return view;
}

std::optional<KvCombineTable::EntryView> KvCombineTable::find(
    std::string_view key) const {
  std::size_t slot = 0;
  const std::uint32_t e = probe(key, fnv1a64(key), slot);
  if (e == kNoEntry) return std::nullopt;
  return view_of(e);
}

bool KvCombineTable::collect(std::string_view key,
                             std::vector<std::string>& out) const {
  auto entry = find(key);
  if (!entry) return false;
  while (auto v = entry->values.next()) out.emplace_back(*v);
  return true;
}

void KvCombineTable::replace(std::string_view key,
                             std::span<const std::string> values) {
  std::size_t slot = 0;
  const std::uint32_t idx = probe(key, fnv1a64(key), slot);
  if (idx == kNoEntry) {
    throw std::logic_error("KvCombineTable: replace of an absent key");
  }
  replace_at(idx, values);
}

void KvCombineTable::replace_at(std::uint32_t index,
                                std::span<const std::string> values) {
  Entry& e = entries_[index];
  release_chain(e);
  bytes_used_ -= e.encoded_bytes;
  e.encoded_bytes = 0;
  e.value_count = 0;
  for (const auto& v : values) append_encoded(e, v);
  bytes_peak_ = std::max(bytes_peak_, bytes_used_);
}

void KvCombineTable::sort_by_key(std::vector<std::uint32_t>& order) const {
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return std::string_view(entries_[a].key, entries_[a].key_len) <
                     std::string_view(entries_[b].key, entries_[b].key_len);
            });
}

void KvCombineTable::recycle() noexcept {
  entries_.clear();
  std::fill(slots_.begin(), slots_.end(), 0);
  key_arena_.recycle();
  slab_arena_.recycle();
  free_blocks_ = nullptr;  // block memory lives in the slab arena
  bytes_used_ = 0;
  ++counters_.recycles;
}

}  // namespace mpid::common
