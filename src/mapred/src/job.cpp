#include "mpid/mapred/job.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "mpid/core/merge.hpp"
#include "mpid/core/mpid.hpp"
#include "mpid/fault/fault.hpp"
#include "mpid/minimpi/world.hpp"

namespace mpid::mapred {

namespace {

/// Safety cap on task re-executions. Injected crashes self-bound through
/// FaultPlan::max_injected_attempts; this guards against a plan scripted
/// to kill every attempt.
constexpr int kMaxTaskAttempts = 16;

}  // namespace

JobRunner::JobRunner(int mappers, int reducers)
    : mappers_(mappers), reducers_(reducers) {
  if (mappers < 1 || reducers < 1) {
    throw std::invalid_argument("JobRunner: need >= 1 mapper and reducer");
  }
}

JobResult JobRunner::run(const JobDef& job,
                         std::vector<RecordSource> inputs) const {
  if (!job.map || !job.reduce) {
    throw std::invalid_argument("JobRunner: map and reduce must be set");
  }
  if (inputs.size() != static_cast<std::size_t>(mappers_)) {
    throw std::invalid_argument("JobRunner: need one input per mapper");
  }

  core::Config config = job.tuning;
  config.mappers = mappers_;
  config.reducers = reducers_;
  config.combiner = job.combiner;
  // Streaming merge needs every shipped frame to be one sorted run.
  if (job.streaming_merge_reduce) config.sort_keys = true;

  JobResult result;
  std::mutex result_mu;

  // Coded shuffle: every rank that replicates a map task must be able to
  // re-read its split — the task's own mapper maps r sub-splits, and the
  // home-group reducers replay r-1 of them as side information. Record
  // sources are single-pass cursors, so materialize all splits up front
  // (Hadoop's durable-split-in-DFS assumption, same as the fault path).
  const bool coded = config.coded_replication > 1;
  std::vector<std::vector<std::string>> splits;
  if (coded) {
    splits.resize(inputs.size());
    for (std::size_t m = 0; m < inputs.size(); ++m) {
      auto& source = inputs[m];
      while (auto record = source()) splits[m].push_back(std::move(*record));
    }
  }
  // Replays task `task`'s sub-split `sub` through `emit` — the shared
  // deterministic body of the mapper's primary run and the reducers'
  // replica runs. The context reports the PRIMARY mapper's index, so
  // index-dependent map functions agree across replicas.
  const auto map_sub_split = [&](int task, int sub,
                                 const core::MpiD::CodedEmitFn& emit) {
    MapContext ctx(
        [&emit](std::string_view k, std::string_view v) { emit(k, v); },
        task);
    const auto& split = splits[static_cast<std::size_t>(task)];
    const auto r = config.coded_replication;
    const std::size_t lo = static_cast<std::size_t>(sub) * split.size() / r;
    const std::size_t hi =
        (static_cast<std::size_t>(sub) + 1) * split.size() / r;
    for (std::size_t i = lo; i < hi; ++i) job.map(split[i], ctx);
  };

  minimpi::run_world(config.world_size(), [&](minimpi::Comm& comm) {
    core::MpiD mpid(comm, config);
    switch (mpid.role()) {
      case core::Role::kMapper: {
        const int mapper = mpid.mapper_index();
        fault::FaultInjector* inj =
            config.resilient_shuffle ? config.fault_injector.get() : nullptr;
        if (coded) {
          const auto& split = splits[static_cast<std::size_t>(mapper)];
          const auto r = config.coded_replication;
          for (int safety = 0;; ++safety) {
            try {
              std::optional<std::uint64_t> crash_at;
              if (inj) {
                crash_at = inj->crash_tick(fault::TaskKind::kMap, mapper,
                                           mpid.attempt());
                const auto lag = inj->straggle_delay(fault::TaskKind::kMap,
                                                     mapper, mpid.attempt());
                if (lag.count() > 0) std::this_thread::sleep_for(lag);
              }
              // Ticks count records across all r sub-pipelines (they may
              // run on the worker pool), so a scripted crash fires at the
              // same overall progress point regardless of map_threads.
              std::atomic<std::uint64_t> ticks{0};
              mpid.run_map_coded([&](int sub,
                                     const core::MpiD::CodedEmitFn& emit) {
                MapContext ctx(
                    [&emit](std::string_view k, std::string_view v) {
                      emit(k, v);
                    },
                    mapper);
                const std::size_t lo =
                    static_cast<std::size_t>(sub) * split.size() / r;
                const std::size_t hi =
                    (static_cast<std::size_t>(sub) + 1) * split.size() / r;
                for (std::size_t i = lo; i < hi; ++i) {
                  if (crash_at && ticks.fetch_add(1) + 1 >= *crash_at) {
                    inj->note(fault::Kind::kTaskCrash,
                              "map:" + std::to_string(mapper) + "#" +
                                  std::to_string(mpid.attempt()));
                    throw fault::TaskCrash(fault::TaskKind::kMap, mapper,
                                           mpid.attempt());
                  }
                  job.map(split[i], ctx);
                }
              });
              mpid.finalize();
              break;
            } catch (const fault::TaskCrash&) {
              if (!inj || safety >= kMaxTaskAttempts) throw;
              // Nothing left the rank yet (the coded matrix ships in
              // finalize), so restart just discards the staged streams.
              mpid.restart_mapper();
            }
          }
          break;
        }
        auto& source = inputs[static_cast<std::size_t>(mapper)];
        MapContext ctx(
            [&](std::string_view k, std::string_view v) { mpid.send(k, v); },
            mapper);
        if (!inj) {
          if (config.map_threads > 1) {
            // Hybrid process+threads path: materialize the split so its
            // chunks are random-access, then run them through the rank's
            // worker pool. The chunk count comes from the options (never
            // from the thread count), so the shipped bytes are identical
            // at every map_threads setting.
            std::vector<std::string> split;
            while (auto record = source()) split.push_back(std::move(*record));
            const std::size_t chunks =
                shuffle::resolve_map_chunks(config, split.size());
            mpid.run_map_parallel(
                chunks, [&](std::size_t chunk,
                            const shuffle::ParallelMapper::EmitFn& emit) {
                  MapContext chunk_ctx(
                      [&emit](std::string_view k, std::string_view v) {
                        emit(k, v);
                      },
                      mapper);
                  const std::size_t lo = chunk * split.size() / chunks;
                  const std::size_t hi = (chunk + 1) * split.size() / chunks;
                  for (std::size_t i = lo; i < hi; ++i) {
                    job.map(split[i], chunk_ctx);
                  }
                });
            mpid.finalize();
            break;
          }
          // No injected crashes possible: stream the split straight
          // through (records never materialize).
          while (auto record = source()) job.map(*record, ctx);
          mpid.finalize();
          break;
        }
        // Fault injection armed: materialize the split once so a crashed
        // attempt can re-read it from the start (Hadoop re-executes a
        // failed map against its durable split in DFS; RecordSource
        // cursors are single-pass).
        std::vector<std::string> split;
        while (auto record = source()) split.push_back(std::move(*record));
        for (int safety = 0;; ++safety) {
          try {
            const auto crash_at = inj->crash_tick(fault::TaskKind::kMap,
                                                  mapper, mpid.attempt());
            const auto lag = inj->straggle_delay(fault::TaskKind::kMap,
                                                 mapper, mpid.attempt());
            if (lag.count() > 0) std::this_thread::sleep_for(lag);
            std::uint64_t ticks = 0;
            for (const auto& record : split) {
              if (crash_at && ++ticks >= *crash_at) {
                inj->note(fault::Kind::kTaskCrash,
                          "map:" + std::to_string(mapper) + "#" +
                              std::to_string(mpid.attempt()));
                throw fault::TaskCrash(fault::TaskKind::kMap, mapper,
                                       mpid.attempt());
              }
              job.map(record, ctx);
            }
            mpid.finalize();
            break;
          } catch (const fault::TaskCrash&) {
            if (safety >= kMaxTaskAttempts) throw;
            mpid.restart_mapper();
          }
        }
        break;
      }
      case core::Role::kReducer: {
        fault::FaultInjector* inj =
            config.resilient_shuffle ? config.fault_injector.get() : nullptr;
        if (inj) {
          const auto lag = inj->straggle_delay(
              fault::TaskKind::kReduce, mpid.reducer_index(), mpid.attempt());
          if (lag.count() > 0) std::this_thread::sleep_for(lag);
        }
        if (coded) {
          // The redundant map pass runs once, before any recv: its side
          // terms decode every coded payload (and survive reducer
          // restarts — the replay is deterministic).
          mpid.run_reduce_side_map(map_sub_split);
        }
        if (job.streaming_merge_reduce) {
          // Hadoop's merge phase: collect the key-sorted frames, then
          // stream globally ordered groups straight into reduce(). With
          // reduce_threads > 1 the frames are collected undecoded and
          // prepare() fans the codec decode + a cursor pre-merge across
          // the rank's worker pool.
          // A bounded memory budget forces the sequential collect path:
          // the threaded path batches every wire frame in memory before
          // prepare(), which is exactly the footprint the budget exists to
          // cap. Sequential add_frame() charges the budget per frame and
          // spills sorted runs to disk when refused (DESIGN.md §13).
          const bool budgeted = config.memory_budget_bytes > 0;
          const bool threaded = config.reduce_threads > 1 && !inj && !budgeted;
          core::SortedFrameMerger merger;
          shuffle::ShuffleCounters spill_counters;
          if (budgeted) {
            merger.enable_spill(config, mpid.memory_budget(), &spill_counters);
          }
          for (int safety = 0;; ++safety) {
            try {
              std::vector<std::byte> frame;
              if (threaded) {
                bool codec_framed = false;
                while (mpid.recv_wire_frame(frame, codec_framed)) {
                  merger.add_wire_frame(std::move(frame), codec_framed);
                }
              } else {
                while (mpid.recv_raw_frame(frame)) {
                  merger.add_frame(std::move(frame));
                }
              }
              break;
            } catch (const fault::TaskCrash&) {
              // Injected crash mid-shuffle: discard everything collected
              // and re-pull the retained mapper lanes.
              if (safety >= kMaxTaskAttempts) throw;
              mpid.restart_reducer();
              // The dead attempt's merger drops its disk runs via SpillFile
              // RAII; the fresh one must re-arm the disk tier before the
              // re-pulled frames arrive.
              merger = core::SortedFrameMerger{};
              if (budgeted) {
                merger.enable_spill(config, mpid.memory_budget(),
                                    &spill_counters);
              }
            }
          }
          if (threaded) {
            shuffle::ShuffleCounters decode_counters;
            merger.prepare(mpid.worker_pool(), config.partition_frame_bytes,
                           &decode_counters);
            mpid.fold_counters(decode_counters);
          }
          if (budgeted) {
            // Compact now so the spill counters are final, then ship them:
            // finalize() sends this rank's stats to the master before the
            // reduce loop streams a single group.
            merger.finish_spill_phase();
            mpid.fold_counters(spill_counters);
          }
          mpid.finalize();

          ReduceContext ctx(mpid.reducer_index());
          std::string key;
          std::vector<std::string> values;
          while (merger.next_group(key, values)) {
            job.reduce(key, values, ctx);
          }
          std::lock_guard lock(result_mu);
          std::move(ctx.outputs_.begin(), ctx.outputs_.end(),
                    std::back_inserter(result.outputs));
          break;
        }

        // Global grouping: MPI-D streams per-mapper segments; fold them
        // into one value list per key before invoking the user reduce.
        std::unordered_map<std::string, std::vector<std::string>> groups;
        for (int safety = 0;; ++safety) {
          try {
            std::string key;
            std::vector<std::string> values;
            while (mpid.recv_group(key, values)) {
              auto& list = groups[key];
              std::move(values.begin(), values.end(),
                        std::back_inserter(list));
              values.clear();
            }
            break;
          } catch (const fault::TaskCrash&) {
            if (safety >= kMaxTaskAttempts) throw;
            mpid.restart_reducer();
            groups.clear();
          }
        }
        mpid.finalize();

        ReduceContext ctx(mpid.reducer_index());
        if (job.sorted_reduce) {
          std::vector<const std::string*> keys;
          keys.reserve(groups.size());
          for (const auto& [k, vs] : groups) keys.push_back(&k);
          std::sort(keys.begin(), keys.end(),
                    [](const auto* a, const auto* b) { return *a < *b; });
          for (const auto* k : keys) {
            job.reduce(*k, groups.at(*k), ctx);
          }
        } else {
          for (const auto& [k, vs] : groups) job.reduce(k, vs, ctx);
        }

        std::lock_guard lock(result_mu);
        std::move(ctx.outputs_.begin(), ctx.outputs_.end(),
                  std::back_inserter(result.outputs));
        break;
      }
      case core::Role::kMaster: {
        mpid.finalize();
        std::lock_guard lock(result_mu);
        result.report = mpid.report();
        break;
      }
    }
  });

  std::sort(result.outputs.begin(), result.outputs.end());
  return result;
}

JobResult JobRunner::run_on_text(const JobDef& job,
                                 std::string_view text) const {
  const auto chunks = split_text(text, mappers_);
  std::vector<RecordSource> inputs;
  inputs.reserve(chunks.size());
  for (const auto chunk : chunks) inputs.push_back(line_source(chunk));
  return run(job, std::move(inputs));
}

}  // namespace mpid::mapred
