#include "mpid/mapred/job.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "mpid/core/merge.hpp"
#include "mpid/core/mpid.hpp"
#include "mpid/minimpi/world.hpp"

namespace mpid::mapred {

JobRunner::JobRunner(int mappers, int reducers)
    : mappers_(mappers), reducers_(reducers) {
  if (mappers < 1 || reducers < 1) {
    throw std::invalid_argument("JobRunner: need >= 1 mapper and reducer");
  }
}

JobResult JobRunner::run(const JobDef& job,
                         std::vector<RecordSource> inputs) const {
  if (!job.map || !job.reduce) {
    throw std::invalid_argument("JobRunner: map and reduce must be set");
  }
  if (inputs.size() != static_cast<std::size_t>(mappers_)) {
    throw std::invalid_argument("JobRunner: need one input per mapper");
  }

  core::Config config = job.tuning;
  config.mappers = mappers_;
  config.reducers = reducers_;
  config.combiner = job.combiner;
  // Streaming merge needs every shipped frame to be one sorted run.
  if (job.streaming_merge_reduce) config.sort_keys = true;

  JobResult result;
  std::mutex result_mu;

  minimpi::run_world(config.world_size(), [&](minimpi::Comm& comm) {
    core::MpiD mpid(comm, config);
    switch (mpid.role()) {
      case core::Role::kMapper: {
        MapContext ctx(
            [&](std::string_view k, std::string_view v) { mpid.send(k, v); },
            mpid.mapper_index());
        auto& source = inputs[static_cast<std::size_t>(mpid.mapper_index())];
        while (auto record = source()) job.map(*record, ctx);
        mpid.finalize();
        break;
      }
      case core::Role::kReducer: {
        if (job.streaming_merge_reduce) {
          // Hadoop's merge phase: collect the key-sorted frames, then
          // stream globally ordered groups straight into reduce().
          core::SortedFrameMerger merger;
          std::vector<std::byte> frame;
          while (mpid.recv_raw_frame(frame)) merger.add_frame(std::move(frame));
          mpid.finalize();

          ReduceContext ctx(mpid.reducer_index());
          std::string key;
          std::vector<std::string> values;
          while (merger.next_group(key, values)) {
            job.reduce(key, values, ctx);
          }
          std::lock_guard lock(result_mu);
          std::move(ctx.outputs_.begin(), ctx.outputs_.end(),
                    std::back_inserter(result.outputs));
          break;
        }

        // Global grouping: MPI-D streams per-mapper segments; fold them
        // into one value list per key before invoking the user reduce.
        std::unordered_map<std::string, std::vector<std::string>> groups;
        std::string key;
        std::vector<std::string> values;
        while (mpid.recv_group(key, values)) {
          auto& list = groups[key];
          std::move(values.begin(), values.end(), std::back_inserter(list));
          values.clear();
        }
        mpid.finalize();

        ReduceContext ctx(mpid.reducer_index());
        if (job.sorted_reduce) {
          std::vector<const std::string*> keys;
          keys.reserve(groups.size());
          for (const auto& [k, vs] : groups) keys.push_back(&k);
          std::sort(keys.begin(), keys.end(),
                    [](const auto* a, const auto* b) { return *a < *b; });
          for (const auto* k : keys) {
            job.reduce(*k, groups.at(*k), ctx);
          }
        } else {
          for (const auto& [k, vs] : groups) job.reduce(k, vs, ctx);
        }

        std::lock_guard lock(result_mu);
        std::move(ctx.outputs_.begin(), ctx.outputs_.end(),
                  std::back_inserter(result.outputs));
        break;
      }
      case core::Role::kMaster: {
        mpid.finalize();
        std::lock_guard lock(result_mu);
        result.report = mpid.report();
        break;
      }
    }
  });

  std::sort(result.outputs.begin(), result.outputs.end());
  return result;
}

JobResult JobRunner::run_on_text(const JobDef& job,
                                 std::string_view text) const {
  const auto chunks = split_text(text, mappers_);
  std::vector<RecordSource> inputs;
  inputs.reserve(chunks.size());
  for (const auto chunk : chunks) inputs.push_back(line_source(chunk));
  return run(job, std::move(inputs));
}

}  // namespace mpid::mapred
