#include "mpid/mapred/input.hpp"

#include <algorithm>
#include <memory>

namespace mpid::mapred {

std::optional<std::string_view> LineReader::next() noexcept {
  if (exhausted_) return std::nullopt;
  const auto nl = rest_.find('\n');
  if (nl == std::string_view::npos) {
    exhausted_ = true;
    if (rest_.empty()) return std::nullopt;
    auto line = rest_;
    rest_ = {};
    return line;
  }
  auto line = rest_.substr(0, nl);
  rest_.remove_prefix(nl + 1);
  if (rest_.empty()) exhausted_ = true;
  return line;
}

std::vector<std::string_view> split_text(std::string_view text, int splits) {
  if (splits < 1) splits = 1;
  std::vector<std::string_view> chunks;
  chunks.reserve(static_cast<std::size_t>(splits));
  std::size_t pos = 0;
  for (int i = 0; i < splits; ++i) {
    if (pos >= text.size()) {
      chunks.emplace_back();
      continue;
    }
    if (i == splits - 1) {
      chunks.push_back(text.substr(pos));
      pos = text.size();
      continue;
    }
    const std::size_t target =
        pos + std::max<std::size_t>(1, (text.size() - pos) /
                                           static_cast<std::size_t>(splits - i));
    std::size_t cut = text.find('\n', std::min(target, text.size() - 1));
    if (cut == std::string_view::npos) {
      chunks.push_back(text.substr(pos));
      pos = text.size();
      continue;
    }
    ++cut;  // include the newline in the left chunk
    chunks.push_back(text.substr(pos, cut - pos));
    pos = cut;
  }
  return chunks;
}

RecordSource vector_source(std::vector<std::string> records) {
  auto state = std::make_shared<std::pair<std::vector<std::string>,
                                          std::size_t>>(std::move(records), 0);
  return [state]() -> std::optional<std::string> {
    if (state->second >= state->first.size()) return std::nullopt;
    return std::move(state->first[state->second++]);
  };
}

RecordSource line_source(std::string_view text) {
  auto state = std::make_shared<std::pair<std::string, std::size_t>>(
      std::string(text), 0);
  return [state]() -> std::optional<std::string> {
    auto& [buf, pos] = *state;
    if (pos >= buf.size()) return std::nullopt;
    const auto nl = buf.find('\n', pos);
    std::string line;
    if (nl == std::string::npos) {
      line = buf.substr(pos);
      pos = buf.size();
    } else {
      line = buf.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return line;
  };
}

}  // namespace mpid::mapred
