#include "mpid/mapred/chain.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "mpid/core/mpid.hpp"
#include "mpid/fault/fault.hpp"
#include "mpid/minimpi/world.hpp"
#include "mpid/shuffle/parallel.hpp"
#include "mpid/shuffle/partition.hpp"

namespace mpid::mapred {

namespace {

/// Safety cap on task re-executions (same contract as JobRunner).
constexpr int kMaxTaskAttempts = 16;

std::uint64_t kv_bytes(const KvPair& p) noexcept {
  return static_cast<std::uint64_t>(p.first.size() + p.second.size());
}

}  // namespace

// ------------------------------------------------------------ StaticTables --

StaticTables::StaticTables(const KvVec& static_input, int partitions,
                           const core::Partitioner& partitioner) {
  if (partitions < 1) {
    throw std::invalid_argument("StaticTables: need >= 1 partition");
  }
  tables_.resize(static_cast<std::size_t>(partitions));
  bytes_.assign(static_cast<std::size_t>(partitions), 0);
  const shuffle::Partitioner part(static_cast<std::uint32_t>(partitions),
                                  partitioner);
  for (const auto& [key, value] : static_input) {
    const auto p = part(key);
    tables_[p][key].push_back(value);
    bytes_[p] += key.size() + value.size();
    total_bytes_ += key.size() + value.size();
  }
}

const std::vector<std::string>* StaticTables::find(
    int partition, std::string_view key) const {
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= tables_.size()) {
    return nullptr;
  }
  const auto& table = tables_[static_cast<std::size_t>(partition)];
  const auto it = table.find(key);
  return it == table.end() ? nullptr : &it->second;
}

std::uint64_t StaticTables::partition_bytes(int partition) const {
  if (partition < 0 || static_cast<std::size_t>(partition) >= bytes_.size()) {
    return 0;
  }
  return bytes_[static_cast<std::size_t>(partition)];
}

// ------------------------------------------------------- ResidentPartition --

namespace {

/// Record framing of a spilled resident partition: u32 key length, u32
/// value length, key bytes, value bytes — repeated to end of file.
void write_record(std::ofstream& out, std::string_view k,
                  std::string_view v) {
  const std::uint32_t kl = static_cast<std::uint32_t>(k.size());
  const std::uint32_t vl = static_cast<std::uint32_t>(v.size());
  out.write(reinterpret_cast<const char*>(&kl), sizeof(kl));
  out.write(reinterpret_cast<const char*>(&vl), sizeof(vl));
  out.write(k.data(), static_cast<std::streamsize>(k.size()));
  out.write(v.data(), static_cast<std::streamsize>(v.size()));
}

bool read_record(std::ifstream& in, std::string& k, std::string& v) {
  std::uint32_t kl = 0;
  std::uint32_t vl = 0;
  if (!in.read(reinterpret_cast<char*>(&kl), sizeof(kl))) return false;
  if (!in.read(reinterpret_cast<char*>(&vl), sizeof(vl))) {
    throw std::runtime_error(
        "ResidentPartition: truncated spill record header");
  }
  k.resize(kl);
  v.resize(vl);
  if ((kl > 0 && !in.read(k.data(), kl)) ||
      (vl > 0 && !in.read(v.data(), vl))) {
    throw std::runtime_error("ResidentPartition: truncated spill record");
  }
  return true;
}

}  // namespace

void ResidentPartition::seal(KvVec pairs, store::MemoryBudget* budget,
                             const std::string& spill_dir) {
  clear();
  // The determinism rule: a partition seals sorted by (key, value), so
  // the next round's map input order is a pure function of this round's
  // output multiset — identical across runtimes, thread counts and the
  // chained/unchained executors.
  std::sort(pairs.begin(), pairs.end());
  pair_count_ = pairs.size();
  byte_count_ = 0;
  for (const auto& p : pairs) byte_count_ += kv_bytes(p);

  store::Reservation reservation(budget);
  if (reservation.try_grow(static_cast<std::size_t>(byte_count_))) {
    reservation_ = std::move(reservation);
    pairs_ = std::move(pairs);
    return;
  }
  // Budget refused: demote the sealed pairs to the slow tier. The spill
  // keeps residency honest under a hard cap — the chain still never
  // re-shuffles, it just streams the partition back from disk.
  if (spill_dir.empty()) {
    throw std::runtime_error(
        "ResidentPartition: memory budget refused the sealed partition "
        "and no spill_dir is configured");
  }
  auto file = store::SpillFile::create(spill_dir, "resident");
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ResidentPartition: cannot open spill file " +
                               file.path());
    }
    for (const auto& [k, v] : pairs) write_record(out, k, v);
    out.flush();
    if (!out) {
      throw std::runtime_error("ResidentPartition: spill write failed to " +
                               file.path());
    }
  }
  file_ = std::move(file);
}

void ResidentPartition::clear() {
  pairs_.clear();
  pairs_.shrink_to_fit();
  reservation_.reset();
  file_.reset();
  pair_count_ = 0;
  byte_count_ = 0;
}

void ResidentPartition::for_each(
    const std::function<void(std::string_view, std::string_view)>& fn)
    const {
  if (!file_) {
    for (const auto& [k, v] : pairs_) fn(k, v);
    return;
  }
  std::ifstream in(file_->path(), std::ios::binary);
  if (!in) {
    throw std::runtime_error("ResidentPartition: cannot reopen spill file " +
                             file_->path());
  }
  std::string k;
  std::string v;
  while (read_record(in, k, v)) fn(k, v);
}

KvVec ResidentPartition::load() const {
  if (!file_) return pairs_;
  KvVec out;
  out.reserve(static_cast<std::size_t>(pair_count_));
  for_each([&out](std::string_view k, std::string_view v) {
    out.emplace_back(std::string(k), std::string(v));
  });
  return out;
}

KvVec ResidentPartition::take() {
  KvVec out = file_ ? load() : std::move(pairs_);
  clear();
  return out;
}

// ------------------------------------------------------------ chain_detail --

namespace chain_detail {

bool advance_plan(const ChainJob& job, PlanCursor& cur,
                  const RoundCounters& counters) {
  const ChainStage& stage = job.stages[cur.stage];
  const bool stage_done = cur.round_in_stage >= stage.max_rounds ||
                          (stage.until && stage.until(counters));
  if (!stage_done) {
    ++cur.round_in_stage;
    return true;
  }
  if (cur.stage + 1 < job.stages.size()) {
    ++cur.stage;
    cur.round_in_stage = 1;
    return true;
  }
  return false;
}

bool statically_last(const ChainJob& job, const PlanCursor& cur) {
  return cur.stage + 1 == job.stages.size() &&
         cur.round_in_stage >= job.stages[cur.stage].max_rounds;
}

int total_max_rounds(const ChainJob& job) {
  int total = 0;
  for (const auto& stage : job.stages) total += stage.max_rounds;
  return total;
}

void validate_job(const ChainJob& job) {
  if (!job.ingest) {
    throw std::invalid_argument("ChainJob: ingest must be set");
  }
  if (job.stages.empty()) {
    throw std::invalid_argument("ChainJob: need >= 1 stage");
  }
  for (std::size_t s = 0; s < job.stages.size(); ++s) {
    const auto& stage = job.stages[s];
    if (!stage.reduce) {
      throw std::invalid_argument("ChainJob: stage " + std::to_string(s) +
                                  " has no reduce");
    }
    // Stage 0's first round maps through ingest; a single-round stage 0
    // therefore never calls its map.
    if (!stage.map && !(s == 0 && stage.max_rounds == 1)) {
      throw std::invalid_argument("ChainJob: stage " + std::to_string(s) +
                                  " has no map");
    }
    if (stage.max_rounds < 1) {
      throw std::invalid_argument("ChainJob: stage " + std::to_string(s) +
                                  " needs max_rounds >= 1");
    }
  }
  if (job.tuning.combiner) {
    throw std::invalid_argument(
        "ChainJob: combiners are not supported inside chains (stage maps "
        "differ per round; a chain-wide combiner would be wrong for at "
        "least one of them)");
  }
  if (job.tuning.coded_replication > 1) {
    throw std::invalid_argument(
        "ChainJob: coded_replication > 1 is incompatible with chaining "
        "(see ShuffleOptions::resident_rounds)");
  }
}

}  // namespace chain_detail

// ----------------------------------------------------------- the executors --

namespace {

using chain_detail::PlanCursor;

/// Shared cross-rank state of one chained run. All mutation happens
/// either under `mu` (round counters, per-round resident totals) or on a
/// partition slot owned by exactly one reducer rank, read by exactly one
/// mapper rank strictly after the next round barrier (the barrier's
/// done/ack handshake is the happens-before edge).
struct ChainState {
  std::mutex mu;
  std::vector<RoundCounters> round_counters;  // by global round - 1
  std::vector<std::uint64_t> resident_pairs;  // by global round - 1
  std::vector<std::uint64_t> resident_bytes;
  std::vector<ResidentPartition> resident;    // by partition
  const StaticTables* statics = nullptr;
  store::MemoryBudget* resident_budget = nullptr;
  std::string spill_dir;
};

/// Runs the map side of one round on mapper rank `p`.
///  * round 1 (stage 0): ingest the external source through job.ingest;
///  * later rounds: stream this partition's resident pairs through the
///    current stage's map.
/// Chain accounting (ingest_bytes / resident_*) accumulates into `acc`;
/// `reingest` marks the unchained ablation, where resident pairs count
/// as re-ingested external bytes instead of resident reads.
void run_map_side(core::MpiD& mpid, const ChainJob& job,
                  const PlanCursor& cur, int global_round, int p,
                  RecordSource* source, const ResidentPartition* resident,
                  const StaticTables* statics, bool reingest,
                  shuffle::ShuffleCounters& acc) {
  const core::Config& config = job.tuning;
  fault::FaultInjector* inj =
      config.resilient_shuffle ? config.fault_injector.get() : nullptr;
  const bool ingest_round = global_round == 1 && source != nullptr;

  if (inj) {
    const auto lag =
        inj->straggle_delay(fault::TaskKind::kMap, p, mpid.attempt());
    if (lag.count() > 0) std::this_thread::sleep_for(lag);
  }

  if (ingest_round) {
    MapContext ctx(
        [&](std::string_view k, std::string_view v) { mpid.send(k, v); }, p);
    if (!inj && config.map_threads <= 1) {
      // Stream straight through; nothing materializes.
      while (auto record = (*source)()) {
        acc.ingest_bytes += record->size();
        job.ingest(*record, ctx);
      }
      return;
    }
    // Crash retries and worker-pool chunks both need a re-readable,
    // random-access split (Hadoop's durable-split assumption).
    std::vector<std::string> split;
    while (auto record = (*source)()) {
      acc.ingest_bytes += record->size();
      split.push_back(std::move(*record));
    }
    if (!inj && config.map_threads > 1) {
      const std::size_t chunks =
          shuffle::resolve_map_chunks(config, split.size());
      mpid.run_map_parallel(
          chunks,
          [&](std::size_t chunk, const shuffle::ParallelMapper::EmitFn& emit) {
            MapContext chunk_ctx(
                [&emit](std::string_view k, std::string_view v) {
                  emit(k, v);
                },
                p);
            const std::size_t lo = chunk * split.size() / chunks;
            const std::size_t hi = (chunk + 1) * split.size() / chunks;
            for (std::size_t i = lo; i < hi; ++i) {
              job.ingest(split[i], chunk_ctx);
            }
          });
      return;
    }
    for (int safety = 0;; ++safety) {
      try {
        const auto crash_at =
            inj->crash_tick(fault::TaskKind::kMap, p, mpid.attempt());
        std::uint64_t ticks = 0;
        for (const auto& record : split) {
          if (crash_at && ++ticks >= *crash_at) {
            inj->note(fault::Kind::kTaskCrash,
                      "map:" + std::to_string(p) + "#" +
                          std::to_string(mpid.attempt()));
            throw fault::TaskCrash(fault::TaskKind::kMap, p, mpid.attempt());
          }
          job.ingest(record, ctx);
        }
        return;
      } catch (const fault::TaskCrash&) {
        if (safety >= kMaxTaskAttempts) throw;
        mpid.restart_mapper();
      }
    }
  }

  // Resident round: this partition's sealed pairs are the map input, in
  // place — no re-ingest, no DFS round trip.
  const ChainStage& stage = job.stages[cur.stage];
  if (reingest) {
    acc.ingest_bytes += resident->byte_count();
  } else {
    acc.resident_pairs_in += resident->pair_count();
    acc.resident_bytes_in += resident->byte_count();
  }
  ChainMapContext ctx(
      [&](std::string_view k, std::string_view v) { mpid.send(k, v); },
      statics, p, global_round);
  if (!inj && config.map_threads <= 1) {
    resident->for_each([&](std::string_view k, std::string_view v) {
      stage.map(k, v, ctx);
    });
    return;
  }
  // Materialized path: crash retries re-run from the start; worker-pool
  // chunks need random access. The seal order is deterministic, so the
  // chunk boundaries — and therefore the shipped bytes — are identical
  // at every thread count.
  const KvVec pairs = resident->load();
  if (!inj && config.map_threads > 1) {
    const std::size_t chunks =
        shuffle::resolve_map_chunks(config, pairs.size());
    mpid.run_map_parallel(
        chunks,
        [&](std::size_t chunk, const shuffle::ParallelMapper::EmitFn& emit) {
          ChainMapContext chunk_ctx(
              [&emit](std::string_view k, std::string_view v) {
                emit(k, v);
              },
              statics, p, global_round);
          const std::size_t lo = chunk * pairs.size() / chunks;
          const std::size_t hi = (chunk + 1) * pairs.size() / chunks;
          for (std::size_t i = lo; i < hi; ++i) {
            stage.map(pairs[i].first, pairs[i].second, chunk_ctx);
          }
        });
    return;
  }
  for (int safety = 0;; ++safety) {
    try {
      const auto crash_at =
          inj->crash_tick(fault::TaskKind::kMap, p, mpid.attempt());
      std::uint64_t ticks = 0;
      for (const auto& [k, v] : pairs) {
        if (crash_at && ++ticks >= *crash_at) {
          inj->note(fault::Kind::kTaskCrash,
                    "map:" + std::to_string(p) + "#" +
                        std::to_string(mpid.attempt()));
          throw fault::TaskCrash(fault::TaskKind::kMap, p, mpid.attempt());
        }
        stage.map(k, v, ctx);
      }
      return;
    } catch (const fault::TaskCrash&) {
      if (safety >= kMaxTaskAttempts) throw;
      mpid.restart_mapper();
    }
  }
}

/// Collects one round's shuffle on reducer rank `p` into per-key groups
/// (with restart/re-pull recovery), then runs the stage reduce in sorted
/// key order. Returns the context holding the emitted next-resident
/// pairs and the round counters.
ChainReduceContext run_reduce_side(core::MpiD& mpid, const ChainJob& job,
                                   const PlanCursor& cur, int global_round,
                                   int p, const StaticTables* statics) {
  const core::Config& config = job.tuning;
  fault::FaultInjector* inj =
      config.resilient_shuffle ? config.fault_injector.get() : nullptr;
  if (inj) {
    const auto lag =
        inj->straggle_delay(fault::TaskKind::kReduce, p, mpid.attempt());
    if (lag.count() > 0) std::this_thread::sleep_for(lag);
  }
  std::unordered_map<std::string, std::vector<std::string>> groups;
  for (int safety = 0;; ++safety) {
    try {
      std::string key;
      std::vector<std::string> values;
      while (mpid.recv_group(key, values)) {
        auto& list = groups[key];
        std::move(values.begin(), values.end(), std::back_inserter(list));
        values.clear();
      }
      break;
    } catch (const fault::TaskCrash&) {
      if (safety >= kMaxTaskAttempts) throw;
      mpid.restart_reducer();
      groups.clear();
    }
  }

  const ChainStage& stage = job.stages[cur.stage];
  ChainReduceContext ctx(statics, p, global_round);
  // Chains always reduce in sorted key order: the sealed partition must
  // not depend on hash-table iteration order.
  std::vector<const std::string*> keys;
  keys.reserve(groups.size());
  for (const auto& [k, vs] : groups) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const auto* a, const auto* b) { return *a < *b; });
  for (const auto* k : keys) {
    stage.reduce(*k, groups.at(*k), ctx);
  }
  return ctx;
}

/// Reads the aggregated counters of `global_round` and advances the plan
/// cursor; pure given the chain state, so every rank decides alike.
bool decide_next(ChainState& state, const ChainJob& job, PlanCursor& cur,
                 int global_round) {
  std::lock_guard lock(state.mu);
  return chain_detail::advance_plan(
      job, cur, state.round_counters[static_cast<std::size_t>(global_round - 1)]);
}

ChainResult assemble_result(ChainState& state, const ChainJob& job,
                            core::JobReport report) {
  ChainResult result;
  result.report = std::move(report);
  // Replay the plan against the aggregated counters to label each work
  // round with its stage.
  PlanCursor cur;
  for (std::size_t r = 0; r < state.round_counters.size(); ++r) {
    RoundReport rr;
    rr.stage = static_cast<int>(cur.stage);
    rr.round_in_stage = cur.round_in_stage;
    rr.counters = state.round_counters[r];
    rr.resident_pairs_out = state.resident_pairs[r];
    rr.resident_bytes_out = state.resident_bytes[r];
    result.rounds.push_back(std::move(rr));
    if (!chain_detail::advance_plan(job, cur, state.round_counters[r])) break;
  }
  // Final outputs: the last round's resident partitions, concatenated
  // and globally sorted (the JobResult contract). Pairs move end to end
  // — reducer emit -> seal -> here.
  std::size_t total = 0;
  for (auto& part : state.resident) {
    total += static_cast<std::size_t>(part.pair_count());
  }
  result.outputs.reserve(total);
  for (auto& part : state.resident) {
    KvVec pairs = part.take();
    std::move(pairs.begin(), pairs.end(),
              std::back_inserter(result.outputs));
  }
  std::sort(result.outputs.begin(), result.outputs.end());
  return result;
}

}  // namespace

// --------------------------------------------------------------- JobChain --

JobChain::JobChain(int partitions) : partitions_(partitions) {
  if (partitions < 1) {
    throw std::invalid_argument("JobChain: need >= 1 partition");
  }
}

ChainResult JobChain::run(const ChainJob& job,
                          std::vector<RecordSource> inputs) const {
  chain_detail::validate_job(job);
  if (inputs.size() != static_cast<std::size_t>(partitions_)) {
    throw std::invalid_argument("JobChain: need one input per partition");
  }

  core::Config config = job.tuning;
  config.mappers = partitions_;
  config.reducers = partitions_;
  // Budget for every barrier the plan can reach: each stage's round
  // allowance plus the empty teardown barrier an early-converged chain
  // needs (the stop decision is only known after the round it stops at).
  config.resident_rounds =
      static_cast<std::size_t>(chain_detail::total_max_rounds(job)) + 1;
  config.validate();

  const int total_rounds = chain_detail::total_max_rounds(job);
  ChainState state;
  state.round_counters.resize(static_cast<std::size_t>(total_rounds));
  state.resident_pairs.assign(static_cast<std::size_t>(total_rounds), 0);
  state.resident_bytes.assign(static_cast<std::size_t>(total_rounds), 0);
  state.resident.resize(static_cast<std::size_t>(partitions_));
  state.spill_dir = config.spill_dir;

  // Resident partitions charge the job's shared budget when one exists,
  // a chain-local arbiter when only a byte cap was given, and stay
  // unbudgeted otherwise.
  std::shared_ptr<store::MemoryBudget> resident_budget = config.memory_budget;
  if (!resident_budget && config.memory_budget_bytes > 0) {
    resident_budget =
        std::make_shared<store::MemoryBudget>(config.memory_budget_bytes);
  }
  state.resident_budget = resident_budget.get();

  // The static channel: realigned once, before the world starts, pinned
  // for every round. (The unchained ablation rebuilds this per round —
  // that delta is the static_bytes_reshuffled counter.)
  const StaticTables statics(job.static_input, partitions_,
                             config.partitioner);
  state.statics = job.static_input.empty() ? nullptr : &statics;

  core::JobReport report;
  std::mutex report_mu;

  minimpi::run_world(config.world_size(), [&](minimpi::Comm& comm) {
    core::MpiD mpid(comm, config);
    PlanCursor cur;
    int round = 1;
    bool live = true;  // false: the next barrier is the empty teardown
    switch (mpid.role()) {
      case core::Role::kMapper: {
        const int p = mpid.mapper_index();
        while (true) {
          if (live) {
            shuffle::ShuffleCounters acc;
            run_map_side(mpid, job, cur, round, p,
                         round == 1 ? &inputs[static_cast<std::size_t>(p)]
                                    : nullptr,
                         &state.resident[static_cast<std::size_t>(p)],
                         state.statics, /*reingest=*/false, acc);
            mpid.fold_counters(acc);
          }
          if (!live || chain_detail::statically_last(job, cur)) {
            mpid.finalize();
            break;
          }
          mpid.next_round();
          live = decide_next(state, job, cur, round);
          ++round;
        }
        break;
      }
      case core::Role::kReducer: {
        const int p = mpid.reducer_index();
        while (true) {
          // Even the teardown round must drain the (empty) shuffle: the
          // mappers still seal their lanes with EOS markers.
          ChainReduceContext ctx =
              run_reduce_side(mpid, job, cur, round, p, state.statics);
          if (live) {
            auto& part = state.resident[static_cast<std::size_t>(p)];
            part.seal(ctx.take_emitted(), state.resident_budget,
                      state.spill_dir);
            shuffle::ShuffleCounters acc;
            if (round == 1 && state.statics) {
              acc.static_bytes_pinned = statics.partition_bytes(p);
            }
            if (part.spilled()) acc.resident_bytes_spilled = part.byte_count();
            mpid.fold_counters(acc);
            std::lock_guard lock(state.mu);
            auto& rc =
                state.round_counters[static_cast<std::size_t>(round - 1)];
            rc.merge(ctx.counters());
            state.resident_pairs[static_cast<std::size_t>(round - 1)] +=
                part.pair_count();
            state.resident_bytes[static_cast<std::size_t>(round - 1)] +=
                part.byte_count();
          }
          if (!live || chain_detail::statically_last(job, cur)) {
            mpid.finalize();
            break;
          }
          mpid.next_round();
          live = decide_next(state, job, cur, round);
          ++round;
        }
        break;
      }
      case core::Role::kMaster: {
        while (true) {
          if (!live || chain_detail::statically_last(job, cur)) {
            mpid.finalize();
            break;
          }
          mpid.next_round();
          live = decide_next(state, job, cur, round);
          ++round;
        }
        std::lock_guard lock(report_mu);
        report = mpid.report();
        break;
      }
    }
  });

  // Trim counter slots of rounds that never ran (early convergence).
  PlanCursor cur;
  std::size_t ran = 1;
  while (ran < state.round_counters.size() &&
         chain_detail::advance_plan(
             job, cur, state.round_counters[ran - 1])) {
    ++ran;
  }
  state.round_counters.resize(ran);
  state.resident_pairs.resize(ran);
  state.resident_bytes.resize(ran);

  return assemble_result(state, job, std::move(report));
}

ChainResult JobChain::run_on_text(const ChainJob& job,
                                  std::string_view text) const {
  const auto chunks = split_text(text, partitions_);
  std::vector<RecordSource> inputs;
  inputs.reserve(chunks.size());
  for (const auto chunk : chunks) inputs.push_back(line_source(chunk));
  return run(job, std::move(inputs));
}

ChainResult JobChain::run_unchained(const ChainJob& job,
                                    std::vector<RecordSource> inputs) const {
  chain_detail::validate_job(job);
  if (inputs.size() != static_cast<std::size_t>(partitions_)) {
    throw std::invalid_argument("JobChain: need one input per partition");
  }

  core::Config config = job.tuning;
  config.mappers = partitions_;
  config.reducers = partitions_;
  config.resident_rounds = 1;  // every round is a fresh one-shot world
  config.validate();

  const int total_rounds = chain_detail::total_max_rounds(job);
  ChainState state;
  state.round_counters.resize(static_cast<std::size_t>(total_rounds));
  state.resident_pairs.assign(static_cast<std::size_t>(total_rounds), 0);
  state.resident_bytes.assign(static_cast<std::size_t>(total_rounds), 0);
  state.resident.resize(static_cast<std::size_t>(partitions_));
  state.spill_dir = config.spill_dir;
  std::shared_ptr<store::MemoryBudget> resident_budget = config.memory_budget;
  if (!resident_budget && config.memory_budget_bytes > 0) {
    resident_budget =
        std::make_shared<store::MemoryBudget>(config.memory_budget_bytes);
  }
  state.resident_budget = resident_budget.get();

  core::JobReport chain_report;
  PlanCursor cur;
  int round = 1;
  while (true) {
    // The ablation's whole point: the static channel is realigned again
    // for EVERY round — a fresh job has nothing pinned.
    const StaticTables statics(job.static_input, partitions_,
                               config.partitioner);
    state.statics = job.static_input.empty() ? nullptr : &statics;

    core::JobReport report;
    std::mutex report_mu;
    minimpi::run_world(config.world_size(), [&](minimpi::Comm& comm) {
      core::MpiD mpid(comm, config);
      switch (mpid.role()) {
        case core::Role::kMapper: {
          const int p = mpid.mapper_index();
          shuffle::ShuffleCounters acc;
          run_map_side(mpid, job, cur, round, p,
                       round == 1 ? &inputs[static_cast<std::size_t>(p)]
                                  : nullptr,
                       &state.resident[static_cast<std::size_t>(p)],
                       state.statics, /*reingest=*/true, acc);
          mpid.fold_counters(acc);
          mpid.finalize();
          break;
        }
        case core::Role::kReducer: {
          const int p = mpid.reducer_index();
          ChainReduceContext ctx =
              run_reduce_side(mpid, job, cur, round, p, state.statics);
          auto& part = state.resident[static_cast<std::size_t>(p)];
          part.seal(ctx.take_emitted(), state.resident_budget,
                    state.spill_dir);
          shuffle::ShuffleCounters acc;
          if (state.statics) {
            if (round == 1) {
              acc.static_bytes_pinned = statics.partition_bytes(p);
            } else {
              acc.static_bytes_reshuffled = statics.partition_bytes(p);
            }
          }
          if (part.spilled()) acc.resident_bytes_spilled = part.byte_count();
          mpid.fold_counters(acc);
          mpid.finalize();
          std::lock_guard lock(state.mu);
          state.round_counters[static_cast<std::size_t>(round - 1)].merge(
              ctx.counters());
          state.resident_pairs[static_cast<std::size_t>(round - 1)] +=
              part.pair_count();
          state.resident_bytes[static_cast<std::size_t>(round - 1)] +=
              part.byte_count();
          break;
        }
        case core::Role::kMaster: {
          mpid.finalize();
          std::lock_guard lock(report_mu);
          report = mpid.report();
          break;
        }
      }
    });

    chain_report.totals += report.totals;
    chain_report.round_totals.push_back(report.totals);
    chain_report.mappers_completed = report.mappers_completed;
    chain_report.reducers_completed = report.reducers_completed;

    bool more;
    {
      std::lock_guard lock(state.mu);
      more = chain_detail::advance_plan(
          job, cur, state.round_counters[static_cast<std::size_t>(round - 1)]);
    }
    if (!more) break;
    ++round;
  }
  // Stamp the round count the chained executor gets from the per-round
  // stats stamp (a fresh one-shot world never stamps chain_rounds).
  chain_report.totals.chain_rounds = static_cast<std::uint64_t>(round);

  state.round_counters.resize(static_cast<std::size_t>(round));
  state.resident_pairs.resize(static_cast<std::size_t>(round));
  state.resident_bytes.resize(static_cast<std::size_t>(round));
  return assemble_result(state, job, std::move(chain_report));
}

ChainResult JobChain::run_unchained_on_text(const ChainJob& job,
                                            std::string_view text) const {
  const auto chunks = split_text(text, partitions_);
  std::vector<RecordSource> inputs;
  inputs.reserve(chunks.size());
  for (const auto chunk : chunks) inputs.push_back(line_source(chunk));
  return run_unchained(job, std::move(inputs));
}

}  // namespace mpid::mapred
