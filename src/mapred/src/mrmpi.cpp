#include "mpid/mapred/mrmpi.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "mpid/common/hash.hpp"
#include "mpid/common/kvframe.hpp"

namespace mpid::mapred::mrmpi {

MapReduce::MapReduce(minimpi::Comm& comm)
    : comm_(comm), shuffle_comm_(comm.dup()) {}

void MapReduce::map(int ntasks, const MapTaskFn& fn) {
  if (ntasks < 0) throw std::invalid_argument("mrmpi: negative task count");
  Emitter out;
  for (int task = comm_.rank(); task < ntasks; task += comm_.size()) {
    fn(task, out);
  }
  std::move(out.pairs_.begin(), out.pairs_.end(), std::back_inserter(kv_));
  converted_ = false;
}

void MapReduce::aggregate() {
  const int n = comm_.size();
  std::vector<common::KvWriter> writers(static_cast<std::size_t>(n));
  for (const auto& [key, value] : kv_) {
    const auto dst = common::hash_partition(key, static_cast<std::uint32_t>(n));
    writers[dst].append(key, value);
  }
  kv_.clear();

  std::vector<std::vector<std::byte>> outgoing;
  outgoing.reserve(static_cast<std::size_t>(n));
  for (auto& w : writers) outgoing.push_back(w.take());

  auto incoming = shuffle_comm_.alltoall_bytes(std::move(outgoing));
  for (const auto& frame : incoming) {
    common::KvReader reader(frame);
    while (auto pair = reader.next()) {
      kv_.emplace_back(std::string(pair->key), std::string(pair->value));
    }
  }
  converted_ = false;
}

void MapReduce::convert() {
  std::unordered_map<std::string, std::vector<std::string>> groups;
  for (auto& [key, value] : kv_) {
    groups[std::move(key)].push_back(std::move(value));
  }
  kv_.clear();
  kmv_.assign(std::make_move_iterator(groups.begin()),
              std::make_move_iterator(groups.end()));
  // Deterministic processing order regardless of hash-table layout.
  std::sort(kmv_.begin(), kmv_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  converted_ = true;
}

void MapReduce::collate() {
  aggregate();
  convert();
}

void MapReduce::reduce(const ReduceGroupFn& fn) {
  if (!converted_) {
    throw std::logic_error("mrmpi: reduce requires convert()/collate() first");
  }
  Emitter out;
  for (const auto& [key, values] : kmv_) fn(key, values, out);
  kmv_.clear();
  kv_ = std::move(out.pairs_);
  converted_ = false;
}

std::vector<std::pair<std::string, std::string>> MapReduce::gather(
    minimpi::Rank root) {
  common::KvWriter writer;
  for (const auto& [key, value] : kv_) writer.append(key, value);
  auto parts = shuffle_comm_.gather_bytes(writer.buffer(), root);

  std::vector<std::pair<std::string, std::string>> result;
  for (const auto& part : parts) {
    common::KvReader reader(part);
    while (auto pair = reader.next()) {
      result.emplace_back(std::string(pair->key), std::string(pair->value));
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace mpid::mapred::mrmpi
