// Iterative job chaining: multi-round MapReduce over resident partitions
// (DESIGN.md §16).
//
// The paper's MPI-D case is that intermediate data should live in memory
// instead of round-tripping through HDFS. A one-shot JobRunner only
// exploits that within a single job; the workload class its related work
// highlights (Twister-style iterative jobs, MR-MPI's chained
// map/collate/reduce programs — sssp, cc, tri_find) needs it BETWEEN
// rounds: round N's realigned reducer partitions must become round N+1's
// map input in place, with no re-ingest and no re-shuffle of static data.
//
// JobChain is that lifecycle. One MPI-D world runs every round; each
// round ends in MpiD::next_round() — the same ship/seal/stats barrier as
// finalize(), minus the teardown — and the reducer-side output pairs stay
// resident (sealed, budget-charged, spilling to disk only when the budget
// refuses) as the very partitions the next round's mappers read. A
// per-chain `static_input` channel (graph adjacency, edge weights) is
// realigned ONCE by the job's partitioner and pinned; stage functions
// look it up by key instead of re-shuffling it every round.
//
//   ChainJob job;
//   job.ingest = ...;                  // round 1: external records -> pairs
//   job.stages = {{.name = "propagate", .map = ..., .reduce = ...,
//                  .max_rounds = 64, .until = converged}};
//   job.static_input = adjacency;      // realigned once, pinned
//   ChainResult r = JobChain(/*partitions=*/4).run(job, inputs);
//
// Determinism rules (what makes chained == unchained byte-identical and
// both runtimes agree):
//   * a partition seals SORTED by (key, value) at every round barrier, so
//     round N+1's map input order is a pure function of round N's output
//     multiset;
//   * keys stay on the partition the job's partitioner assigns them, so a
//     key's resident pair, its static entries and its reduce all live on
//     one partition for the whole chain;
//   * a stage reduce must be insensitive to value ARRIVAL order (sort the
//     values first if order matters): transport interleaving across
//     mappers is the one nondeterminism the chain does not remove.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mpid/core/config.hpp"
#include "mpid/mapred/input.hpp"
#include "mpid/mapred/job.hpp"
#include "mpid/store/budget.hpp"
#include "mpid/store/spillfile.hpp"

namespace mpid::mapred {

using KvPair = std::pair<std::string, std::string>;
using KvVec = std::vector<KvPair>;

/// Named per-round user counters — the convergence currency. A stage
/// reduce increments them (ChainReduceContext::incr); the chain
/// aggregates every partition's block at the round barrier and hands the
/// fold to the stage's `until` predicate on every rank, so all ranks take
/// the same continue/stop decision without an extra broadcast.
class RoundCounters {
 public:
  void incr(std::string_view name, std::uint64_t by = 1) {
    values_[std::string(name)] += by;
  }
  /// 0 for a counter never incremented.
  std::uint64_t value(std::string_view name) const noexcept {
    const auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  void merge(const RoundCounters& rhs) {
    for (const auto& [k, v] : rhs.values_) values_[k] += v;
  }
  bool empty() const noexcept { return values_.empty(); }
  /// Deterministic (name-ordered) view for reports and tests.
  const std::map<std::string, std::uint64_t, std::less<>>& values()
      const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> values_;
};

/// The pinned static channel: every (key, value) of `static_input`
/// realigned once into partition tables by the job's partitioner. Stage
/// functions read it by key; it never crosses the shuffle again.
class StaticTables {
 public:
  StaticTables() = default;
  StaticTables(const KvVec& static_input, int partitions,
               const core::Partitioner& partitioner);

  /// The pinned values of `key` on `partition`; null when the key has no
  /// static entries. The partition must be the key's own (the chain only
  /// hands contexts their local table).
  const std::vector<std::string>* find(int partition,
                                       std::string_view key) const;

  /// Key + value payload bytes of one partition's table (the realign
  /// cost that pinning pays once).
  std::uint64_t partition_bytes(int partition) const;
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  int partitions() const noexcept {
    return static_cast<int>(tables_.size());
  }

 private:
  std::vector<std::map<std::string, std::vector<std::string>, std::less<>>>
      tables_;
  std::vector<std::uint64_t> bytes_;
  std::uint64_t total_bytes_ = 0;
};

/// One sealed resident partition: round N's reducer output, which round
/// N+1's mapper reads in place. Sealing sorts the pairs by (key, value)
/// — the chain's determinism rule — then charges the payload bytes
/// against the job's store::MemoryBudget; a refused charge demotes the
/// sealed pairs to a record file under spill_dir (the two-tier store's
/// slow tier) and keeps nothing in RAM.
class ResidentPartition {
 public:
  ResidentPartition() = default;

  /// Seals `pairs` as this partition's current round output, replacing
  /// any previous seal (whose charge/file is released first).
  void seal(KvVec pairs, store::MemoryBudget* budget,
            const std::string& spill_dir);

  /// Drops the seal: releases the budget charge / removes the spill file.
  void clear();

  std::uint64_t pair_count() const noexcept { return pair_count_; }
  /// Key + value payload bytes of the sealed pairs.
  std::uint64_t byte_count() const noexcept { return byte_count_; }
  bool spilled() const noexcept { return file_.has_value(); }

  /// Streams the sealed pairs in seal order (from RAM or the spill file).
  void for_each(
      const std::function<void(std::string_view, std::string_view)>& fn)
      const;

  /// Materializes the sealed pairs (reads the spill file back when
  /// spilled). The in-memory fast path returns a copy; callers that can
  /// stream should prefer for_each.
  KvVec load() const;

  /// Moves the pairs out (in-memory seals only; a spilled partition
  /// materializes). The partition is cleared afterwards.
  KvVec take();

 private:
  KvVec pairs_;
  std::uint64_t pair_count_ = 0;
  std::uint64_t byte_count_ = 0;
  store::Reservation reservation_;
  std::optional<store::SpillFile> file_;
};

class ChainMapContext;
class ChainReduceContext;

/// Maps one resident pair (rounds >= 2): re-emit state, message
/// neighbors via the static channel, etc. Emitted pairs enter the round's
/// shuffle exactly like MapContext::emit.
using ChainMapFn = std::function<void(
    std::string_view key, std::string_view value, ChainMapContext&)>;

/// Reduces one key's shuffled values into the NEXT resident state of that
/// key (and/or round counters). Values arrive grouped and key-sorted;
/// their order within the group is arrival order (see the determinism
/// rules above).
using ChainReduceFn = std::function<void(
    std::string_view key, std::vector<std::string>& values,
    ChainReduceContext&)>;

/// Convergence predicate over the round's aggregated counters: true stops
/// the stage after this round.
using ChainPredicate = std::function<bool(const RoundCounters&)>;

class ChainMapContext {
 public:
  void emit(std::string_view key, std::string_view value) {
    sink_(key, value);
  }
  /// Pinned static values of `key` (null if none). Valid for keys of this
  /// context's partition — which every resident key handed to this map
  /// is, by the partition-preserving rule.
  const std::vector<std::string>* statics(std::string_view key) const {
    return statics_ ? statics_->find(partition_, key) : nullptr;
  }
  int partition() const noexcept { return partition_; }
  int round() const noexcept { return round_; }

  using Sink = std::function<void(std::string_view, std::string_view)>;
  ChainMapContext(Sink sink, const StaticTables* statics, int partition,
                  int round)
      : sink_(std::move(sink)),
        statics_(statics),
        partition_(partition),
        round_(round) {}

 private:
  Sink sink_;
  const StaticTables* statics_;
  int partition_;
  int round_;
};

class ChainReduceContext {
 public:
  /// Emits one pair of this key's next resident state.
  void emit(std::string_view key, std::string_view value) {
    outputs_.emplace_back(std::string(key), std::string(value));
  }
  const std::vector<std::string>* statics(std::string_view key) const {
    return statics_ ? statics_->find(partition_, key) : nullptr;
  }
  /// Increments a round counter (aggregated across partitions at the
  /// barrier; drives `until` and lands in RoundReport::counters).
  void incr(std::string_view counter, std::uint64_t by = 1) {
    counters_.incr(counter, by);
  }
  int partition() const noexcept { return partition_; }
  int round() const noexcept { return round_; }

  ChainReduceContext(const StaticTables* statics, int partition, int round)
      : statics_(statics), partition_(partition), round_(round) {}

  KvVec take_emitted() noexcept { return std::move(outputs_); }
  RoundCounters& counters() noexcept { return counters_; }

 private:
  KvVec outputs_;
  RoundCounters counters_;
  const StaticTables* statics_;
  int partition_;
  int round_;
};

/// One stage of a chain: a (map, reduce) pair run for up to max_rounds
/// rounds. Stage 0's first round maps the EXTERNAL input through
/// ChainJob::ingest instead of `map`; every other round maps the resident
/// partitions. A stage ends when its round budget is spent or its `until`
/// predicate fires, whichever comes first; the chain then advances to the
/// next stage (whose first round maps the previous stage's resident
/// output) or finishes.
struct ChainStage {
  std::string name;
  ChainMapFn map;
  ChainReduceFn reduce;
  int max_rounds = 1;
  ChainPredicate until;  // optional; checked after every round
};

struct ChainJob {
  /// Round-1 ingest: one external record -> emitted pairs (grouped and
  /// reduced by stages[0].reduce).
  MapFn ingest;
  std::vector<ChainStage> stages;
  /// The static channel, realigned once and pinned (see StaticTables).
  KvVec static_input;
  /// Shuffle/transport tuning. mappers/reducers/resident_rounds are
  /// filled in by the runner; combiners are not supported inside chains
  /// (stage maps differ per round, a chain-wide combiner would be wrong
  /// for at least one of them).
  core::Config tuning;
};

/// What one completed round did (work rounds only — the empty teardown
/// barrier a converged chain needs is visible in
/// ChainResult::report.round_totals but adds no entry here).
struct RoundReport {
  int stage = 0;           // index into ChainJob::stages
  int round_in_stage = 1;  // 1-based within the stage
  RoundCounters counters;  // aggregated user counters of the round
  std::uint64_t resident_pairs_out = 0;  // sealed pairs after the round
  std::uint64_t resident_bytes_out = 0;
};

struct ChainResult {
  /// Final resident partitions, concatenated and sorted by (key, value)
  /// — the same contract as JobResult::outputs.
  KvVec outputs;
  std::vector<RoundReport> rounds;
  /// Master fold: totals plus one Stats entry per barrier in
  /// report.round_totals (chained runs) — the counter trail proving
  /// rounds >= 2 ingest zero external and zero static bytes.
  core::JobReport report;

  KvVec take_outputs() noexcept { return std::move(outputs); }
};

/// Runs chained MapReduce jobs on an in-process MPI-D world of
/// 1 + partitions mapper ranks + partitions reducer ranks. The mapper
/// and reducer counts are equal by construction: mapper i of round N+1
/// reads the partition reducer i sealed in round N, in place.
class JobChain {
 public:
  explicit JobChain(int partitions);

  /// One external record source per partition (exactly `partitions`
  /// entries), consumed by round 1's ingest.
  ChainResult run(const ChainJob& job, std::vector<RecordSource> inputs) const;

  /// Convenience: splits a text corpus into per-partition line sources.
  ChainResult run_on_text(const ChainJob& job, std::string_view text) const;

  /// The re-ingest ablation: the SAME rounds, but every round is a fresh
  /// one-shot world — round N's output is fed back as round N+1's ingest
  /// and the static channel is re-realigned every round. Outputs are
  /// byte-identical to run(); the counter deltas (ingest_bytes,
  /// static_bytes_reshuffled) are what residency saves.
  ChainResult run_unchained(const ChainJob& job,
                            std::vector<RecordSource> inputs) const;
  ChainResult run_unchained_on_text(const ChainJob& job,
                                    std::string_view text) const;

  int partitions() const noexcept { return partitions_; }

 private:
  int partitions_;
};

namespace chain_detail {

/// The chain's round plan cursor, advanced identically on every rank
/// (the decision is a pure function of the aggregated round counters).
struct PlanCursor {
  std::size_t stage = 0;
  int round_in_stage = 1;  // 1-based
};

/// Advances `cur` past one completed round given that round's aggregated
/// counters; false when the chain is finished.
bool advance_plan(const ChainJob& job, PlanCursor& cur,
                  const RoundCounters& counters);

/// True when the round `cur` points at is statically the last barrier the
/// plan can reach (last stage, last round): ranks may finalize() directly
/// instead of arming a round that could never run.
bool statically_last(const ChainJob& job, const PlanCursor& cur);

/// Upper bound on rounds the plan can run (sum of stage budgets).
int total_max_rounds(const ChainJob& job);

/// Validates stage shape (>= 1 stage, functions set, positive budgets).
void validate_job(const ChainJob& job);

}  // namespace chain_detail

}  // namespace mpid::mapred
