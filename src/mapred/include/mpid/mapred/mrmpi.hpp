// An MR-MPI-style baseline library (Plimpton & Devine, cited as [15, 16]
// in the paper's related work).
//
// Unlike MPI-D there is no master and no streaming shuffle: all ranks are
// symmetric peers; map() fills a local key-value buffer, aggregate()
// redistributes it by key hash with a personalized all-to-all exchange,
// convert() groups local pairs into key-multivalue form, and reduce()
// processes each group. This is the "MapReduce as a library over MPI
// collectives" design point the paper positions MPI-D against.
//
//   mrmpi::MapReduce mr(comm);
//   mr.map(ntasks, [](int task, mrmpi::Emitter& out) { ... });
//   mr.collate();           // aggregate() + convert()
//   mr.reduce([](key, values, out) { ... });
//   auto results = mr.gather(0);
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpid/minimpi/comm.hpp"

namespace mpid::mapred::mrmpi {

class Emitter {
 public:
  void emit(std::string_view key, std::string_view value) {
    pairs_.emplace_back(std::string(key), std::string(value));
  }

 private:
  friend class MapReduce;
  std::vector<std::pair<std::string, std::string>> pairs_;
};

using MapTaskFn = std::function<void(int task, Emitter&)>;
using ReduceGroupFn = std::function<void(
    std::string_view key, std::span<const std::string> values, Emitter&)>;

class MapReduce {
 public:
  explicit MapReduce(minimpi::Comm& comm);

  /// Runs `ntasks` map tasks distributed cyclically over ranks; each task
  /// appends to this rank's local KV buffer. Collective.
  void map(int ntasks, const MapTaskFn& fn);

  /// Redistributes local pairs so that all pairs of one key land on
  /// hash(key) % size. Collective (all-to-all).
  void aggregate();

  /// Groups this rank's local pairs by key into key-multivalue form.
  /// Local operation.
  void convert();

  /// aggregate() followed by convert() — MR-MPI's collate().
  void collate();

  /// Applies `fn` to every local key group (requires convert()); the
  /// emitted pairs become the new local KV buffer.
  void reduce(const ReduceGroupFn& fn);

  /// Gathers every rank's local pairs at `root`, sorted by (key, value);
  /// other ranks get an empty vector. Collective.
  std::vector<std::pair<std::string, std::string>> gather(minimpi::Rank root);

  /// Local pair count (after map/aggregate/reduce).
  std::size_t local_pairs() const noexcept { return kv_.size(); }
  /// Local group count (after convert()).
  std::size_t local_groups() const noexcept { return kmv_.size(); }

 private:
  minimpi::Comm& comm_;
  minimpi::Comm shuffle_comm_;
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::pair<std::string, std::vector<std::string>>> kmv_;
  bool converted_ = false;
};

}  // namespace mpid::mapred::mrmpi
