// Input handling for the mapred layer: record readers and split helpers.
//
// Mirrors the Hadoop shapes the paper assumes: inputs are line-oriented
// text; a job's input is divided into one split per mapper at line
// boundaries ("we distribute all input data across all nodes to guarantee
// the data accessing locally as in Hadoop").
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mpid::mapred {

/// A pull-based record source; returns nullopt at end of input. Used so
/// synthetic workloads can stream records without materializing them.
using RecordSource = std::function<std::optional<std::string>()>;

/// Iterates newline-separated records of a borrowed text buffer. A final
/// line without a trailing newline is still a record; empty lines are
/// records too (matching Hadoop's TextInputFormat line reader).
class LineReader {
 public:
  explicit LineReader(std::string_view text) noexcept : rest_(text) {}

  std::optional<std::string_view> next() noexcept;

 private:
  std::string_view rest_;
  bool exhausted_ = false;
};

/// Splits `text` into `splits` contiguous chunks of roughly equal size,
/// each ending on a line boundary (the last chunk takes the remainder).
/// Never splits mid-line; returns fewer chunks when there are fewer lines
/// than requested (empty chunks pad the tail so the result always has
/// exactly `splits` entries).
std::vector<std::string_view> split_text(std::string_view text,
                                         int splits);

/// Wraps a vector of records as a RecordSource.
RecordSource vector_source(std::vector<std::string> records);

/// Wraps a text buffer as a line RecordSource (copies each line out).
RecordSource line_source(std::string_view text);

}  // namespace mpid::mapred
