// The MapReduce programming layer over MPI-D.
//
// Section IV.B of the paper notes that "typical MapReduce applications in
// Hadoop always do not directly invoke communication operations, but
// through context collectors to hide the communication processes. Actually
// our MPI-D interfaces can be also adopted inner the map and reduce
// runners" — this module is exactly that adoption: applications write
// map/reduce functions against context collectors and never see MPI_D_Send
// / MPI_D_Recv.
//
//   JobDef job;
//   job.map = [](std::string_view line, MapContext& ctx) {
//     for (auto word : tokenize(line)) ctx.emit(word, "1");
//   };
//   job.reduce = [](std::string_view key, std::span<const std::string> vs,
//                   ReduceContext& ctx) {
//     ctx.emit(key, std::to_string(sum(vs)));
//   };
//   JobResult r = JobRunner(/*mappers=*/4, /*reducers=*/2).run(job, inputs);
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpid/core/config.hpp"
#include "mpid/mapred/input.hpp"

namespace mpid::mapred {

class MapContext {
 public:
  /// Emits one intermediate key-value pair (an MPI_D_Send underneath).
  void emit(std::string_view key, std::string_view value) {
    sink_(key, value);
  }

  /// 0-based index of this mapper.
  int mapper_index() const noexcept { return mapper_index_; }

  using Sink = std::function<void(std::string_view, std::string_view)>;

  /// Constructed by job runners (JobRunner, minihadoop::MiniCluster), not
  /// by map functions.
  MapContext(Sink sink, int mapper_index)
      : sink_(std::move(sink)), mapper_index_(mapper_index) {}

 private:
  Sink sink_;
  int mapper_index_;
};

class ReduceContext {
 public:
  /// Emits one final output pair of the job.
  void emit(std::string_view key, std::string_view value) {
    outputs_.emplace_back(std::string(key), std::string(value));
  }

  int reducer_index() const noexcept { return reducer_index_; }

  /// Constructed by job runners, not by reduce functions.
  explicit ReduceContext(int reducer_index) : reducer_index_(reducer_index) {}

  /// The pairs emitted so far (read by job runners to collect output).
  const std::vector<std::pair<std::string, std::string>>& emitted()
      const noexcept {
    return outputs_;
  }
  std::vector<std::pair<std::string, std::string>> take_emitted() noexcept {
    return std::move(outputs_);
  }

 private:
  friend class JobRunner;
  std::vector<std::pair<std::string, std::string>> outputs_;
  int reducer_index_;
};

using MapFn = std::function<void(std::string_view record, MapContext&)>;
using ReduceFn = std::function<void(
    std::string_view key, std::span<const std::string> values, ReduceContext&)>;

struct JobDef {
  MapFn map;
  ReduceFn reduce;
  /// Optional local combiner (see core::Config::combiner).
  core::Combiner combiner;
  /// MPI-D tuning; the runner fills in mappers/reducers.
  core::Config tuning;
  /// Present keys to reduce() in lexicographic order (Hadoop semantics).
  /// When false, reducer-local hash order is used (faster, unordered).
  bool sorted_reduce = true;

  /// Streaming merge reduce: mappers ship key-sorted frames and reducers
  /// k-way merge them (core::SortedFrameMerger) instead of materializing
  /// a hash table of all groups — reducer memory stays bounded by one
  /// group plus one cursor per frame (Hadoop's merge phase). Implies
  /// sorted key order at reduce(). Combiner semantics are unchanged.
  bool streaming_merge_reduce = false;
};

struct JobResult {
  /// Final output pairs from all reducers, sorted by (key, value).
  std::vector<std::pair<std::string, std::string>> outputs;
  /// The master's aggregated transport statistics.
  core::JobReport report;

  /// Moves the sorted outputs out of the result — the zero-copy
  /// collection path: reducer contexts move into this vector, and
  /// take_outputs() moves it to the caller, so no pair is copied after
  /// reduce() emitted it. The result's outputs are empty afterwards.
  std::vector<std::pair<std::string, std::string>> take_outputs() noexcept {
    return std::move(outputs);
  }
};

/// Runs MapReduce jobs on an in-process MPI-D world of
/// 1 + mappers + reducers ranks.
class JobRunner {
 public:
  JobRunner(int mappers, int reducers);

  /// One record source per mapper (exactly `mappers` entries).
  JobResult run(const JobDef& job, std::vector<RecordSource> inputs) const;

  /// Convenience: splits a text corpus into per-mapper line sources.
  JobResult run_on_text(const JobDef& job, std::string_view text) const;

  int mappers() const noexcept { return mappers_; }
  int reducers() const noexcept { return reducers_; }

 private:
  int mappers_;
  int reducers_;
};

}  // namespace mpid::mapred
