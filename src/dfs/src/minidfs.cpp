#include "mpid/dfs/minidfs.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace mpid::dfs {

MiniDfs::MiniDfs(int datanodes, DfsConfig config) : config_(config) {
  if (datanodes < 1) {
    throw std::invalid_argument("MiniDfs: need at least one datanode");
  }
  if (config.replication < 1 || config.replication > datanodes) {
    throw std::invalid_argument(
        "MiniDfs: replication must be in [1, datanodes]");
  }
  if (config.block_size_bytes == 0) {
    throw std::invalid_argument("MiniDfs: zero block size");
  }
  alive_.assign(static_cast<std::size_t>(datanodes), true);
}

void MiniDfs::check_datanode(int id, const char* what) const {
  if (id < 0 || id >= static_cast<int>(alive_.size())) {
    throw std::out_of_range(std::string("MiniDfs: ") + what +
                            ": bad datanode id");
  }
}

void MiniDfs::create(const std::string& path, std::string_view data) {
  std::lock_guard lock(mu_);
  // Overwrite semantics: drop any previous blocks.
  if (const auto it = names_.find(path); it != names_.end()) {
    for (const auto id : it->second.blocks) blocks_.erase(id);
    names_.erase(it);
  }

  FileEntry entry;
  entry.size = data.size();
  std::size_t offset = 0;
  do {
    const std::size_t len = std::min<std::size_t>(
        data.size() - offset, config_.block_size_bytes);
    BlockEntry block;
    block.data.assign(data.substr(offset, len));
    // Round-robin placement; replicas on the following distinct nodes.
    for (int r = 0; r < config_.replication; ++r) {
      block.replicas.push_back(
          (next_placement_ + r) % static_cast<int>(alive_.size()));
    }
    next_placement_ = (next_placement_ + 1) % static_cast<int>(alive_.size());
    const auto id = next_block_id_++;
    blocks_.emplace(id, std::move(block));
    entry.blocks.push_back(id);
    offset += len;
  } while (offset < data.size());
  names_.emplace(path, std::move(entry));
}

const MiniDfs::BlockEntry& MiniDfs::block_for_read(std::uint64_t id) const {
  const auto& block = blocks_.at(id);
  for (const int node : block.replicas) {
    if (alive_[static_cast<std::size_t>(node)]) return block;
  }
  throw std::runtime_error("MiniDfs: block " + std::to_string(id) +
                           " has no live replica");
}

std::string MiniDfs::read(const std::string& path) const {
  std::lock_guard lock(mu_);
  const auto& entry = names_.at(path);
  std::string out;
  out.reserve(entry.size);
  for (const auto id : entry.blocks) out += block_for_read(id).data;
  return out;
}

std::string MiniDfs::read_range(const std::string& path, std::uint64_t offset,
                                std::uint64_t length) const {
  std::lock_guard lock(mu_);
  const auto& entry = names_.at(path);
  if (offset > entry.size) {
    throw std::out_of_range("MiniDfs: read_range past end of file");
  }
  length = std::min(length, entry.size - offset);
  std::string out;
  out.reserve(length);
  std::uint64_t block_start = 0;
  for (const auto id : entry.blocks) {
    const auto& block = blocks_.at(id);
    const std::uint64_t block_end = block_start + block.data.size();
    if (block_end > offset && block_start < offset + length) {
      (void)block_for_read(id);  // liveness check
      const std::uint64_t from = std::max(offset, block_start) - block_start;
      const std::uint64_t to =
          std::min(offset + length, block_end) - block_start;
      out.append(block.data, from, to - from);
    }
    block_start = block_end;
    if (block_start >= offset + length) break;
  }
  return out;
}

bool MiniDfs::exists(const std::string& path) const {
  std::lock_guard lock(mu_);
  return names_.contains(path);
}

std::uint64_t MiniDfs::file_size(const std::string& path) const {
  std::lock_guard lock(mu_);
  return names_.at(path).size;
}

void MiniDfs::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = names_.find(path);
  if (it == names_.end()) throw std::out_of_range("MiniDfs: no such file");
  for (const auto id : it->second.blocks) blocks_.erase(id);
  names_.erase(it);
}

std::vector<std::string> MiniDfs::list(std::string_view prefix) const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, entry] : names_) {
    if (path.starts_with(prefix)) out.push_back(path);
  }
  return out;  // std::map iterates sorted
}

std::vector<BlockLocation> MiniDfs::locate(const std::string& path) const {
  std::lock_guard lock(mu_);
  const auto& entry = names_.at(path);
  std::vector<BlockLocation> out;
  out.reserve(entry.blocks.size());
  for (const auto id : entry.blocks) {
    const auto& block = blocks_.at(id);
    out.push_back({id, block.data.size(), block.replicas});
  }
  return out;
}

std::vector<mapred::RecordSource> MiniDfs::open_splits(
    const std::string& path, int splits) const {
  // Read under the lock, then split at line boundaries like a Hadoop
  // input format (each source owns its chunk copy).
  const std::string data = read(path);
  const auto chunks = mapred::split_text(data, splits);
  std::vector<mapred::RecordSource> sources;
  sources.reserve(chunks.size());
  for (const auto chunk : chunks) sources.push_back(mapred::line_source(chunk));
  return sources;
}

void MiniDfs::kill_datanode(int id) {
  std::lock_guard lock(mu_);
  check_datanode(id, "kill_datanode");
  alive_[static_cast<std::size_t>(id)] = false;
}

void MiniDfs::revive_datanode(int id) {
  std::lock_guard lock(mu_);
  check_datanode(id, "revive_datanode");
  alive_[static_cast<std::size_t>(id)] = true;
}

bool MiniDfs::datanode_alive(int id) const {
  std::lock_guard lock(mu_);
  check_datanode(id, "datanode_alive");
  return alive_[static_cast<std::size_t>(id)];
}

std::uint64_t MiniDfs::bytes_stored_on(int id) const {
  std::lock_guard lock(mu_);
  check_datanode(id, "bytes_stored_on");
  std::uint64_t total = 0;
  for (const auto& [block_id, block] : blocks_) {
    if (std::find(block.replicas.begin(), block.replicas.end(), id) !=
        block.replicas.end()) {
      total += block.data.size();
    }
  }
  return total;
}

std::uint64_t MiniDfs::total_block_replicas() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, block] : blocks_) total += block.replicas.size();
  return total;
}

std::uint64_t MiniDfs::missing_blocks() const {
  std::lock_guard lock(mu_);
  std::uint64_t missing = 0;
  for (const auto& [id, block] : blocks_) {
    const bool any_alive =
        std::any_of(block.replicas.begin(), block.replicas.end(),
                    [&](int node) {
                      return alive_[static_cast<std::size_t>(node)];
                    });
    if (!any_alive) ++missing;
  }
  return missing;
}

}  // namespace mpid::dfs
