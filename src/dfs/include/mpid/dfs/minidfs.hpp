// MiniDfs: a functional, in-memory HDFS analog.
//
// The paper's platform stores job input in HDFS: a namenode mapping files
// to block lists and datanodes holding replicated blocks. This module is
// that substrate, executable: files are split into blocks on write,
// blocks are placed round-robin with `replication` copies on distinct
// datanodes, reads pick the first live replica, and datanodes can be
// killed/revived to exercise the failure paths. The mapred layer reads
// job input from it through open_splits().
//
// Thread safety: all public methods are safe to call from concurrent
// mapper threads (a single mutex guards namespace and storage — adequate
// for in-process scale).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mpid/mapred/input.hpp"

namespace mpid::dfs {

struct DfsConfig {
  /// Demo-scale default; the real cluster's 64 MB is configurable.
  std::uint64_t block_size_bytes = 4 * 1024 * 1024;
  int replication = 2;
};

/// Where one block's replicas live.
struct BlockLocation {
  std::uint64_t block_id = 0;
  std::uint64_t bytes = 0;
  std::vector<int> datanodes;  // replica holders, primary first
};

class MiniDfs {
 public:
  MiniDfs(int datanodes, DfsConfig config = {});

  // ------------------------------------------------------- client API --
  /// Creates (or overwrites) a file from a byte buffer, splitting it into
  /// blocks and replicating them.
  void create(const std::string& path, std::string_view data);

  /// Reads a whole file. Throws std::runtime_error if any block has no
  /// live replica, std::out_of_range for unknown paths.
  std::string read(const std::string& path) const;

  /// Reads [offset, offset+length) of a file.
  std::string read_range(const std::string& path, std::uint64_t offset,
                         std::uint64_t length) const;

  bool exists(const std::string& path) const;
  std::uint64_t file_size(const std::string& path) const;
  void remove(const std::string& path);

  /// Paths with the given prefix, sorted.
  std::vector<std::string> list(std::string_view prefix) const;

  /// Block metadata of a file (the namenode's getBlockLocations).
  std::vector<BlockLocation> locate(const std::string& path) const;

  // ------------------------------------------------ mapred integration --
  /// One line-record source per split; splits are contiguous block ranges
  /// re-cut at line boundaries (records never straddle splits).
  std::vector<mapred::RecordSource> open_splits(const std::string& path,
                                                int splits) const;

  // ------------------------------------------------- failure injection --
  void kill_datanode(int id);
  void revive_datanode(int id);
  bool datanode_alive(int id) const;

  // ------------------------------------------------------- diagnostics --
  int datanodes() const noexcept { return static_cast<int>(alive_.size()); }
  std::uint64_t bytes_stored_on(int id) const;
  std::uint64_t total_block_replicas() const;
  /// Count of blocks that currently have no live replica.
  std::uint64_t missing_blocks() const;

 private:
  struct FileEntry {
    std::vector<std::uint64_t> blocks;  // block ids in order
    std::uint64_t size = 0;
  };
  struct BlockEntry {
    std::string data;
    std::vector<int> replicas;
  };

  void check_datanode(int id, const char* what) const;
  const BlockEntry& block_for_read(std::uint64_t id) const;  // throws if dead

  mutable std::mutex mu_;
  DfsConfig config_;
  std::vector<bool> alive_;
  std::map<std::string, FileEntry> names_;      // namenode namespace
  std::map<std::uint64_t, BlockEntry> blocks_;  // block store (by id)
  std::uint64_t next_block_id_ = 0;
  int next_placement_ = 0;  // round-robin cursor
};

}  // namespace mpid::dfs
