#include "mpid/hrpc/http.hpp"

#include <charconv>

namespace mpid::hrpc {

namespace {

void write_text(Endpoint& endpoint, std::string_view text) {
  endpoint.write({reinterpret_cast<const std::byte*>(text.data()),
                  text.size()});
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
std::string read_line(Endpoint& endpoint) {
  std::string line;
  for (;;) {
    const auto byte = endpoint.read_exactly(1);
    const char c = static_cast<char>(byte[0]);
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    line.push_back(c);
    if (line.size() > 64 * 1024) {
      throw std::runtime_error("hrpc: oversized http line");
    }
  }
}

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

}  // namespace

// ------------------------------------------------------------- server --

HttpServer::~HttpServer() { shutdown(); }

void HttpServer::add_servlet(const std::string& path, Servlet servlet) {
  add_raw_servlet(path,
                  [servlet = std::move(servlet)](std::string_view query) {
                    HttpResponse response;
                    response.body = servlet(query);
                    return response;
                  });
}

void HttpServer::add_raw_servlet(const std::string& path, RawServlet servlet) {
  std::lock_guard lock(mu_);
  servlets_[path] = std::move(servlet);
}

void HttpServer::accept(Endpoint endpoint) {
  std::lock_guard lock(mu_);
  if (down_) throw std::logic_error("hrpc: accept after shutdown");
  connections_.push_back(std::make_unique<Endpoint>(std::move(endpoint)));
  const std::size_t index = connections_.size() - 1;
  service_threads_.emplace_back([this, index] { serve(index); });
}

void HttpServer::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (down_) return;
    down_ = true;
    for (auto& connection : connections_) connection->close();
  }
  for (auto& thread : service_threads_) thread.join();
  service_threads_.clear();
}

std::uint64_t HttpServer::requests_served() const {
  std::lock_guard lock(mu_);
  return requests_served_;
}

HttpResponse HttpServer::handle(const std::string& request_line) {
  // "GET <target> HTTP/1.x"
  const auto first_space = request_line.find(' ');
  const auto second_space = request_line.find(' ', first_space + 1);
  if (first_space == std::string::npos || second_space == std::string::npos ||
      request_line.substr(0, first_space) != "GET") {
    return {400, "bad request line"};
  }
  const std::string target =
      request_line.substr(first_space + 1, second_space - first_space - 1);
  const auto question = target.find('?');
  const std::string path = target.substr(0, question);
  const std::string query =
      question == std::string::npos ? "" : target.substr(question + 1);

  RawServlet servlet;
  {
    std::lock_guard lock(mu_);
    const auto it = servlets_.find(path);
    if (it == servlets_.end()) return {404, "no servlet at " + path};
    servlet = it->second;
  }
  try {
    HttpResponse response = servlet(query);
    std::lock_guard lock(mu_);
    ++requests_served_;
    return response;
  } catch (const std::exception& e) {
    return {500, e.what()};
  }
}

void HttpServer::serve(std::size_t connection_index) {
  Endpoint* endpoint;
  {
    std::lock_guard lock(mu_);
    endpoint = connections_[connection_index].get();
  }
  try {
    for (;;) {
      const auto request_line = read_line(*endpoint);
      // Drain headers until the blank line.
      while (!read_line(*endpoint).empty()) {
      }
      const auto response = handle(request_line);
      std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                         reason_for(response.status) +
                         "\r\nContent-Length: " +
                         std::to_string(response.body.size()) + "\r\n";
      for (const auto& [name, value] : response.headers) {
        head += name + ": " + value + "\r\n";
      }
      head += "\r\n";
      write_text(*endpoint, head);
      write_text(*endpoint, response.body);
    }
  } catch (const std::exception&) {
    // Connection closed.
  }
}

// ------------------------------------------------------------- client --

HttpClient::HttpClient(HttpServer& server, HttpClientOptions options)
    : server_(&server), options_(options) {
  std::lock_guard lock(mu_);
  reconnect();
}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  std::lock_guard lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (endpoint_) endpoint_->close();
}

void HttpClient::reconnect() {
  if (endpoint_) endpoint_->close();
  auto [client_side, server_side] = make_connection();
  client_side.set_read_timeout(options_.read_timeout);
  endpoint_ = std::make_unique<Endpoint>(std::move(client_side));
  server_->accept(std::move(server_side));
}

HttpResponse HttpClient::get(const std::string& target) {
  std::lock_guard lock(mu_);
  for (int attempt = 0;; ++attempt) {
    if (closed_) throw std::runtime_error("hrpc: http client closed");
    try {
      write_text(*endpoint_, "GET " + target + " HTTP/1.0\r\n\r\n");

      const auto status_line = read_line(*endpoint_);
      // "HTTP/1.0 <code> <reason>"
      const auto first_space = status_line.find(' ');
      if (first_space == std::string::npos) {
        throw std::runtime_error("hrpc: bad http status line");
      }
      int status = 0;
      std::from_chars(status_line.data() + first_space + 1,
                      status_line.data() + status_line.size(), status);

      std::size_t content_length = 0;
      HttpResponse response;
      for (;;) {
        const auto header = read_line(*endpoint_);
        if (header.empty()) break;
        constexpr std::string_view kContentLength = "Content-Length: ";
        if (header.starts_with(kContentLength)) {
          content_length = std::stoull(header.substr(kContentLength.size()));
        } else if (const auto colon = header.find(": ");
                   colon != std::string::npos) {
          response.headers.emplace_back(header.substr(0, colon),
                                        header.substr(colon + 2));
        }
      }
      const auto body_bytes = endpoint_->read_exactly(content_length);
      response.status = status;
      response.body.assign(reinterpret_cast<const char*>(body_bytes.data()),
                           body_bytes.size());
      return response;
    } catch (const std::exception&) {
      // Timeout, EOF or a dead connection: reconnect and re-issue (GETs
      // are idempotent) until the retry budget is spent.
      if (attempt >= options_.max_retries) throw;
      std::this_thread::sleep_for(options_.retry_backoff * (1LL << attempt));
      reconnect();
    }
  }
}

}  // namespace mpid::hrpc
