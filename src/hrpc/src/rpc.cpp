#include "mpid/hrpc/rpc.hpp"

namespace mpid::hrpc {

namespace {

constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusError = 1;

void write_frame(Endpoint& endpoint, std::span<const std::byte> body) {
  DataOut header;
  header.write_i32(static_cast<std::int32_t>(body.size()));
  endpoint.write(header.buffer());
  endpoint.write(body);
}

std::vector<std::byte> read_frame(Endpoint& endpoint) {
  const auto header = endpoint.read_exactly(4);
  DataIn in(header);
  const auto len = in.read_i32();
  if (len < 0) throw std::runtime_error("hrpc: negative frame length");
  return endpoint.read_exactly(static_cast<std::size_t>(len));
}

}  // namespace

// ------------------------------------------------------------- server --

RpcServer::RpcServer(int handler_threads) {
  if (handler_threads < 1) {
    throw std::invalid_argument("hrpc: need >= 1 handler thread");
  }
  handler_threads_.reserve(static_cast<std::size_t>(handler_threads));
  for (int h = 0; h < handler_threads; ++h) {
    handler_threads_.emplace_back([this] { handler_loop(); });
  }
}

RpcServer::~RpcServer() { shutdown(); }

void RpcServer::register_method(const std::string& protocol,
                                std::int64_t version,
                                const std::string& method, RpcMethod fn) {
  std::lock_guard lock(mu_);
  protocols_[ProtocolKey{protocol, version}][method] = std::move(fn);
}

void RpcServer::accept(Endpoint endpoint) {
  std::lock_guard lock(mu_);
  if (down_) throw std::logic_error("hrpc: accept after shutdown");
  connections_.push_back(std::make_unique<Connection>(std::move(endpoint)));
  const std::size_t index = connections_.size() - 1;
  service_threads_.emplace_back([this, index] { serve(index); });
}

void RpcServer::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (down_) return;
    down_ = true;
    for (auto& connection : connections_) connection->endpoint.close();
  }
  call_ready_.notify_all();
  for (auto& thread : service_threads_) thread.join();
  service_threads_.clear();
  for (auto& thread : handler_threads_) thread.join();
  handler_threads_.clear();
}

std::uint64_t RpcServer::calls_served() const {
  std::lock_guard lock(mu_);
  return calls_served_;
}

std::vector<std::byte> RpcServer::dispatch(std::span<const std::byte> frame) {
  DataIn in(frame);
  const auto call_id = in.read_i32();
  DataOut out;
  out.write_i32(call_id);
  try {
    const auto protocol = in.read_string();
    const auto version = in.read_i64();
    const auto method = in.read_string();
    const auto args = in.read_bytes();

    RpcMethod fn;
    {
      std::lock_guard lock(mu_);
      const auto proto_it = protocols_.find(ProtocolKey{protocol, version});
      if (proto_it == protocols_.end()) {
        throw RpcError("unknown protocol " + protocol + " v" +
                       std::to_string(version));
      }
      const auto method_it = proto_it->second.find(method);
      if (method_it == proto_it->second.end()) {
        throw RpcError("unknown method " + protocol + "::" + method);
      }
      fn = method_it->second;
    }
    const auto result = fn(args);
    out.write_u8(kStatusOk);
    out.write_bytes(result);
    std::lock_guard lock(mu_);
    ++calls_served_;
  } catch (const std::exception& e) {
    out.write_u8(kStatusError);
    out.write_string(e.what());
  }
  return out.take();
}

void RpcServer::serve(std::size_t connection_index) {
  Connection* connection;
  {
    std::lock_guard lock(mu_);
    connection = connections_[connection_index].get();
  }
  try {
    for (;;) {
      auto frame = read_frame(connection->endpoint);
      {
        std::lock_guard lock(mu_);
        call_queue_.push_back({connection_index, std::move(frame)});
      }
      call_ready_.notify_one();
    }
  } catch (const std::exception&) {
    // EOF or closed pipe: the connection is done.
  }
}

void RpcServer::handler_loop() {
  for (;;) {
    QueuedCall call;
    {
      std::unique_lock lock(mu_);
      call_ready_.wait(lock, [&] { return down_ || !call_queue_.empty(); });
      if (call_queue_.empty()) return;  // down_ and drained
      call = std::move(call_queue_.front());
      call_queue_.pop_front();
    }
    const auto response = dispatch(call.frame);
    Connection* connection;
    {
      std::lock_guard lock(mu_);
      connection = connections_[call.connection_index].get();
    }
    try {
      std::lock_guard write_lock(connection->write_mu);
      write_frame(connection->endpoint, response);
    } catch (const std::exception&) {
      // Client went away mid-call; drop the response.
    }
  }
}

// ------------------------------------------------------------- client --

RpcClient::RpcClient(RpcServer& server, RpcClientOptions options)
    : options_(options) {
  auto [client_side, server_side] = make_connection();
  endpoint_ = std::make_unique<Endpoint>(std::move(client_side));
  server.accept(std::move(server_side));
  reader_ = std::thread([this] { reader_loop(); });
}

RpcClient::~RpcClient() {
  close();
  if (reader_.joinable()) reader_.join();
}

void RpcClient::close() {
  {
    std::lock_guard lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  endpoint_->close();
  cv_.notify_all();
}

void RpcClient::reader_loop() {
  try {
    for (;;) {
      auto frame = read_frame(*endpoint_);
      DataIn in(frame);
      const auto call_id = in.read_i32();
      std::lock_guard lock(mu_);
      const auto it = pending_.find(call_id);
      if (it != pending_.end()) {
        it->second.response = std::move(frame);
        cv_.notify_all();
      }
    }
  } catch (const std::exception&) {
    std::lock_guard lock(mu_);
    for (auto& [id, call] : pending_) call.failed = true;
    closed_ = true;
    cv_.notify_all();
  }
}

std::vector<std::byte> RpcClient::call_once(const std::string& protocol,
                                            std::int64_t version,
                                            const std::string& method,
                                            std::span<const std::byte> args) {
  std::int32_t call_id;
  DataOut out;
  {
    std::lock_guard lock(mu_);
    if (closed_) throw RpcError("client closed");
    call_id = next_call_id_++;
    pending_.emplace(call_id, PendingCall{});
  }
  out.write_i32(call_id);
  out.write_string(protocol);
  out.write_i64(version);
  out.write_string(method);
  out.write_bytes(args);
  {
    // Frames from concurrent callers must not interleave.
    std::lock_guard lock(write_mu_);
    write_frame(*endpoint_, out.buffer());
  }

  std::unique_lock lock(mu_);
  const auto done = [&] {
    const auto& call = pending_.at(call_id);
    return call.response.has_value() || call.failed || closed_;
  };
  if (options_.call_timeout == kNoTimeout) {
    cv_.wait(lock, done);
  } else if (!cv_.wait_for(lock, options_.call_timeout, done)) {
    // Abandon the call id: a late response is dropped by the reader.
    pending_.erase(call_id);
    throw TimedOut();
  }
  const auto node = pending_.extract(call_id);
  const auto& call = node.mapped();
  if (!call.response.has_value()) {
    throw RpcError("connection closed while waiting for response");
  }
  DataIn in(*call.response);
  (void)in.read_i32();  // call id, already matched
  const auto status = in.read_u8();
  auto payload = in.read_bytes();
  if (status != kStatusOk) {
    throw RpcError(std::string(reinterpret_cast<const char*>(payload.data()),
                               payload.size()));
  }
  return payload;
}

std::vector<std::byte> RpcClient::call(const std::string& protocol,
                                       std::int64_t version,
                                       const std::string& method,
                                       std::span<const std::byte> args) {
  for (int attempt = 0;; ++attempt) {
    try {
      return call_once(protocol, version, method, args);
    } catch (const TimedOut&) {
      // Only a timed-out call is retried: the connection is still up, the
      // server was just slow (or the reply was lost to fault injection).
      // RpcError (dispatch failure / dead connection) propagates.
      if (attempt >= options_.max_retries) {
        throw RpcError("rpc call " + method + " timed out");
      }
      std::this_thread::sleep_for(options_.retry_backoff * (1LL << attempt));
    }
  }
}

std::string RpcClient::call_string(const std::string& protocol,
                                   std::int64_t version,
                                   const std::string& method,
                                   std::string_view arg) {
  const auto result =
      call(protocol, version, method,
           std::span<const std::byte>(
               reinterpret_cast<const std::byte*>(arg.data()), arg.size()));
  return {reinterpret_cast<const char*>(result.data()), result.size()};
}

}  // namespace mpid::hrpc
