// A functional embedded-HTTP-server analog of Hadoop's Jetty usage.
//
// The tasktracker serves map outputs through a servlet mounted on an
// embedded Jetty; reducers issue GETs like
//   /mapOutput?job=j&map=m&reduce=r
// This module reproduces that path over in-process connections: servlet
// registration by path prefix, a minimal HTTP/1.0-style request/response
// exchange with headers and Content-Length, and a blocking client GET.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "mpid/hrpc/pipe.hpp"

namespace mpid::hrpc {

struct HttpResponse {
  int status = 200;
  std::string body;
  /// Extra response headers (name, value), e.g. the shuffle servlet's
  /// codec flag. Content-Length is always synthesized by the server and
  /// never appears here.
  std::vector<std::pair<std::string, std::string>> headers;

  /// The value of header `name` (exact match), or nullptr.
  const std::string* header(std::string_view name) const noexcept {
    for (const auto& [n, v] : headers) {
      if (n == name) return &v;
    }
    return nullptr;
  }
};

/// Servlet: receives the query string (the part after '?', possibly
/// empty) and produces the response body. Throwing yields a 500.
using Servlet = std::function<std::string(std::string_view query)>;

/// Servlet that also controls status and response headers (the form the
/// map-output servlet uses to flag compressed segments).
using RawServlet = std::function<HttpResponse(std::string_view query)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Mounts a servlet at an exact path (e.g. "/mapOutput").
  void add_servlet(const std::string& path, Servlet servlet);

  /// Mounts a header-setting servlet (see RawServlet).
  void add_raw_servlet(const std::string& path, RawServlet servlet);

  /// Accepts a connection; requests on it are served until it closes.
  void accept(Endpoint endpoint);

  void shutdown();

  std::uint64_t requests_served() const;

 private:
  void serve(std::size_t connection_index);
  HttpResponse handle(const std::string& request_line);

  mutable std::mutex mu_;
  std::map<std::string, RawServlet> servlets_;
  std::vector<std::unique_ptr<Endpoint>> connections_;
  std::vector<std::thread> service_threads_;
  std::uint64_t requests_served_ = 0;
  bool down_ = false;
};

/// Timeout/retry policy of an HttpClient (Hadoop's shuffle copier sets a
/// read timeout and retries failed fetches; a dead server used to hang
/// the reducer forever).
struct HttpClientOptions {
  /// Per-read deadline; kNoTimeout restores the original blocking reads.
  std::chrono::nanoseconds read_timeout = kNoTimeout;
  /// Transport-level retries of one get(): on timeout/EOF the client
  /// reconnects and re-issues the request (GETs are idempotent).
  int max_retries = 0;
  /// Backoff before retry r is retry_backoff << r.
  std::chrono::nanoseconds retry_backoff = std::chrono::milliseconds(1);
};

/// A blocking HTTP client over one connection; keep-alive: multiple GETs
/// reuse the connection (serialize calls per client).
class HttpClient {
 public:
  explicit HttpClient(HttpServer& server, HttpClientOptions options = {});
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Issues "GET <target>" (target = path with optional ?query). A 4xx/5xx
  /// status is returned, not thrown; throws only when the transport fails
  /// (timeout / connection closed) beyond the retry budget.
  HttpResponse get(const std::string& target);

  void close();

 private:
  void reconnect();  // caller holds mu_

  HttpServer* server_;
  HttpClientOptions options_;
  std::unique_ptr<Endpoint> endpoint_;
  std::mutex mu_;
  bool closed_ = false;
};

}  // namespace mpid::hrpc
