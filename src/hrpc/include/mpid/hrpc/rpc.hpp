// A functional Hadoop-RPC analog (the VersionedProtocol style of 0.20).
//
// Server side: protocols are registered under (name, version); each
// protocol exposes named methods taking and returning raw Writable-style
// byte payloads. Every accepted connection gets a service thread that
// reads framed calls and dispatches them.
//
// Client side: one connection multiplexes concurrent calls — a reader
// thread matches framed responses to outstanding calls by id, exactly the
// structure of org.apache.hadoop.ipc.Client.
//
// Wire format (all through the DataOut/DataIn serialization layer):
//   call:     [i32 frame_len][i32 call_id][string protocol][i64 version]
//             [string method][bytes args]
//   response: [i32 frame_len][i32 call_id][u8 status][bytes payload|error]
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mpid/hrpc/pipe.hpp"
#include "mpid/hrpc/stream.hpp"

namespace mpid::hrpc {

/// Raised on the client when the server reports a dispatch error (wrong
/// version, unknown method, handler exception).
struct RpcError : std::runtime_error {
  explicit RpcError(const std::string& what) : std::runtime_error(what) {}
};

using RpcMethod = std::function<std::vector<std::byte>(
    std::span<const std::byte> args)>;

class RpcServer {
 public:
  /// `handler_threads` is Hadoop's ipc.server.handler.count: calls from
  /// every connection funnel into one queue drained by this many handler
  /// threads, so one slow handler does not serialize the server (responses
  /// return out of order; clients match them by call id).
  explicit RpcServer(int handler_threads = 1);
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers a method under (protocol, version). Must happen before
  /// connections are accepted.
  void register_method(const std::string& protocol, std::int64_t version,
                       const std::string& method, RpcMethod fn);

  /// Accepts a connection endpoint: spawns its service thread.
  void accept(Endpoint endpoint);

  /// Stops all service threads (connections are closed).
  void shutdown();

  std::uint64_t calls_served() const;

 private:
  struct ProtocolKey {
    std::string name;
    std::int64_t version;
    auto operator<=>(const ProtocolKey&) const = default;
  };

  struct Connection {
    Endpoint endpoint;
    std::mutex write_mu;  // handlers write responses concurrently
    explicit Connection(Endpoint ep) : endpoint(std::move(ep)) {}
  };
  struct QueuedCall {
    std::size_t connection_index;
    std::vector<std::byte> frame;
  };

  void serve(std::size_t connection_index);   // reader per connection
  void handler_loop();                        // shared handler pool
  std::vector<std::byte> dispatch(std::span<const std::byte> frame);

  mutable std::mutex mu_;
  std::condition_variable call_ready_;
  std::deque<QueuedCall> call_queue_;
  std::map<ProtocolKey, std::map<std::string, RpcMethod>> protocols_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::thread> service_threads_;
  std::vector<std::thread> handler_threads_;
  std::uint64_t calls_served_ = 0;
  bool down_ = false;
};

/// Timeout/retry policy of an RpcClient (ipc.client.timeout +
/// ipc.client.connect.max.retries analogs; a dead server used to hang the
/// caller forever).
struct RpcClientOptions {
  /// Deadline for one call's response; kNoTimeout blocks forever.
  std::chrono::nanoseconds call_timeout = kNoTimeout;
  /// Re-issues of a timed-out call (with a fresh call id; the late reply
  /// of an abandoned id is dropped by the reader). Callers must make the
  /// retried methods idempotent, as Hadoop's do.
  int max_retries = 0;
  /// Backoff before retry r is retry_backoff << r.
  std::chrono::nanoseconds retry_backoff = std::chrono::milliseconds(1);
};

class RpcClient {
 public:
  /// Connects to `server` (registers one connection with it).
  explicit RpcClient(RpcServer& server, RpcClientOptions options = {});
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Blocking call; safe from multiple threads concurrently.
  std::vector<std::byte> call(const std::string& protocol,
                              std::int64_t version, const std::string& method,
                              std::span<const std::byte> args);

  /// Convenience: string in, string out.
  std::string call_string(const std::string& protocol, std::int64_t version,
                          const std::string& method, std::string_view arg);

  void close();

 private:
  struct PendingCall {
    std::optional<std::vector<std::byte>> response;  // status+payload frame
    bool failed = false;
  };

  void reader_loop();
  /// One send + timed wait; throws TimedOut on deadline.
  std::vector<std::byte> call_once(const std::string& protocol,
                                   std::int64_t version,
                                   const std::string& method,
                                   std::span<const std::byte> args);

  RpcClientOptions options_;
  std::unique_ptr<Endpoint> endpoint_;
  std::thread reader_;
  std::mutex mu_;
  std::mutex write_mu_;  // keeps concurrent callers' frames contiguous
  std::condition_variable cv_;
  std::map<std::int32_t, PendingCall> pending_;
  std::int32_t next_call_id_ = 1;
  bool closed_ = false;
};

}  // namespace mpid::hrpc
