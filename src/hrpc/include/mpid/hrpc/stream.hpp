// Java-style data streams: the serialization substrate of Hadoop RPC.
//
// Hadoop 0.20 serializes every RPC parameter through DataOutputStream /
// DataInputStream with Writable types: big-endian fixed-width integers,
// zig-zag-free variable-length longs (WritableUtils.writeVLong is more
// baroque; we use LEB128), and length-prefixed UTF-8 strings. These
// classes reproduce that discipline so the functional RPC stack pays the
// same kind of per-field costs the real one does.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpid::hrpc {

class DataOut {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void write_i32(std::int32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      write_u8(static_cast<std::uint8_t>(
          (static_cast<std::uint32_t>(v) >> shift) & 0xff));
    }
  }

  void write_i64(std::int64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      write_u8(static_cast<std::uint8_t>(
          (static_cast<std::uint64_t>(v) >> shift) & 0xff));
    }
  }

  void write_vu64(std::uint64_t v) {
    while (v >= 0x80) {
      write_u8(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    write_u8(static_cast<std::uint8_t>(v));
  }

  void write_string(std::string_view s) {
    write_vu64(s.size());
    write_raw({reinterpret_cast<const std::byte*>(s.data()), s.size()});
  }

  void write_bytes(std::span<const std::byte> bytes) {
    write_vu64(bytes.size());
    write_raw(bytes);
  }

  void write_raw(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<std::byte>& buffer() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class DataIn {
 public:
  explicit DataIn(std::span<const std::byte> buf) noexcept : buf_(buf) {}

  std::uint8_t read_u8() {
    need(1);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  std::int32_t read_i32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | read_u8();
    return static_cast<std::int32_t>(v);
  }

  std::int64_t read_i64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | read_u8();
    return static_cast<std::int64_t>(v);
  }

  std::uint64_t read_vu64() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw std::runtime_error("hrpc: overlong varint");
      const auto b = read_u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::string read_string() {
    const auto len = read_vu64();
    need(len);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  std::vector<std::byte> read_bytes() {
    const auto len = read_vu64();
    need(len);
    std::vector<std::byte> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               buf_.begin() +
                                   static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  std::size_t remaining() const noexcept { return buf_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == buf_.size(); }

 private:
  void need(std::uint64_t n) const {
    if (n > buf_.size() - pos_) {
      throw std::runtime_error("hrpc: truncated stream");
    }
  }

  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace mpid::hrpc
