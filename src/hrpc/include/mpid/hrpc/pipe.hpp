// In-process byte-stream connections: the "TCP socket" of the functional
// RPC/HTTP stack.
//
// A Pipe is one direction of a connection: a bounded byte queue with
// blocking reads and writes. A Duplex bundles two pipes into a
// bidirectional connection with two Endpoints (client side, server side),
// each offering read/write of raw bytes with TCP-like semantics: writes
// may block when the peer is slow (bounded buffer), reads block until
// data or EOF, and closing the write side lets the reader drain before
// seeing EOF.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace mpid::hrpc {

/// Thrown by reads on a closed, drained pipe.
struct EndOfStream : std::runtime_error {
  EndOfStream() : std::runtime_error("hrpc: end of stream") {}
};

/// Thrown by timed reads when no byte arrives within the deadline (the
/// socket-read-timeout analog; a dead peer no longer hangs the caller).
struct TimedOut : std::runtime_error {
  TimedOut() : std::runtime_error("hrpc: read timed out") {}
};

/// "No timeout": blocks forever, the pre-fault-injection behaviour.
inline constexpr std::chrono::nanoseconds kNoTimeout =
    std::chrono::nanoseconds::max();

class Pipe {
 public:
  explicit Pipe(std::size_t capacity = 256 * 1024) : capacity_(capacity) {}

  /// Blocks while the buffer is full (back-pressure). Throws if closed.
  void write(std::span<const std::byte> data) {
    std::size_t offset = 0;
    std::unique_lock lock(mu_);
    while (offset < data.size()) {
      cv_writable_.wait(lock,
                        [&] { return closed_ || buf_.size() < capacity_; });
      if (closed_) throw std::runtime_error("hrpc: write to closed pipe");
      while (buf_.size() < capacity_ && offset < data.size()) {
        buf_.push_back(data[offset++]);
      }
      cv_readable_.notify_all();
    }
  }

  /// Reads exactly n bytes; blocks until available. Throws EndOfStream if
  /// the pipe closes before n bytes arrive, TimedOut if `timeout` elapses
  /// with the next byte still missing (kNoTimeout blocks forever).
  std::vector<std::byte> read_exactly(
      std::size_t n, std::chrono::nanoseconds timeout = kNoTimeout) {
    std::unique_lock lock(mu_);
    std::vector<std::byte> out;
    out.reserve(n);
    const auto ready = [&] { return closed_ || !buf_.empty(); };
    while (out.size() < n) {
      if (timeout == kNoTimeout) {
        cv_readable_.wait(lock, ready);
      } else if (!cv_readable_.wait_for(lock, timeout, ready)) {
        throw TimedOut();
      }
      if (buf_.empty()) throw EndOfStream();
      while (!buf_.empty() && out.size() < n) {
        out.push_back(buf_.front());
        buf_.pop_front();
      }
      cv_writable_.notify_all();
    }
    return out;
  }

  /// Closes the pipe: pending readers drain buffered bytes then see EOF;
  /// writers fail immediately.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    cv_readable_.notify_all();
    cv_writable_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_readable_, cv_writable_;
  std::deque<std::byte> buf_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// One side of a bidirectional connection.
class Endpoint {
 public:
  Endpoint(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  /// Read timeout applied by read_exactly (socket SO_RCVTIMEO analog).
  void set_read_timeout(std::chrono::nanoseconds timeout) noexcept {
    read_timeout_ = timeout;
  }

  void write(std::span<const std::byte> data) { out_->write(data); }
  std::vector<std::byte> read_exactly(std::size_t n) {
    return in_->read_exactly(n, read_timeout_);
  }
  /// Half-close: signals EOF to the peer's reads; our reads still work.
  void close_write() { out_->close(); }
  /// Full close.
  void close() {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<Pipe> out_, in_;
  std::chrono::nanoseconds read_timeout_ = kNoTimeout;
};

/// Creates a connected pair of endpoints.
inline std::pair<Endpoint, Endpoint> make_connection(
    std::size_t capacity = 256 * 1024) {
  auto a2b = std::make_shared<Pipe>(capacity);
  auto b2a = std::make_shared<Pipe>(capacity);
  return {Endpoint(a2b, b2a), Endpoint(b2a, a2b)};
}

}  // namespace mpid::hrpc
