#include "mpid/minimpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>

#include "mpid/common/hash.hpp"
#include "mpid/common/kvframe.hpp"

namespace mpid::minimpi {

namespace {

/// Collective traffic lives in a context derived from the user context so
/// wildcard user receives can never observe it.
constexpr std::uint64_t kCollectiveBit = 0x8000000000000000ULL;

constexpr int kCollPhases = 16;

int collective_tag(std::uint64_t seq, int phase) noexcept {
  return static_cast<int>((seq % (1u << 20)) * kCollPhases +
                          static_cast<unsigned>(phase));
}

}  // namespace

void Comm::check_peer(Rank peer, const char* what) const {
  if (peer < 0 || peer >= size()) {
    std::ostringstream msg;
    msg << "minimpi: " << what << ": rank " << peer << " out of range [0, "
        << size() << ")";
    throw std::out_of_range(msg.str());
  }
}

void Comm::check_tag(int tag, const char* what) const {
  if (tag < 0 || tag > kMaxUserTag) {
    std::ostringstream msg;
    msg << "minimpi: " << what << ": tag " << tag << " out of range [0, "
        << kMaxUserTag << "]";
    throw std::out_of_range(msg.str());
  }
}

Comm Comm::dup() noexcept {
  ++dup_seq_;
  return Comm(*world_, rank_, common::fmix64(context_ ^ dup_seq_), group_);
}

std::optional<Comm> Comm::split(int color, int key) {
  // Share (color, key) of every member, ordered by current rank.
  ++split_seq_;
  std::int32_t mine[2] = {color, key};
  auto all = allgather_bytes(std::as_bytes(std::span<const std::int32_t>(
      mine, 2)));

  // Members of my color, ordered by (key, old rank).
  std::vector<std::pair<std::int32_t, Rank>> members;  // (key, old rank)
  for (Rank r = 0; r < size(); ++r) {
    std::int32_t theirs[2];
    if (all[static_cast<std::size_t>(r)].size() != sizeof theirs) {
      throw std::runtime_error("minimpi: split exchange corrupt");
    }
    std::memcpy(theirs, all[static_cast<std::size_t>(r)].data(),
                sizeof theirs);
    if (color >= 0 && theirs[0] == color) members.emplace_back(theirs[1], r);
  }
  if (color < 0) return std::nullopt;
  std::sort(members.begin(), members.end());

  auto group = std::make_shared<std::vector<Rank>>();
  Rank my_new_rank = -1;
  for (const auto& [k, old_rank] : members) {
    if (old_rank == rank_) my_new_rank = static_cast<Rank>(group->size());
    group->push_back(to_world(old_rank));
  }
  const std::uint64_t new_context = common::fmix64(
      context_ ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(color))
                  << 24) ^ split_seq_ ^ 0xab12cd34ef56ULL);
  return Comm(*world_, my_new_rank, new_context, std::move(group));
}

void Comm::deliver_user(detail::Envelope&& env, Rank dst_world) {
  if (const TransportHook* hook = world_->transport_hook()) {
    const TransportFault fault = (*hook)(
        {env.context, env.source, dst_world, env.tag, env.payload.size()});
    if (fault.delay.count() > 0) std::this_thread::sleep_for(fault.delay);
    if (fault.corrupt && !env.payload.empty()) {
      env.payload[fault.corrupt_offset % env.payload.size()] ^=
          fault.corrupt_mask;
    }
    if (fault.drop) return;
    if (fault.duplicate) {
      detail::Envelope copy;
      copy.context = env.context;
      copy.source = env.source;
      copy.tag = env.tag;
      copy.payload = env.payload;
      world_->mailbox(dst_world).deliver(std::move(copy));
    }
  }
  world_->mailbox(dst_world).deliver(std::move(env));
}

void Comm::send_bytes(Rank dst, int tag, std::span<const std::byte> data) {
  check_peer(dst, "send");
  check_tag(tag, "send");
  detail::Envelope env;
  env.context = context_;
  env.source = to_world(rank_);
  env.tag = tag;
  env.payload.assign(data.begin(), data.end());
  deliver_user(std::move(env), to_world(dst));
}

void Comm::send_bytes_owned(Rank dst, int tag, std::vector<std::byte>&& data) {
  check_peer(dst, "send");
  check_tag(tag, "send");
  detail::Envelope env;
  env.context = context_;
  env.source = to_world(rank_);
  env.tag = tag;
  env.payload = std::move(data);
  deliver_user(std::move(env), to_world(dst));
}

void Comm::multicast_bytes_owned(std::span<const Rank> dsts, int tag,
                                 std::vector<std::byte>&& data) {
  check_tag(tag, "multicast");
  for (const Rank dst : dsts) check_peer(dst, "multicast");
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    detail::Envelope env;
    env.context = context_;
    env.source = to_world(rank_);
    env.tag = tag;
    if (i + 1 == dsts.size()) {
      env.payload = std::move(data);
    } else {
      env.payload = data;  // replicate for all but the final destination
    }
    deliver_user(std::move(env), to_world(dsts[i]));
  }
}

void Comm::ssend_bytes(Rank dst, int tag, std::span<const std::byte> data) {
  check_peer(dst, "ssend");
  check_tag(tag, "ssend");
  auto token = std::make_shared<detail::SyncToken>();
  detail::Envelope env;
  env.context = context_;
  env.source = to_world(rank_);
  env.tag = tag;
  env.payload.assign(data.begin(), data.end());
  env.sync = token;
  world_->mailbox(to_world(dst)).deliver(std::move(env));
  if (!token->wait(world_->timeout())) {
    throw std::runtime_error(
        "minimpi: ssend timed out waiting for a matching receive — likely "
        "deadlock");
  }
}

Status Comm::recv_bytes(Rank src, int tag, std::vector<std::byte>& out) {
  if (src != kAnySource) check_peer(src, "recv");
  if (tag != kAnyTag) check_tag(tag, "recv");
  detail::PostedRecv posted;
  posted.context = context_;
  posted.source_filter = src == kAnySource ? kAnySource : to_world(src);
  posted.tag_filter = tag;
  posted.sink = &out;
  world_->mailbox(to_world(rank_)).recv_blocking(posted, world_->timeout());
  return localized(posted.status);
}

Request Comm::isend_bytes(Rank dst, int tag, std::span<const std::byte> data) {
  send_bytes(dst, tag, data);  // eager: complete on return
  auto state = std::make_unique<Request::State>();
  state->mailbox = nullptr;
  state->immediate_status.source = rank_;
  state->immediate_status.tag = tag;
  state->immediate_status.byte_count = data.size();
  return Request(std::move(state));
}

Request Comm::isend_bytes_owned(Rank dst, int tag,
                                std::vector<std::byte>&& data) {
  const std::size_t n = data.size();
  send_bytes_owned(dst, tag, std::move(data));  // eager: complete on return
  auto state = std::make_unique<Request::State>();
  state->mailbox = nullptr;
  state->immediate_status.source = rank_;
  state->immediate_status.tag = tag;
  state->immediate_status.byte_count = n;
  return Request(std::move(state));
}

Request Comm::irecv_bytes(Rank src, int tag, std::vector<std::byte>& out) {
  if (src != kAnySource) check_peer(src, "irecv");
  if (tag != kAnyTag) check_tag(tag, "irecv");
  auto state = std::make_unique<Request::State>();
  state->posted.context = context_;
  state->posted.source_filter = src == kAnySource ? kAnySource : to_world(src);
  state->posted.tag_filter = tag;
  state->posted.sink = &out;
  state->mailbox = &world_->mailbox(to_world(rank_));
  state->timeout = world_->timeout();
  state->group = group_;
  state->mailbox->post(state->posted);
  return Request(std::move(state));
}

Status Comm::probe(Rank src, int tag) {
  if (src != kAnySource) check_peer(src, "probe");
  if (tag != kAnyTag) check_tag(tag, "probe");
  return localized(world_->mailbox(to_world(rank_))
                       .probe(context_,
                              src == kAnySource ? kAnySource : to_world(src),
                              tag, world_->timeout()));
}

std::optional<Status> Comm::iprobe(Rank src, int tag) {
  if (src != kAnySource) check_peer(src, "iprobe");
  if (tag != kAnyTag) check_tag(tag, "iprobe");
  auto st = world_->mailbox(to_world(rank_))
                .iprobe(context_,
                        src == kAnySource ? kAnySource : to_world(src), tag);
  if (!st) return std::nullopt;
  return localized(*st);
}

Status Comm::sendrecv_bytes(Rank dst, int send_tag,
                            std::span<const std::byte> send_data, Rank src,
                            int recv_tag, std::vector<std::byte>& out) {
  Request recv_req = irecv_bytes(src, recv_tag, out);
  send_bytes(dst, send_tag, send_data);
  return recv_req.wait();
}

void Comm::coll_send(Rank dst, std::uint64_t seq, int phase,
                     std::span<const std::byte> data) {
  detail::Envelope env;
  env.context = context_ | kCollectiveBit;
  env.source = to_world(rank_);
  env.tag = collective_tag(seq, phase);
  env.payload.assign(data.begin(), data.end());
  world_->mailbox(to_world(dst)).deliver(std::move(env));
}

Status Comm::coll_recv(Rank src, std::uint64_t seq, int phase,
                       std::vector<std::byte>& out) {
  detail::PostedRecv posted;
  posted.context = context_ | kCollectiveBit;
  posted.source_filter = to_world(src);
  posted.tag_filter = collective_tag(seq, phase);
  posted.sink = &out;
  world_->mailbox(to_world(rank_)).recv_blocking(posted, world_->timeout());
  return localized(posted.status);
}

void Comm::barrier() {
  const int n = size();
  const std::uint64_t seq = next_collective_seq();
  std::vector<std::byte> token;
  int phase = 0;
  for (int step = 1; step < n; step <<= 1, ++phase) {
    const Rank to = (rank_ + step) % n;
    const Rank from = (rank_ - step % n + n) % n;
    coll_send(to, seq, phase, {});
    coll_recv(from, seq, phase, token);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, Rank root) {
  check_peer(root, "bcast");
  const int n = size();
  const Rank vrank = virtual_rank(root);
  const std::uint64_t seq = next_collective_seq();

  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      coll_recv(absolute_rank(vrank - mask, root), seq, 0, data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      coll_send(absolute_rank(vrank + mask, root), seq, 0,
                std::span<const std::byte>(data));
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::gather_bytes(
    std::span<const std::byte> contribution, Rank root) {
  check_peer(root, "gather");
  const int n = size();
  const std::uint64_t seq = next_collective_seq();
  std::vector<std::vector<std::byte>> parts;
  if (rank_ == root) {
    parts.resize(static_cast<std::size_t>(n));
    parts[static_cast<std::size_t>(root)].assign(contribution.begin(),
                                                 contribution.end());
    for (Rank r = 0; r < n; ++r) {
      if (r == root) continue;
      coll_recv(r, seq, 0, parts[static_cast<std::size_t>(r)]);
    }
  } else {
    coll_send(root, seq, 0, contribution);
  }
  return parts;
}

std::vector<std::byte> Comm::scatter_bytes(
    const std::vector<std::vector<std::byte>>& parts, Rank root) {
  check_peer(root, "scatter");
  const int n = size();
  const std::uint64_t seq = next_collective_seq();
  if (rank_ == root) {
    if (parts.size() != static_cast<std::size_t>(n)) {
      throw std::invalid_argument("minimpi: scatter needs one part per rank");
    }
    for (Rank r = 0; r < n; ++r) {
      if (r == root) continue;
      coll_send(r, seq, 0,
                std::span<const std::byte>(parts[static_cast<std::size_t>(r)]));
    }
    return parts[static_cast<std::size_t>(root)];
  }
  std::vector<std::byte> mine;
  coll_recv(root, seq, 0, mine);
  return mine;
}

std::vector<std::vector<std::byte>> Comm::alltoall_bytes(
    std::vector<std::vector<std::byte>> outgoing) {
  const int n = size();
  if (outgoing.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("minimpi: alltoall needs one buffer per rank");
  }
  const std::uint64_t seq = next_collective_seq();
  std::vector<std::vector<std::byte>> incoming(static_cast<std::size_t>(n));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  // Eager sends cannot deadlock: blast all sends, then collect.
  for (Rank r = 0; r < n; ++r) {
    if (r == rank_) continue;
    coll_send(r, seq, 0,
              std::span<const std::byte>(outgoing[static_cast<std::size_t>(r)]));
  }
  for (Rank r = 0; r < n; ++r) {
    if (r == rank_) continue;
    coll_recv(r, seq, 0, incoming[static_cast<std::size_t>(r)]);
  }
  return incoming;
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(
    std::span<const std::byte> contribution) {
  auto parts = gather_bytes(contribution, 0);
  // Broadcast the concatenation with a simple length-prefixed encoding.
  std::vector<std::byte> packed;
  if (rank_ == 0) {
    for (const auto& part : parts) {
      common::put_varint(packed, part.size());
      packed.insert(packed.end(), part.begin(), part.end());
    }
  }
  bcast_bytes(packed, 0);
  std::vector<std::vector<std::byte>> out;
  std::size_t offset = 0;
  while (offset < packed.size()) {
    const auto len = common::get_varint(packed, offset);
    if (!len || *len > packed.size() - offset) {
      throw std::runtime_error("minimpi: allgather decode error");
    }
    out.emplace_back(packed.begin() + static_cast<std::ptrdiff_t>(offset),
                     packed.begin() +
                         static_cast<std::ptrdiff_t>(offset + *len));
    offset += static_cast<std::size_t>(*len);
  }
  return out;
}

}  // namespace mpid::minimpi
