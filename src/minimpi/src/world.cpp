#include "mpid/minimpi/world.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "mpid/common/hash.hpp"
#include "mpid/minimpi/comm.hpp"

namespace mpid::minimpi {

namespace detail {

Mailbox::Shard& Mailbox::shard_for(std::uint64_t context) noexcept {
  static_assert((kShardCount & (kShardCount - 1)) == 0,
                "shard count must be a power of two");
  return shards_[common::fmix64(context) & (kShardCount - 1)];
}

void Mailbox::complete(PostedRecv& recv, Envelope env) {
  if (recv.sink != nullptr) *recv.sink = std::move(env.payload);
  recv.status.source = env.source;
  recv.status.tag = env.tag;
  recv.status.byte_count =
      recv.sink != nullptr ? recv.sink->size() : env.payload.size();
  recv.done = true;
  if (env.sync) env.sync->notify();  // release a blocked MPI_Ssend
}

void Mailbox::deliver(Envelope env) {
  Shard& shard = shard_for(env.context);
  {
    std::lock_guard lock(shard.mu);
    for (auto it = shard.posted.begin(); it != shard.posted.end(); ++it) {
      if ((*it)->matches(env)) {
        complete(**it, std::move(env));
        shard.posted.erase(it);
        shard.cv.notify_all();
        return;
      }
    }
    shard.unexpected.push_back(std::move(env));
  }
  shard.cv.notify_all();
}

bool Mailbox::match_unexpected(Shard& shard, PostedRecv& recv) {
  for (auto it = shard.unexpected.begin(); it != shard.unexpected.end();
       ++it) {
    if (recv.matches(*it)) {
      complete(recv, std::move(*it));
      shard.unexpected.erase(it);
      return true;
    }
  }
  return false;
}

void Mailbox::post(PostedRecv& recv) {
  Shard& shard = shard_for(recv.context);
  std::lock_guard lock(shard.mu);
  if (!match_unexpected(shard, recv)) shard.posted.push_back(&recv);
}

void Mailbox::wait_posted(PostedRecv& recv, std::chrono::nanoseconds timeout) {
  Shard& shard = shard_for(recv.context);
  std::unique_lock lock(shard.mu);
  if (!shard.cv.wait_for(lock, timeout, [&] { return recv.done; })) {
    // Remove ourselves so the stack/heap slot cannot be written later.
    shard.posted.remove(&recv);
    std::ostringstream msg;
    msg << "minimpi: receive timed out (source filter "
        << recv.source_filter << ", tag filter " << recv.tag_filter
        << ") — likely deadlock";
    throw std::runtime_error(msg.str());
  }
}

bool Mailbox::test_posted(PostedRecv& recv) {
  Shard& shard = shard_for(recv.context);
  std::lock_guard lock(shard.mu);
  return recv.done;
}

void Mailbox::cancel_posted(PostedRecv& recv) {
  Shard& shard = shard_for(recv.context);
  std::lock_guard lock(shard.mu);
  shard.posted.remove(&recv);
}

void Mailbox::recv_blocking(PostedRecv& recv,
                            std::chrono::nanoseconds timeout) {
  post(recv);
  if (test_posted(recv)) return;
  wait_posted(recv, timeout);
}

Status Mailbox::probe(std::uint64_t context, Rank source, int tag,
                      std::chrono::nanoseconds timeout) {
  PostedRecv filter;
  filter.context = context;
  filter.source_filter = source;
  filter.tag_filter = tag;

  Shard& shard = shard_for(context);
  std::unique_lock lock(shard.mu);
  const Envelope* found = nullptr;
  const bool ok = shard.cv.wait_for(lock, timeout, [&] {
    const auto it = std::find_if(
        shard.unexpected.begin(), shard.unexpected.end(),
        [&](const Envelope& e) { return filter.matches(e); });
    if (it == shard.unexpected.end()) return false;
    found = &*it;
    return true;
  });
  if (!ok) {
    throw std::runtime_error("minimpi: probe timed out — likely deadlock");
  }
  Status st;
  st.source = found->source;
  st.tag = found->tag;
  st.byte_count = found->payload.size();
  return st;
}

std::optional<Status> Mailbox::iprobe(std::uint64_t context, Rank source,
                                      int tag) {
  PostedRecv filter;
  filter.context = context;
  filter.source_filter = source;
  filter.tag_filter = tag;

  Shard& shard = shard_for(context);
  std::lock_guard lock(shard.mu);
  const auto it = std::find_if(
      shard.unexpected.begin(), shard.unexpected.end(),
      [&](const Envelope& e) { return filter.matches(e); });
  if (it == shard.unexpected.end()) return std::nullopt;
  Status st;
  st.source = it->source;
  st.tag = it->tag;
  st.byte_count = it->payload.size();
  return st;
}

}  // namespace detail

World::World(int size) {
  if (size < 1) throw std::invalid_argument("World: size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  }
}

void World::install_transport_hook(TransportHook hook) {
  if (!hook) return;
  std::lock_guard lock(hook_mu_);
  if (hook_.load(std::memory_order_relaxed) != nullptr) return;  // first wins
  hook_storage_ = std::make_unique<TransportHook>(std::move(hook));
  hook_.store(hook_storage_.get(), std::memory_order_release);
}

void run_world(int size, std::chrono::nanoseconds timeout,
               const std::function<void(Comm&)>& rank_main) {
  World world(size);
  world.set_timeout(timeout);
  // A fixed, shared initial context; sub-communicators derive from it.
  constexpr std::uint64_t kWorldContext = 0x5eed0123456789abULL;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r, kWorldContext);
      try {
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void run_world(int size, const std::function<void(Comm&)>& rank_main) {
  run_world(size, std::chrono::seconds(60), rank_main);
}

}  // namespace mpid::minimpi
