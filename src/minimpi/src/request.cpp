#include "mpid/minimpi/request.hpp"

#include <stdexcept>

namespace mpid::minimpi {

Request::~Request() {
  if (state_ && state_->mailbox != nullptr) {
    // Pending irecv: withdraw the posted receive so the mailbox never
    // writes through dangling pointers. (Freeing an active request is an
    // error in MPI; cancelling is the safe library behaviour here.)
    state_->mailbox->cancel_posted(state_->posted);
  }
}

namespace {

/// Translates a world-rank source back into the sub-communicator's rank
/// space (identity for world communicators).
Status localize(Status st,
                const std::shared_ptr<const std::vector<Rank>>& group) {
  if (group) {
    for (std::size_t i = 0; i < group->size(); ++i) {
      if ((*group)[i] == st.source) {
        st.source = static_cast<Rank>(i);
        break;
      }
    }
  }
  return st;
}

}  // namespace

Status Request::wait() {
  if (!state_) throw std::logic_error("minimpi: wait on empty request");
  Status st;
  if (state_->mailbox == nullptr) {
    st = state_->immediate_status;
  } else {
    state_->mailbox->wait_posted(state_->posted, state_->timeout);
    st = localize(state_->posted.status, state_->group);
  }
  state_.reset();
  return st;
}

bool Request::test(Status* out) {
  if (!state_) throw std::logic_error("minimpi: test on empty request");
  if (state_->mailbox == nullptr) {
    if (out != nullptr) *out = state_->immediate_status;
    state_.reset();
    return true;
  }
  if (!state_->mailbox->test_posted(state_->posted)) return false;
  if (out != nullptr) *out = localize(state_->posted.status, state_->group);
  state_.reset();
  return true;
}

void wait_all(std::vector<Request>& requests) {
  for (auto& r : requests) {
    if (r.valid()) r.wait();
  }
}

}  // namespace mpid::minimpi
