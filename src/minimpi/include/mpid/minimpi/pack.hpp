// MPI_Pack / MPI_Unpack analogs.
//
// Section III of the paper notes that a programmer using traditional MPI
// for MapReduce "must handle data non-contiguity and size variability by
// extra effort, even though MPI can supply some functional supports, like
// MPI_Pack/MPI_Unpack". These classes are that functional support: an
// explicit, order-sensitive packing buffer for heterogeneous data — and a
// concrete illustration of why MPI-D's key-value interface is nicer for
// this workload (see tests/minimpi/test_pack.cpp for the side-by-side).
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "mpid/minimpi/types.hpp"

namespace mpid::minimpi {

/// Order-sensitive packing buffer (MPI_Pack). Values are appended raw;
/// strings/spans are length-prefixed so Unpacker can recover them.
class Packer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& pack(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& pack_span(std::span<const T> values) {
    pack(static_cast<std::uint64_t>(values.size()));
    const auto bytes = std::as_bytes(values);
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    return *this;
  }

  Packer& pack_string(std::string_view s) {
    return pack_span(std::span<const char>(s.data(), s.size()));
  }

  const std::vector<std::byte>& buffer() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Order-sensitive unpacking cursor (MPI_Unpack). Types and order must
/// match the packing sequence exactly; mismatched sizes throw.
class Unpacker {
 public:
  explicit Unpacker(std::span<const std::byte> buf) noexcept : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T unpack() {
    T value;
    take_into(&value, sizeof(T));
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> unpack_span() {
    const auto count = unpack<std::uint64_t>();
    if (count > (buf_.size() - offset_) / sizeof(T)) {
      throw std::runtime_error("minimpi: unpack_span overruns buffer");
    }
    std::vector<T> values(static_cast<std::size_t>(count));
    take_into(values.data(), values.size() * sizeof(T));
    return values;
  }

  std::string unpack_string() {
    const auto chars = unpack_span<char>();
    return {chars.begin(), chars.end()};
  }

  bool at_end() const noexcept { return offset_ == buf_.size(); }
  std::size_t remaining() const noexcept { return buf_.size() - offset_; }

 private:
  void take_into(void* dst, std::size_t n) {
    if (n > buf_.size() - offset_) {
      throw std::runtime_error("minimpi: unpack overruns buffer");
    }
    std::memcpy(dst, buf_.data() + offset_, n);
    offset_ += n;
  }

  std::span<const std::byte> buf_;
  std::size_t offset_ = 0;
};

}  // namespace mpid::minimpi
