// World: the process group and message transport of minimpi.
//
// A World owns one mailbox per rank. Ranks are std::threads launched by
// run_world(); each receives a Comm handle bound to its rank. Message
// delivery is eager: MPI_Send-style calls move or copy the payload into
// the destination mailbox and return (standard buffered-send semantics,
// which MPI_Send permits).
//
// Matching follows MPI rules: a receive with (source, tag) filters —
// either may be a wildcard — matches the earliest-sent compatible message
// of the same communicator context; messages between a fixed (source,
// destination, context) triple are non-overtaking.
//
// A mailbox is internally sharded by communicator context: each context
// hashes to one of a fixed number of (mutex, condvar, queue) shards, so
// data-plane traffic (e.g. MPI-D's dup'd data communicator) never contends
// with collective traffic or with other communicators on the same lock.
// Matching only ever relates messages of equal context, and a context
// always maps to the same shard, so the sharding is invisible to MPI
// semantics: wildcard receives still match the earliest compatible message
// of their context, and per-(source, context) non-overtaking is preserved.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "mpid/minimpi/types.hpp"

namespace mpid::minimpi {

class Comm;

/// One message on the send path, as seen by a transport fault hook.
struct TransportEvent {
  std::uint64_t context = 0;
  Rank src = -1;
  Rank dst = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

/// What a transport fault hook asks the send path to do with a message.
/// minimpi stays fault-library-agnostic: mpid::fault (or a test) supplies
/// the decisions through this plain struct.
struct TransportFault {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::size_t corrupt_offset = 0;  // payload byte to damage (mod size)
  std::byte corrupt_mask{0x01};    // XORed into that byte
  std::chrono::nanoseconds delay{0};
};

using TransportHook = std::function<TransportFault(const TransportEvent&)>;

namespace detail {

/// Completion token for synchronous sends (MPI_Ssend): the sender blocks
/// until a receive matches the message.
struct SyncToken {
  std::mutex mu;
  std::condition_variable cv;
  bool matched = false;

  void notify() {
    {
      std::lock_guard lock(mu);
      matched = true;
    }
    cv.notify_all();
  }
  /// Returns false on timeout.
  bool wait(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] { return matched; });
  }
};

struct Envelope {
  std::uint64_t context = 0;
  Rank source = -1;
  int tag = -1;
  std::vector<std::byte> payload;
  std::shared_ptr<SyncToken> sync;  // non-null for synchronous sends
};

/// A posted (pending) receive. Lives in the receiving coroutine-less
/// thread's stack frame (blocking recv) or inside a Request (irecv); its
/// address is registered with the mailbox until matched.
struct PostedRecv {
  std::uint64_t context = 0;
  Rank source_filter = kAnySource;
  int tag_filter = kAnyTag;
  std::vector<std::byte>* sink = nullptr;
  Status status;
  bool done = false;

  bool matches(const Envelope& env) const noexcept {
    return env.context == context &&
           (source_filter == kAnySource || env.source == source_filter) &&
           (tag_filter == kAnyTag || env.tag == tag_filter);
  }
};

class Mailbox {
 public:
  /// Delivers a message: hands it to the earliest matching posted receive,
  /// else queues it as unexpected.
  void deliver(Envelope env);

  /// Registers `recv` and blocks until it completes or the deadline
  /// expires. Throws std::runtime_error on timeout (likely deadlock).
  void recv_blocking(PostedRecv& recv, std::chrono::nanoseconds timeout);

  /// Registers `recv` without blocking (irecv). The caller must later call
  /// wait_posted or cancel_posted exactly once.
  void post(PostedRecv& recv);
  void wait_posted(PostedRecv& recv, std::chrono::nanoseconds timeout);
  bool test_posted(PostedRecv& recv);
  /// Removes a posted receive that has not completed; no-op if it already
  /// completed (the payload was delivered).
  void cancel_posted(PostedRecv& recv);

  /// Blocks until a matching message is queued, without consuming it.
  Status probe(std::uint64_t context, Rank source, int tag,
               std::chrono::nanoseconds timeout);
  std::optional<Status> iprobe(std::uint64_t context, Rank source, int tag);

  /// Number of context shards per mailbox (power of two).
  static constexpr std::size_t kShardCount = 8;

 private:
  /// One independently locked matching domain. All messages and receives
  /// of a given context live in exactly one shard.
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> unexpected;
    std::list<PostedRecv*> posted;
  };

  Shard& shard_for(std::uint64_t context) noexcept;

  /// Tries to satisfy `recv` from the shard's unexpected queue. Caller
  /// holds the shard mutex.
  static bool match_unexpected(Shard& shard, PostedRecv& recv);
  static void complete(PostedRecv& recv, Envelope env);

  std::array<Shard, kShardCount> shards_;
};

}  // namespace detail

class World {
 public:
  explicit World(int size);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Deadline for any single blocking operation; guards tests against
  /// deadlocks. Default 60 s.
  void set_timeout(std::chrono::nanoseconds t) noexcept { timeout_ = t; }
  std::chrono::nanoseconds timeout() const noexcept { return timeout_; }

  detail::Mailbox& mailbox(Rank r) { return *mailboxes_.at(static_cast<std::size_t>(r)); }

  /// Installs a fault hook consulted on every untagged-context send
  /// (ssend and collective traffic are exempt). Install-once: the first
  /// call wins, later calls are no-ops — every rank of a fault-injected
  /// job installs an equivalent hook, so which thread races first does not
  /// matter. The read side is one acquire load when no hook is installed.
  void install_transport_hook(TransportHook hook);
  const TransportHook* transport_hook() const noexcept {
    return hook_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::chrono::nanoseconds timeout_ = std::chrono::seconds(60);
  std::unique_ptr<TransportHook> hook_storage_;
  std::atomic<TransportHook*> hook_{nullptr};
  std::mutex hook_mu_;
};

/// Launches `size` rank threads, each running `rank_main` with a Comm bound
/// to its rank over a fresh World, and joins them. If any rank throws, the
/// first exception (by rank order) is rethrown after all threads join.
void run_world(int size, const std::function<void(Comm&)>& rank_main);

/// As run_world, but with a custom per-operation timeout (deadlock guard).
void run_world(int size, std::chrono::nanoseconds timeout,
               const std::function<void(Comm&)>& rank_main);

}  // namespace mpid::minimpi
