// Reduction operators for minimpi collectives (MPI_SUM / MPI_MIN / MPI_MAX
// analogs). Any callable `void(T& accumulator, const T& incoming)` works;
// these are the stock ones.
#pragma once

#include <algorithm>

namespace mpid::minimpi {

struct Sum {
  template <typename T>
  void operator()(T& acc, const T& in) const {
    acc += in;
  }
};

struct Min {
  template <typename T>
  void operator()(T& acc, const T& in) const {
    acc = std::min(acc, in);
  }
};

struct Max {
  template <typename T>
  void operator()(T& acc, const T& in) const {
    acc = std::max(acc, in);
  }
};

struct Prod {
  template <typename T>
  void operator()(T& acc, const T& in) const {
    acc *= in;
  }
};

struct LogicalAnd {
  template <typename T>
  void operator()(T& acc, const T& in) const {
    acc = acc && in;
  }
};

struct LogicalOr {
  template <typename T>
  void operator()(T& acc, const T& in) const {
    acc = acc || in;
  }
};

}  // namespace mpid::minimpi
