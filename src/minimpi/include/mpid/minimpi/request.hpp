// Nonblocking-operation handles (MPI_Request analog).
//
// isend completes immediately (sends are eager/buffered); irecv registers a
// posted receive that a matching incoming message fulfils. A Request that
// is destroyed while still pending cancels the posted receive (unlike MPI,
// where freeing an active request is erroneous — cancellation is the safer
// library behaviour here).
#pragma once

#include <memory>
#include <vector>

#include "mpid/minimpi/types.hpp"
#include "mpid/minimpi/world.hpp"

namespace mpid::minimpi {

class Comm;

class Request {
 public:
  Request() noexcept = default;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request();

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until complete; returns the receive status (for isend the
  /// status carries only the destination-side metadata the caller already
  /// knows). Invalidates the request.
  Status wait();

  /// Nonblocking completion check. On true the request is invalidated and
  /// `out` (if non-null) receives the status.
  bool test(Status* out = nullptr);

 private:
  friend class Comm;

  struct State {
    detail::PostedRecv posted;           // used by irecv
    detail::Mailbox* mailbox = nullptr;  // null => already complete (isend)
    std::chrono::nanoseconds timeout{};
    Status immediate_status;             // isend result
    /// Sub-communicator rank mapping (world -> local status translation);
    /// null for world communicators.
    std::shared_ptr<const std::vector<Rank>> group;
  };

  explicit Request(std::unique_ptr<State> state) noexcept
      : state_(std::move(state)) {}

  std::unique_ptr<State> state_;
};

/// Waits on every request in order (MPI_Waitall).
void wait_all(std::vector<Request>& requests);

}  // namespace mpid::minimpi
