// Comm: a rank's handle on a communicator (MPI_Comm analog).
//
// Byte-level operations are the primitives; typed operations are thin
// templates over them restricted to trivially copyable element types (the
// MPI datatype model). Collectives are implemented on top of point-to-point
// messages with binomial trees, exactly the layering the paper's MPI-D
// prototype assumes ("built on the basic point-to-point primitives in
// MPI").
//
// Collective traffic runs in a separate context (the collective bit), so a
// user receive with wildcard tag can never match internal messages, and a
// per-communicator collective sequence number keeps adjacent collectives
// from cross-matching when ranks are skewed in time.
#pragma once

#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "mpid/minimpi/request.hpp"
#include "mpid/minimpi/types.hpp"
#include "mpid/minimpi/world.hpp"

namespace mpid::minimpi {

template <typename T>
concept Datatype = std::is_trivially_copyable_v<T>;

class Comm {
 public:
  Comm(World& world, Rank rank, std::uint64_t context) noexcept
      : world_(&world), rank_(rank), context_(context) {}

  Rank rank() const noexcept { return rank_; }
  int size() const noexcept {
    return group_ ? static_cast<int>(group_->size()) : world_->size();
  }
  World& world() const noexcept { return *world_; }
  /// The communicator's message context (exposed so a fault injector can
  /// scope transport faults to one communicator's traffic).
  std::uint64_t context() const noexcept { return context_; }

  /// A new communicator with an isolated message context. Every rank must
  /// call dup() the same number of times in the same order (as with
  /// MPI_Comm_dup); no communication is required because the derived
  /// context is computed deterministically.
  Comm dup() noexcept;

  /// MPI_Comm_split: partitions this communicator by `color`; within each
  /// partition ranks are ordered by (key, old rank). Collective — every
  /// rank of this communicator must call it. A negative color (the
  /// MPI_UNDEFINED analog) yields nullopt for that rank.
  std::optional<Comm> split(int color, int key);

  // ------------------------------------------------------------- p2p ----

  void send_bytes(Rank dst, int tag, std::span<const std::byte> data);

  /// Zero-copy send: moves the payload buffer into the transport instead
  /// of copying it. The eventual receiver's sink vector adopts this exact
  /// allocation, so a pooled buffer travels mapper → wire → reducer with
  /// no intermediate copy (the shuffle hot path of MPI-D).
  void send_bytes_owned(Rank dst, int tag, std::vector<std::byte>&& data);

  /// One-transmission group multicast: delivers the same payload to every
  /// destination rank, moving the buffer into the last delivery (earlier
  /// destinations receive copies — the local analog of switch-level
  /// packet replication). The point of a dedicated primitive is honest
  /// accounting: a caller modeling fabric traffic charges ONE wire
  /// transmission for the whole group, which a loop of unicasts cannot
  /// express. Each destination's copy passes the transport hook
  /// independently, so fault injection can drop or corrupt one group
  /// member's delivery without touching the others (a real multicast
  /// loss mode). Sending to an empty destination list is a no-op;
  /// duplicate destinations each receive a copy.
  void multicast_bytes_owned(std::span<const Rank> dsts, int tag,
                             std::vector<std::byte>&& data);

  /// Synchronous send (MPI_Ssend): completes only once a matching receive
  /// has consumed the message. Times out (throwing) under the world's
  /// deadlock guard if no receive ever matches.
  void ssend_bytes(Rank dst, int tag, std::span<const std::byte> data);

  template <Datatype T>
  void ssend_value(Rank dst, int tag, const T& value) {
    ssend_bytes(dst, tag,
                std::as_bytes(std::span<const T>(&value, 1)));
  }
  Status recv_bytes(Rank src, int tag, std::vector<std::byte>& out);
  Request isend_bytes(Rank dst, int tag, std::span<const std::byte> data);
  /// Zero-copy nonblocking send (see send_bytes_owned).
  Request isend_bytes_owned(Rank dst, int tag, std::vector<std::byte>&& data);
  /// `out` must stay alive until the request completes.
  Request irecv_bytes(Rank src, int tag, std::vector<std::byte>& out);

  /// Blocking probe: waits until a matching message is available and
  /// returns its metadata without receiving it.
  Status probe(Rank src, int tag);
  std::optional<Status> iprobe(Rank src, int tag);

  /// Combined send+receive that cannot deadlock (MPI_Sendrecv).
  Status sendrecv_bytes(Rank dst, int send_tag,
                        std::span<const std::byte> send_data, Rank src,
                        int recv_tag, std::vector<std::byte>& out);

  template <Datatype T>
  void send(Rank dst, int tag, std::span<const T> data) {
    send_bytes(dst, tag, std::as_bytes(data));
  }

  template <Datatype T>
  void send_value(Rank dst, int tag, const T& value) {
    send(dst, tag, std::span<const T>(&value, 1));
  }

  void send_string(Rank dst, int tag, std::string_view s) {
    send_bytes(dst, tag,
               std::as_bytes(std::span<const char>(s.data(), s.size())));
  }

  template <Datatype T>
  Status recv(Rank src, int tag, std::vector<T>& out) {
    std::vector<std::byte> raw;
    const Status st = recv_bytes(src, tag, raw);
    if (raw.size() % sizeof(T) != 0) {
      throw std::runtime_error("minimpi: datatype size mismatch in recv");
    }
    out.resize(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return st;
  }

  template <Datatype T>
  T recv_value(Rank src, int tag, Status* status = nullptr) {
    std::vector<T> one;
    const Status st = recv(src, tag, one);
    if (one.size() != 1) {
      throw std::runtime_error("minimpi: recv_value expected one element");
    }
    if (status != nullptr) *status = st;
    return one.front();
  }

  std::string recv_string(Rank src, int tag, Status* status = nullptr) {
    std::vector<std::byte> raw;
    const Status st = recv_bytes(src, tag, raw);
    if (status != nullptr) *status = st;
    return {reinterpret_cast<const char*>(raw.data()), raw.size()};
  }

  // ----------------------------------------------------- collectives ----

  /// Dissemination barrier: O(log n) rounds.
  void barrier();

  /// Binomial-tree broadcast of a byte buffer. Non-roots resize `data`.
  void bcast_bytes(std::vector<std::byte>& data, Rank root);

  template <Datatype T>
  T bcast_value(T value, Rank root) {
    std::vector<std::byte> buf(sizeof(T));
    if (rank_ == root) std::memcpy(buf.data(), &value, sizeof(T));
    bcast_bytes(buf, root);
    T out;
    std::memcpy(&out, buf.data(), sizeof(T));
    return out;
  }

  /// Binomial-tree reduction. Every rank passes `contribution`; the result
  /// is meaningful only at `root` (other ranks get their partial). All
  /// contributions must have equal length.
  template <Datatype T, typename Op>
  std::vector<T> reduce(std::span<const T> contribution, Op op, Rank root) {
    std::vector<T> acc(contribution.begin(), contribution.end());
    const int n = size();
    const Rank vrank = virtual_rank(root);
    const std::uint64_t seq = next_collective_seq();
    for (int mask = 1; mask < n; mask <<= 1) {
      if ((vrank & mask) != 0) {
        const Rank dst = absolute_rank(vrank - mask, root);
        coll_send(dst, seq, 0, std::as_bytes(std::span<const T>(acc)));
        break;
      }
      const int vsrc = vrank + mask;
      if (vsrc < n) {
        std::vector<std::byte> raw;
        coll_recv(absolute_rank(vsrc, root), seq, 0, raw);
        if (raw.size() != acc.size() * sizeof(T)) {
          throw std::runtime_error("minimpi: reduce length mismatch");
        }
        std::vector<T> incoming(acc.size());
        std::memcpy(incoming.data(), raw.data(), raw.size());
        for (std::size_t i = 0; i < acc.size(); ++i) op(acc[i], incoming[i]);
      }
    }
    return acc;
  }

  template <Datatype T, typename Op>
  T reduce_value(const T& contribution, Op op, Rank root) {
    return reduce(std::span<const T>(&contribution, 1), op, root).front();
  }

  template <Datatype T, typename Op>
  std::vector<T> allreduce(std::span<const T> contribution, Op op) {
    auto result = reduce(contribution, op, 0);
    std::vector<std::byte> raw(result.size() * sizeof(T));
    std::memcpy(raw.data(), result.data(), raw.size());
    bcast_bytes(raw, 0);
    result.resize(raw.size() / sizeof(T));
    std::memcpy(result.data(), raw.data(), raw.size());
    return result;
  }

  template <Datatype T, typename Op>
  T allreduce_value(const T& contribution, Op op) {
    return allreduce(std::span<const T>(&contribution, 1), op).front();
  }

  /// Gathers one variable-size byte buffer per rank; root receives them in
  /// rank order, other ranks receive an empty vector.
  std::vector<std::vector<std::byte>> gather_bytes(
      std::span<const std::byte> contribution, Rank root);

  template <Datatype T>
  std::vector<T> gather(std::span<const T> contribution, Rank root) {
    auto parts = gather_bytes(std::as_bytes(contribution), root);
    std::vector<T> flat;
    for (const auto& part : parts) {
      const std::size_t old = flat.size();
      flat.resize(old + part.size() / sizeof(T));
      std::memcpy(flat.data() + old, part.data(), part.size());
    }
    return flat;
  }

  /// Scatters one buffer per rank from root (MPI_Scatterv-style,
  /// variable sizes). `parts` is ignored on non-roots.
  std::vector<std::byte> scatter_bytes(
      const std::vector<std::vector<std::byte>>& parts, Rank root);

  /// Personalized all-to-all exchange of variable-size byte buffers:
  /// element d of `outgoing` goes to rank d; returns what every rank sent
  /// to us, indexed by source (MPI_Alltoallv analog).
  std::vector<std::vector<std::byte>> alltoall_bytes(
      std::vector<std::vector<std::byte>> outgoing);

  /// Gather to everyone (gather + bcast).
  std::vector<std::vector<std::byte>> allgather_bytes(
      std::span<const std::byte> contribution);

  /// Inclusive prefix reduction (MPI_Scan): rank r receives op applied
  /// over the contributions of ranks 0..r. Linear chain; O(size) latency.
  template <Datatype T, typename Op>
  T scan_value(const T& contribution, Op op) {
    const std::uint64_t seq = next_collective_seq();
    T acc = contribution;
    if (rank_ > 0) {
      std::vector<std::byte> raw;
      coll_recv(rank_ - 1, seq, 0, raw);
      if (raw.size() != sizeof(T)) {
        throw std::runtime_error("minimpi: scan size mismatch");
      }
      T incoming;
      std::memcpy(&incoming, raw.data(), sizeof(T));
      op(incoming, acc);  // incoming = prefix(0..r-1) op mine
      acc = incoming;
    }
    if (rank_ + 1 < size()) {
      coll_send(rank_ + 1, seq, 0,
                std::as_bytes(std::span<const T>(&acc, 1)));
    }
    return acc;
  }

  /// Exclusive prefix reduction (MPI_Exscan): rank r receives op over
  /// ranks 0..r-1; rank 0 receives `identity`.
  template <Datatype T, typename Op>
  T exscan_value(const T& contribution, Op op, const T& identity) {
    const std::uint64_t seq = next_collective_seq();
    T prefix = identity;
    if (rank_ > 0) {
      std::vector<std::byte> raw;
      coll_recv(rank_ - 1, seq, 0, raw);
      if (raw.size() != sizeof(T)) {
        throw std::runtime_error("minimpi: exscan size mismatch");
      }
      std::memcpy(&prefix, raw.data(), sizeof(T));
    }
    if (rank_ + 1 < size()) {
      T forward = prefix;
      op(forward, contribution);
      coll_send(rank_ + 1, seq, 0,
                std::as_bytes(std::span<const T>(&forward, 1)));
    }
    return prefix;
  }

  /// MPI_Reduce_scatter_block: element-wise reduction of `contribution`
  /// (length = block * size) followed by scattering block r to rank r.
  template <Datatype T, typename Op>
  std::vector<T> reduce_scatter_block(std::span<const T> contribution,
                                      Op op) {
    const auto n = static_cast<std::size_t>(size());
    if (contribution.size() % n != 0) {
      throw std::invalid_argument(
          "minimpi: reduce_scatter_block needs size-divisible input");
    }
    const std::size_t block = contribution.size() / n;
    auto reduced = reduce(contribution, op, 0);
    std::vector<std::vector<std::byte>> parts;
    if (rank_ == 0) {
      parts.resize(n);
      for (std::size_t r = 0; r < n; ++r) {
        const auto* p =
            reinterpret_cast<const std::byte*>(reduced.data() + r * block);
        parts[r].assign(p, p + block * sizeof(T));
      }
    }
    const auto mine = scatter_bytes(parts, 0);
    std::vector<T> out(block);
    if (mine.size() != block * sizeof(T)) {
      throw std::runtime_error("minimpi: reduce_scatter_block size mismatch");
    }
    std::memcpy(out.data(), mine.data(), mine.size());
    return out;
  }

 private:
  Comm(World& world, Rank rank, std::uint64_t context,
       std::shared_ptr<const std::vector<Rank>> group) noexcept
      : world_(&world), rank_(rank), context_(context),
        group_(std::move(group)) {}

  /// Communicator-local rank -> world rank.
  Rank to_world(Rank r) const noexcept {
    return group_ ? (*group_)[static_cast<std::size_t>(r)] : r;
  }
  /// World rank -> communicator-local rank (groups are small; linear scan).
  Rank from_world(Rank world_rank) const noexcept {
    if (!group_) return world_rank;
    for (std::size_t i = 0; i < group_->size(); ++i) {
      if ((*group_)[i] == world_rank) return static_cast<Rank>(i);
    }
    return -1;
  }
  /// Translates a receive status' source back into this communicator.
  Status localized(Status st) const noexcept {
    st.source = from_world(st.source);
    return st;
  }

  Rank virtual_rank(Rank root) const noexcept {
    return (rank_ - root + size()) % size();
  }
  Rank absolute_rank(Rank vrank, Rank root) const noexcept {
    return (vrank + root) % size();
  }

  std::uint64_t next_collective_seq() noexcept { return coll_seq_++; }

  /// Point-to-point inside a collective: isolated context + phase tag.
  void coll_send(Rank dst, std::uint64_t seq, int phase,
                 std::span<const std::byte> data);
  Status coll_recv(Rank src, std::uint64_t seq, int phase,
                   std::vector<std::byte>& out);

  void check_peer(Rank peer, const char* what) const;
  void check_tag(int tag, const char* what) const;

  /// Delivers a standard-mode send, consulting the world's transport fault
  /// hook (drop / duplicate / delay / corrupt) when one is installed.
  void deliver_user(detail::Envelope&& env, Rank dst_world);

  World* world_;
  Rank rank_;
  std::uint64_t context_;
  std::shared_ptr<const std::vector<Rank>> group_;  // null = world identity
  std::uint64_t coll_seq_ = 0;
  std::uint64_t dup_seq_ = 0;
  std::uint64_t split_seq_ = 0;
};

}  // namespace mpid::minimpi
