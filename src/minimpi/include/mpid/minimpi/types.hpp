// Basic vocabulary types of the minimpi message-passing library.
//
// minimpi is a from-scratch MPI-1-style subset backed by in-process threads
// (one thread per rank) with real data movement. It stands in for MPICH2 in
// this reproduction: the MPI-D library (the paper's contribution) is written
// against exactly the point-to-point semantics defined here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpid::minimpi {

using Rank = int;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Largest tag available to applications; larger values are reserved for
/// the collective implementation.
inline constexpr int kMaxUserTag = (1 << 24) - 1;

/// Completion information for a receive, mirroring MPI_Status.
struct Status {
  Rank source = -1;
  int tag = -1;
  std::size_t byte_count = 0;

  /// Element count for a typed receive (MPI_Get_count).
  template <typename T>
  std::size_t count() const noexcept {
    return byte_count / sizeof(T);
  }
};

}  // namespace mpid::minimpi
