// Cost models of the three communication stacks, each usable two ways:
//
//  * Closed form — one_way_latency(n) and stream_seconds(total, packet)
//    reproduce Figures 2 and 3 without a fabric (two idle hosts, no
//    contention, matching the paper's isolated ping-pong/bandwidth tests).
//
//  * Discrete-event — coroutine operations over a shared net::Fabric, used
//    by the Hadoop cluster simulator where contention matters (heartbeat
//    RPCs, shuffle fetches over Jetty, MPI transfers).
//
// Jitter is deterministic: a per-call multiplier derived from a seeded
// counter, so every run of every bench prints identical numbers.
#pragma once

#include <cstdint>

#include "mpid/net/fabric.hpp"
#include "mpid/proto/params.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/sim/task.hpp"
#include "mpid/sim/time.hpp"

namespace mpid::proto {

/// Deterministic multiplicative jitter in [1 - frac, 1 + frac].
class JitterSource {
 public:
  explicit JitterSource(std::uint64_t seed) noexcept : seed_(seed) {}
  double next(double frac) noexcept;

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

/// MPICH2-like point-to-point transport.
class MpiModel {
 public:
  MpiModel(sim::Engine& engine, net::Fabric& fabric, MpiParams params = {},
           std::uint64_t jitter_seed = 1);

  /// Closed-form one-way message latency on an idle network (Figure 2).
  sim::Time one_way_latency(std::uint64_t bytes) const;

  /// Closed-form time to stream `total` bytes in `packet`-sized messages
  /// on an idle network (Figure 3); includes deterministic jitter.
  double stream_seconds(std::uint64_t total, std::uint64_t packet);

  /// DES send over the shared fabric: sender occupancy, wire transfer with
  /// contention, receiver-side software latency.
  sim::Task<> send(int src, int dst, std::uint64_t bytes);

  const MpiParams& params() const noexcept { return params_; }

 private:
  double wire_seconds_per_byte() const noexcept;

  sim::Engine& engine_;
  net::Fabric& fabric_;
  MpiParams params_;
  JitterSource jitter_;
};

/// Hadoop RPC (VersionedProtocol over TCP with Writable serialization).
class HadoopRpcModel {
 public:
  HadoopRpcModel(sim::Engine& engine, net::Fabric& fabric,
                 HadoopRpcParams params = {}, std::uint64_t jitter_seed = 2);

  /// Closed-form one-way cost of a call carrying `bytes` of parameters on
  /// an idle network: the paper's Figure 2 series (ping-pong / 2).
  sim::Time one_way_latency(std::uint64_t bytes) const;

  /// Serialization cost alone (client + server), for tests/ablation.
  sim::Time serialization_time(std::uint64_t bytes) const;

  /// Closed-form time to push `total` bytes as `packet`-sized sequential
  /// RPC calls, each acknowledged (Figure 3's RPC series).
  double stream_seconds(std::uint64_t total, std::uint64_t packet);

  /// DES request-response call over the shared fabric. Completes when the
  /// response reaches the caller.
  sim::Task<> call(int src, int dst, std::uint64_t request_bytes,
                   std::uint64_t response_bytes);

  const HadoopRpcParams& params() const noexcept { return params_; }

 private:
  sim::Engine& engine_;
  net::Fabric& fabric_;
  HadoopRpcParams params_;
  JitterSource jitter_;
};

/// HTTP over an embedded Jetty server (the shuffle copy path).
class JettyHttpModel {
 public:
  JettyHttpModel(sim::Engine& engine, net::Fabric& fabric,
                 JettyParams params = {}, std::uint64_t jitter_seed = 3);

  /// Closed-form time to stream `total` bytes over one connection with
  /// `packet`-sized servlet writes (Figure 3's Jetty series). Includes
  /// deterministic jitter.
  double stream_seconds(std::uint64_t total, std::uint64_t packet);

  /// DES fetch of a map-output segment: HTTP request, then the response
  /// body over the shared fabric, capped at Jetty's effective rate.
  /// This is the reducer-side copier operation of the shuffle.
  sim::Task<> fetch(int src_reducer_host, int map_output_host,
                    std::uint64_t bytes);

  const JettyParams& params() const noexcept { return params_; }

 private:
  sim::Engine& engine_;
  net::Fabric& fabric_;
  JettyParams params_;
  JitterSource jitter_;
};

}  // namespace mpid::proto
