// Extension models beyond the paper's evaluation, implementing its stated
// future work:
//
//  (1) "to compare the primitives between MPI and Socket over Java NIO,
//      which is mainly used to transfer data blocks between datanodes in
//      Hadoop" — NioSocketModel below;
//  (4) "to utilize high performance interconnects such as the Infiniband
//      and datacenter networks" — interconnect profiles below, in the
//      spirit of Sur et al. [17], which the paper cites for 11-219%
//      HDFS-level gains from InfiniBand/10 GbE.
#pragma once

#include <string>
#include <vector>

#include "mpid/net/fabric.hpp"
#include "mpid/proto/models.hpp"

namespace mpid::proto {

/// Java NIO socket streaming (the HDFS datanode transfer path).
///
/// No per-call setup like Hadoop RPC and no HTTP framing like Jetty, but
/// the JVM still pays selector dispatch on the latency path and a
/// DirectByteBuffer copy per write on the bandwidth path. Parameters are
/// model predictions (the paper left the measurement as future work),
/// chosen to sit where the Java networking literature of the era puts
/// NIO: close to Jetty's streaming rate, far below it in per-message
/// latency, and well above Hadoop RPC everywhere.
struct NioSocketParams {
  /// Selector wakeup + channel dispatch per message.
  sim::Time selector_latency = sim::microseconds(550);
  /// Per-write JVM/native boundary cost (heap -> direct buffer copy).
  sim::Time per_write_overhead = sim::nanoseconds(1400);
  /// Extra per-byte copy cost on top of the wire (heap buffer -> direct
  /// buffer -> kernel: one more copy than the native stacks pay).
  double extra_seconds_per_byte = 1.5e-9;
  std::uint64_t header_bytes = 32;  // length-prefixed frames
  double jitter_frac = 0.02;
};

class NioSocketModel {
 public:
  NioSocketModel(sim::Engine& engine, net::Fabric& fabric,
                 NioSocketParams params = {}, std::uint64_t jitter_seed = 4);

  /// One-way message latency on an idle network.
  sim::Time one_way_latency(std::uint64_t bytes) const;

  /// Time to stream `total` bytes in `packet`-sized writes.
  double stream_seconds(std::uint64_t total, std::uint64_t packet);

  /// DES transfer over the shared fabric (block transfers between
  /// datanodes).
  sim::Task<> send(int src, int dst, std::uint64_t bytes);

  const NioSocketParams& params() const noexcept { return params_; }

 private:
  double wire_seconds_per_byte() const noexcept;

  sim::Engine& engine_;
  net::Fabric& fabric_;
  NioSocketParams params_;
  JitterSource jitter_;
};

/// A named interconnect configuration: the fabric plus the MPI-stack
/// parameters appropriate to it. Hadoop RPC and Jetty parameters are
/// deliberately left at their defaults across profiles — their costs are
/// JVM/serialization-bound, which is exactly why faster wires widen MPI's
/// advantage (the Sur et al. observation).
struct InterconnectProfile {
  std::string name;
  net::FabricSpec fabric;
  MpiParams mpi;
};

/// The paper's testbed: Gigabit Ethernet through one switch.
InterconnectProfile gigabit_ethernet();

/// 10 GbE: ~1.18 GB/s effective, lower latency NICs.
InterconnectProfile ten_gigabit_ethernet();

/// InfiniBand QDR with a native-verbs MPI: ~3.2 GB/s, microsecond-scale
/// software latency, cheap rendezvous.
InterconnectProfile infiniband_qdr();

/// All profiles, for sweep benches.
std::vector<InterconnectProfile> all_interconnects();

}  // namespace mpid::proto
