// Calibrated parameters of the three communication stacks the paper
// compares (Section II.B): MPICH2 send/recv, Hadoop RPC, and HTTP over
// Jetty, all on the same 8-node Gigabit Ethernet testbed.
//
// Parameterization follows the LogGP tradition: a fixed software latency
// (L), a per-message CPU overhead that bounds injection rate (o), and a
// per-byte cost (G). Hadoop RPC adds two serialization terms that the
// paper's latency curve forces: a linear per-byte Writable
// serialization/copy cost, and a buffer-growth/boxing cost that is steep
// for small messages and amortizes out around ~54 KB (derived by fitting
// the paper's anchors: 1.3 ms @ 1 B, 8.9 ms @ 1 KB, 1259 ms @ 1 MB,
// 56827 ms @ 64 MB).
//
// Calibration targets (paper, one-way latency = ping-pong / 2):
//   MPICH2:     0.52 ms @ 1 B, 0.6 ms @ 1 KB, 10.3 ms @ 1 MB, 572 ms @ 64 MB
//   Hadoop RPC: 1.3 ms @ 1 B, 8.9 ms @ 1 KB, 1259 ms @ 1 MB, 56.8 s @ 64 MB
// Bandwidth transferring 128 MB (Figure 3):
//   Hadoop RPC <= ~1.4 MB/s; Jetty ~80 -> ~108 MB/s; MPICH2 ~60 -> ~111 MB/s
//   with MPI's peak 2-3% above Jetty's and visibly smoother.
#pragma once

#include <cstdint>

#include "mpid/sim/time.hpp"

namespace mpid::proto {

struct MpiParams {
  /// Fixed software stack latency per message beyond the wire (driver,
  /// progress engine, the paper's Java-comparable measurement loop).
  sim::Time software_latency = sim::microseconds(420);
  /// Sender-side occupancy per message: bounds streaming injection rate.
  sim::Time per_message_overhead = sim::nanoseconds(2100);
  /// Extra per-byte CPU cost on top of the wire (memory copies), chosen so
  /// streaming peak lands at ~111.5 MB/s on a 117 MB/s wire.
  double extra_seconds_per_byte = 0.42e-9;
  /// Above this size MPICH2 switches from eager to rendezvous and pays an
  /// extra control round-trip.
  std::uint64_t eager_threshold = 64 * 1024;
  sim::Time rendezvous_handshake = sim::microseconds(900);
  /// Envelope bytes added to every message on the wire.
  std::uint64_t header_bytes = 64;
  /// Relative run-to-run noise ("much smoother than Jetty").
  double jitter_frac = 0.008;
};

struct HadoopRpcParams {
  /// Fixed per-call cost: call object construction, connection
  /// multiplexing, server call queue, handler dispatch (one direction).
  sim::Time call_setup = sim::microseconds(1230);
  /// Linear Writable serialization + stream copy cost, client + server.
  double ser_seconds_per_byte = 0.8e-6;
  /// Buffer-growth / boxing cost: steep for small payloads, amortizes out
  /// for large ones: amort * n / (1 + n / amort_knee_bytes).
  double amort_seconds_per_byte = 6.6e-6;
  double amort_knee_bytes = 55600.0;
  /// RPC framing (call id, method name, Writable type tags).
  std::uint64_t header_bytes = 110;
  /// Response path cost for a void return (ack still crosses the stack).
  sim::Time ack_cost = sim::microseconds(500);
  double jitter_frac = 0.02;
};

struct JettyParams {
  /// Per-request overhead: HTTP GET parse, servlet dispatch, log line.
  sim::Time request_overhead = sim::microseconds(1500);
  /// Per-write-chunk overhead (stream copy + chunked framing).
  sim::Time per_chunk_overhead = sim::nanoseconds(1050);
  /// Effective streaming rate including HTTP framing and user-space
  /// copies: ~108.5 MB/s peak on the 117 MB/s wire.
  double effective_bytes_per_second = 108.5e6;
  /// HTTP header bytes per request/response pair.
  std::uint64_t header_bytes = 230;
  /// Jetty's curve is visibly noisier than MPI's in Figure 3.
  double jitter_frac = 0.05;
};

}  // namespace mpid::proto
