#include "mpid/proto/profiles.hpp"

namespace mpid::proto {

NioSocketModel::NioSocketModel(sim::Engine& engine, net::Fabric& fabric,
                               NioSocketParams params,
                               std::uint64_t jitter_seed)
    : engine_(engine), fabric_(fabric), params_(params), jitter_(jitter_seed) {}

double NioSocketModel::wire_seconds_per_byte() const noexcept {
  return 1.0 / fabric_.spec().link_bytes_per_second +
         params_.extra_seconds_per_byte;
}

sim::Time NioSocketModel::one_way_latency(std::uint64_t bytes) const {
  return params_.selector_latency + fabric_.spec().link_latency +
         sim::from_seconds(static_cast<double>(bytes + params_.header_bytes) *
                           wire_seconds_per_byte());
}

double NioSocketModel::stream_seconds(std::uint64_t total,
                                      std::uint64_t packet) {
  const std::uint64_t writes = (total + packet - 1) / packet;
  const double seconds =
      params_.selector_latency.to_seconds() +
      fabric_.spec().link_latency.to_seconds() +
      static_cast<double>(writes) *
          (params_.per_write_overhead.to_seconds() +
           static_cast<double>(params_.header_bytes) * wire_seconds_per_byte()) +
      static_cast<double>(total) * wire_seconds_per_byte();
  return seconds * jitter_.next(params_.jitter_frac);
}

sim::Task<> NioSocketModel::send(int src, int dst, std::uint64_t bytes) {
  co_await engine_.delay(params_.per_write_overhead);
  // The JVM copy path bounds a single stream below the wire rate.
  co_await fabric_.transfer(src, dst, bytes + params_.header_bytes,
                            1.0 / wire_seconds_per_byte());
  co_await engine_.delay(params_.selector_latency);
}

InterconnectProfile gigabit_ethernet() {
  InterconnectProfile profile;
  profile.name = "GigE";
  // Defaults are the paper's testbed already.
  return profile;
}

InterconnectProfile ten_gigabit_ethernet() {
  InterconnectProfile profile;
  profile.name = "10GbE";
  profile.fabric.link_bytes_per_second = 1180.0e6;
  profile.fabric.link_latency = sim::microseconds(20);
  profile.mpi.software_latency = sim::microseconds(45);
  profile.mpi.per_message_overhead = sim::nanoseconds(1200);
  profile.mpi.extra_seconds_per_byte = 0.05e-9;
  profile.mpi.rendezvous_handshake = sim::microseconds(90);
  return profile;
}

InterconnectProfile infiniband_qdr() {
  InterconnectProfile profile;
  profile.name = "IB QDR";
  profile.fabric.link_bytes_per_second = 3200.0e6;
  profile.fabric.link_latency = sim::nanoseconds(1300);
  profile.mpi.software_latency = sim::nanoseconds(1700);  // verbs path
  profile.mpi.per_message_overhead = sim::nanoseconds(350);
  profile.mpi.extra_seconds_per_byte = 0.01e-9;
  profile.mpi.rendezvous_handshake = sim::microseconds(8);
  return profile;
}

std::vector<InterconnectProfile> all_interconnects() {
  return {gigabit_ethernet(), ten_gigabit_ethernet(), infiniband_qdr()};
}

}  // namespace mpid::proto
