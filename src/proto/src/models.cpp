#include "mpid/proto/models.hpp"

#include <cmath>

#include "mpid/common/hash.hpp"

namespace mpid::proto {

double JitterSource::next(double frac) noexcept {
  const std::uint64_t h = common::fmix64(seed_ ^ ++counter_);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return 1.0 + frac * (2.0 * u - 1.0);
}

// ------------------------------------------------------------ MpiModel --

MpiModel::MpiModel(sim::Engine& engine, net::Fabric& fabric, MpiParams params,
                   std::uint64_t jitter_seed)
    : engine_(engine), fabric_(fabric), params_(params), jitter_(jitter_seed) {}

double MpiModel::wire_seconds_per_byte() const noexcept {
  return 1.0 / fabric_.spec().link_bytes_per_second +
         params_.extra_seconds_per_byte;
}

sim::Time MpiModel::one_way_latency(std::uint64_t bytes) const {
  sim::Time t = params_.software_latency + fabric_.spec().link_latency;
  t += sim::from_seconds(static_cast<double>(bytes + params_.header_bytes) *
                         wire_seconds_per_byte());
  if (bytes > params_.eager_threshold) t += params_.rendezvous_handshake;
  return t;
}

double MpiModel::stream_seconds(std::uint64_t total, std::uint64_t packet) {
  const std::uint64_t messages = (total + packet - 1) / packet;
  double seconds =
      static_cast<double>(messages) *
          (params_.per_message_overhead.to_seconds() +
           static_cast<double>(params_.header_bytes) * wire_seconds_per_byte()) +
      static_cast<double>(total) * wire_seconds_per_byte() +
      params_.software_latency.to_seconds() +
      fabric_.spec().link_latency.to_seconds();
  if (packet > params_.eager_threshold) {
    // Rendezvous handshakes pipeline with the data stream; only the
    // per-message sender occupancy is exposed.
    seconds += static_cast<double>(messages) *
               params_.per_message_overhead.to_seconds();
  }
  return seconds * jitter_.next(params_.jitter_frac);
}

sim::Task<> MpiModel::send(int src, int dst, std::uint64_t bytes) {
  co_await engine_.delay(params_.per_message_overhead);
  if (bytes > params_.eager_threshold) {
    co_await engine_.delay(params_.rendezvous_handshake);
  }
  co_await fabric_.transfer(src, dst, bytes + params_.header_bytes);
  co_await engine_.delay(params_.software_latency);
}

// ------------------------------------------------------ HadoopRpcModel --

HadoopRpcModel::HadoopRpcModel(sim::Engine& engine, net::Fabric& fabric,
                               HadoopRpcParams params,
                               std::uint64_t jitter_seed)
    : engine_(engine), fabric_(fabric), params_(params), jitter_(jitter_seed) {}

sim::Time HadoopRpcModel::serialization_time(std::uint64_t bytes) const {
  const double n = static_cast<double>(bytes);
  const double linear = params_.ser_seconds_per_byte * n;
  const double amort = params_.amort_seconds_per_byte * n /
                       (1.0 + n / params_.amort_knee_bytes);
  return sim::from_seconds(linear + amort);
}

sim::Time HadoopRpcModel::one_way_latency(std::uint64_t bytes) const {
  const double wire =
      static_cast<double>(bytes + params_.header_bytes) /
      fabric_.spec().link_bytes_per_second;
  return params_.call_setup + serialization_time(bytes) +
         fabric_.spec().link_latency + sim::from_seconds(wire);
}

double HadoopRpcModel::stream_seconds(std::uint64_t total,
                                      std::uint64_t packet) {
  const std::uint64_t calls = (total + packet - 1) / packet;
  double seconds = 0;
  // Sequential blocking calls: Hadoop RPC serializes calls on a connection
  // and the client waits for each (void) response.
  seconds += static_cast<double>(calls) *
             (one_way_latency(packet).to_seconds() +
              params_.ack_cost.to_seconds());
  return seconds * jitter_.next(params_.jitter_frac);
}

sim::Task<> HadoopRpcModel::call(int src, int dst, std::uint64_t request_bytes,
                                 std::uint64_t response_bytes) {
  // Client-side setup + serialization occupy the caller.
  co_await engine_.delay(params_.call_setup);
  co_await engine_.delay(serialization_time(request_bytes));
  co_await fabric_.transfer(src, dst, request_bytes + params_.header_bytes);
  // Server-side handling + response path.
  co_await engine_.delay(serialization_time(response_bytes) +
                         params_.ack_cost);
  co_await fabric_.transfer(dst, src, response_bytes + params_.header_bytes);
}

// ------------------------------------------------------- JettyHttpModel --

JettyHttpModel::JettyHttpModel(sim::Engine& engine, net::Fabric& fabric,
                               JettyParams params, std::uint64_t jitter_seed)
    : engine_(engine), fabric_(fabric), params_(params), jitter_(jitter_seed) {}

double JettyHttpModel::stream_seconds(std::uint64_t total,
                                      std::uint64_t packet) {
  const std::uint64_t chunks = (total + packet - 1) / packet;
  const double seconds =
      params_.request_overhead.to_seconds() +
      fabric_.spec().link_latency.to_seconds() * 2 +  // request RTT
      static_cast<double>(chunks) * params_.per_chunk_overhead.to_seconds() +
      static_cast<double>(total + params_.header_bytes) /
          params_.effective_bytes_per_second;
  return seconds * jitter_.next(params_.jitter_frac);
}

sim::Task<> JettyHttpModel::fetch(int src_reducer_host, int map_output_host,
                                  std::uint64_t bytes) {
  // HTTP GET: request overhead + request crossing the fabric.
  co_await engine_.delay(params_.request_overhead);
  co_await fabric_.transfer(src_reducer_host, map_output_host,
                            params_.header_bytes / 2);
  // Response body; a single connection cannot beat Jetty's effective rate,
  // and fan-in contention is resolved by the fabric.
  const double spb = 1.0 / params_.effective_bytes_per_second +
                     static_cast<double>(params_.per_chunk_overhead.ns) * 1e-9 /
                         (64.0 * 1024.0);  // 64 KiB servlet buffer
  co_await fabric_.transfer(map_output_host, src_reducer_host,
                            bytes + params_.header_bytes / 2, 1.0 / spb);
}

}  // namespace mpid::proto
