#include "mpid/shuffle/options.hpp"

#include <unistd.h>

#include <stdexcept>
#include <string>

#include <sys/stat.h>

namespace mpid::shuffle {

void ShuffleOptions::validate() const {
  if (spill_threshold_bytes == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: spill_threshold_bytes must be > 0 (a zero "
        "threshold would spill on every pair)");
  }
  if (partition_frame_bytes == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: partition_frame_bytes must be > 0 (frames could "
        "never accumulate a pair)");
  }
  if (shuffle_compression == ShuffleCompression::kAuto) {
    if (compress_min_frame_bytes > partition_frame_bytes) {
      throw std::invalid_argument(
          "ShuffleOptions: compress_min_frame_bytes (" +
          std::to_string(compress_min_frame_bytes) +
          ") exceeds partition_frame_bytes (" +
          std::to_string(partition_frame_bytes) +
          "): auto compression could never trigger — lower the minimum or "
          "use kOn/kOff explicitly");
    }
    if (compress_skip_ratio <= 0.0) {
      throw std::invalid_argument(
          "ShuffleOptions: compress_skip_ratio must be positive (every "
          "frame would count as a poor sample)");
    }
    if (compress_skip_after == 0) {
      throw std::invalid_argument(
          "ShuffleOptions: compress_skip_after must be >= 1 (zero would "
          "disable compression before the first sample)");
    }
  }
  if (map_threads == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: map_threads must be >= 1 (1 = sequential)");
  }
  if (reduce_threads == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: reduce_threads must be >= 1 (1 = sequential)");
  }
  if (memory_budget_bytes > 0) {
    if (spill_page_bytes < kMinSpillPageBytes) {
      throw std::invalid_argument(
          "ShuffleOptions: spill_page_bytes (" +
          std::to_string(spill_page_bytes) + ") is below the " +
          std::to_string(kMinSpillPageBytes) +
          " floor — tinier pages make every run block header-dominated");
    }
    if (memory_budget_bytes < spill_page_bytes) {
      throw std::invalid_argument(
          "ShuffleOptions: memory_budget_bytes (" +
          std::to_string(memory_budget_bytes) +
          ") is smaller than one spill page (" +
          std::to_string(spill_page_bytes) +
          ") — the budget could never stage its own spill I/O");
    }
    if (spill_merge_fanin < 2) {
      throw std::invalid_argument(
          "ShuffleOptions: spill_merge_fanin must be >= 2 (a 1-way merge "
          "pass can never reduce the run count)");
    }
    if (spill_dir.empty()) {
      throw std::invalid_argument(
          "ShuffleOptions: spill_dir must be set when memory_budget_bytes "
          "> 0 — the budget has nowhere to spill");
    }
    struct stat st{};
    if (::stat(spill_dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode) ||
        ::access(spill_dir.c_str(), W_OK) != 0) {
      throw std::invalid_argument(
          "ShuffleOptions: spill_dir \"" + spill_dir +
          "\" is not an existing writable directory");
    }
  }
  if (node_aggregation && ranks_per_node < 1) {
    throw std::invalid_argument(
        "ShuffleOptions: ranks_per_node must be >= 1 when node_aggregation "
        "is set — a node with no mappers has nothing to aggregate");
  }
  if (coded_replication < 1) {
    throw std::invalid_argument(
        "ShuffleOptions: coded_replication must be >= 1 (1 = coding off; "
        "r > 1 replicates every map task r times for the coded shuffle)");
  }
  if (resident_rounds < 1) {
    throw std::invalid_argument(
        "ShuffleOptions: resident_rounds must be >= 1 (1 = one-shot job; "
        "N > 1 arms the iterative chain lifecycle)");
  }
  if (resident_rounds > 1 && coded_replication > 1) {
    throw std::invalid_argument(
        "ShuffleOptions: resident_rounds > 1 is incompatible with "
        "coded_replication > 1 — coded replica placement is derived from "
        "the one-shot split layout and cannot be re-armed across rounds");
  }
  if (map_task_chunks > kMaxMapTaskChunks) {
    throw std::invalid_argument(
        "ShuffleOptions: map_task_chunks (" +
        std::to_string(map_task_chunks) + ") exceeds the " +
        std::to_string(kMaxMapTaskChunks) +
        " cap — chunks that fine only add flush overhead, and splitters "
        "take the chunk count as an int");
  }
}

}  // namespace mpid::shuffle
