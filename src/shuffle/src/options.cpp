#include "mpid/shuffle/options.hpp"

#include <stdexcept>
#include <string>

namespace mpid::shuffle {

void ShuffleOptions::validate() const {
  if (spill_threshold_bytes == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: spill_threshold_bytes must be > 0 (a zero "
        "threshold would spill on every pair)");
  }
  if (partition_frame_bytes == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: partition_frame_bytes must be > 0 (frames could "
        "never accumulate a pair)");
  }
  if (shuffle_compression == ShuffleCompression::kAuto) {
    if (compress_min_frame_bytes > partition_frame_bytes) {
      throw std::invalid_argument(
          "ShuffleOptions: compress_min_frame_bytes (" +
          std::to_string(compress_min_frame_bytes) +
          ") exceeds partition_frame_bytes (" +
          std::to_string(partition_frame_bytes) +
          "): auto compression could never trigger — lower the minimum or "
          "use kOn/kOff explicitly");
    }
    if (compress_skip_ratio <= 0.0) {
      throw std::invalid_argument(
          "ShuffleOptions: compress_skip_ratio must be positive (every "
          "frame would count as a poor sample)");
    }
    if (compress_skip_after == 0) {
      throw std::invalid_argument(
          "ShuffleOptions: compress_skip_after must be >= 1 (zero would "
          "disable compression before the first sample)");
    }
  }
  if (map_threads == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: map_threads must be >= 1 (1 = sequential)");
  }
  if (reduce_threads == 0) {
    throw std::invalid_argument(
        "ShuffleOptions: reduce_threads must be >= 1 (1 = sequential)");
  }
  if (map_task_chunks > kMaxMapTaskChunks) {
    throw std::invalid_argument(
        "ShuffleOptions: map_task_chunks (" +
        std::to_string(map_task_chunks) + ") exceeds the " +
        std::to_string(kMaxMapTaskChunks) +
        " cap — chunks that fine only add flush overhead, and splitters "
        "take the chunk count as an int");
  }
}

}  // namespace mpid::shuffle
