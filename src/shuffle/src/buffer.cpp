#include "mpid/shuffle/buffer.hpp"

#include <chrono>

namespace mpid::shuffle {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void CombineRunner::combine(std::string_view key,
                            std::vector<std::string>& values) {
  const std::uint64_t start = now_ns();
  values = combiner_(key, std::move(values));
  counters_->combine_ns += now_ns() - start;
}

void CombineRunner::combine_entry(common::KvCombineTable& table,
                                  std::uint32_t index, std::string_view key) {
  // Addressed by the dense index the append just returned: the combine
  // cycle costs zero additional probes.
  const std::uint64_t start = now_ns();
  scratch_.clear();
  auto cursor = table.entry_at(index).values;
  while (auto v = cursor.next()) scratch_.emplace_back(*v);
  scratch_ = combiner_(key, std::move(scratch_));
  table.replace_at(index, scratch_);
  scratch_.clear();
  counters_->combine_ns += now_ns() - start;
}

MapOutputBuffer::MapOutputBuffer(const ShuffleOptions& options,
                                 CombineRunner* combine,
                                 ShuffleCounters* counters,
                                 store::MemoryBudget* budget)
    : flat_(options.flat_combine_table),
      spill_threshold_(options.spill_threshold_bytes),
      inline_combine_threshold_(options.inline_combine_threshold),
      budget_chunk_(options.spill_page_bytes),
      combine_(combine),
      counters_(counters),
      reservation_(budget) {}

void MapOutputBuffer::append(std::string_view key, std::string_view value) {
  // Budgeted growth is charged in whole chunks so the budget lock is
  // taken once per spill_page_bytes of data, not once per pair. A refused
  // chunk latches the pressure flag; the bytes already buffered stay
  // covered by earlier grants and drain out through the next spill.
  if (reservation_.budgeted() && !pressure_spill_) {
    const std::size_t used = bytes_used() + key.size() + value.size();
    if (used > reservation_.bytes()) {
      const std::size_t deficit = used - reservation_.bytes();
      if (!reservation_.try_grow(std::max(budget_chunk_, deficit))) {
        pressure_spill_ = true;
      }
    }
  }
  const bool inline_combine = inline_combine_threshold_ > 0 && combine_ &&
                              combine_->enabled();
  if (flat_) {
    // Flat combine table: the append bumps two arenas and touches one
    // contiguous control-byte run — no node allocation, no key copy
    // beyond the one-time interning, no small-string churn.
    const std::size_t count = table_.append(key, value);
    if (inline_combine && count >= inline_combine_threshold_) {
      combine_->combine_entry(table_, table_.last_index(), key);
    }
    return;
  }

  auto it = legacy_index_.find(key);  // transparent: no temporary string
  const bool inserted = it == legacy_index_.end();
  if (inserted) {
    it = legacy_index_
             .emplace(std::string(key),
                      static_cast<std::uint32_t>(legacy_entries_.size()))
             .first;
    legacy_entries_.push_back(LegacyEntry{it->first, {}, 0});
  }
  LegacyEntry& entry = legacy_entries_[it->second];
  entry.values.emplace_back(value);
  entry.bytes += value.size();
  legacy_bytes_ += value.size();
  if (inserted) legacy_bytes_ += key.size() + kEntryOverhead;

  if (inline_combine && entry.values.size() >= inline_combine_threshold_) {
    const std::size_t before = entry.bytes;
    combine_->combine(entry.key, entry.values);
    entry.bytes = 0;
    for (const auto& v : entry.values) entry.bytes += v.size();
    legacy_bytes_ -= std::min(legacy_bytes_, before - entry.bytes);
  }
}

void MapOutputBuffer::clear() {
  release_budget();
  if (flat_) {
    if (!table_.empty()) table_.recycle();
    return;
  }
  legacy_entries_.clear();
  legacy_index_.clear();
  legacy_bytes_ = 0;
}

}  // namespace mpid::shuffle
