#include "mpid/shuffle/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mpid::shuffle {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SpillEncoder::SpillEncoder(const ShuffleOptions& options, Setup setup)
    : options_(options),
      layout_(setup.layout),
      flush_bytes_(setup.frame_flush_bytes == 0 ? options.partition_frame_bytes
                                                : setup.frame_flush_bytes),
      partitioner_(std::move(setup.partitioner)),
      combine_(setup.combine),
      compressor_(setup.compressor),
      pool_(setup.pool),
      counters_(setup.counters),
      sink_(std::move(setup.sink)),
      writers_(setup.partitions),
      capacity_hint_(flush_bytes_ == kUnboundedFrame ? 0 : flush_bytes_) {}

void SpillEncoder::emit_direct(std::string_view key, std::string_view value) {
  const std::uint32_t p = partitioner_(key);
  auto& w = writers_[p];
  if (layout_ == Layout::kKvList) {
    w.list.begin_group(key, 1);
    w.list.add_value(value);
  } else {
    w.pair.append(key, value);
  }
  ++counters_->pairs_after_combine;
  maybe_flush(p);
}

void SpillEncoder::spill(MapOutputBuffer& buffer) {
  if (buffer.empty()) return;
  const std::uint64_t start = now_ns();
  if (flush_bytes_ != kUnboundedFrame) {
    // Reserve every frame at the flush threshold plus the buffer's exact
    // worst-case single-entry overshoot: no append can reallocate a frame
    // mid-spill, and pool acquisitions reuse the same bound.
    capacity_hint_ = flush_bytes_ + buffer.max_entry_frame_bytes();
    for (auto& w : writers_) {
      if (layout_ == Layout::kKvList) {
        w.list.reserve(capacity_hint_);
      } else {
        w.pair.reserve(capacity_hint_);
      }
    }
  }
  try {
    buffer.drain(options_.sort_keys, [this](const MapOutputBuffer::Entry& e) {
      append_entry(e);
    });
  } catch (...) {
    counters_->spill_ns += now_ns() - start;
    throw;
  }
  if (options_.sort_keys) {
    // Keep every shipped frame a single sorted run (Hadoop's per-spill
    // sorted files): a frame must not span two spill rounds, or the
    // consumer-side SegmentMerger would see a second ascending run.
    flush_all();
  }
  counters_->spill_ns += now_ns() - start;
}

void SpillEncoder::append_entry(const MapOutputBuffer::Entry& entry) {
  const std::uint32_t p = partitioner_.of_hashed(entry.key, entry.key_hash);
  if (entry.flat != nullptr) {
    const bool combining = combine_ != nullptr && combine_->enabled();
    if ((combining || options_.sort_values) && entry.value_count > 1) {
      // Combining and value sorting need materialized std::strings; the
      // scratch vector is reused across entries. Single-value entries —
      // the bulk of a skewed stream's key tail — skip both: a one-element
      // list is already sorted, and the MapReduce combiner contract (it
      // may run zero or more times) makes the combiner a no-op on a
      // single value.
      scratch_.clear();
      auto cursor = entry.flat->values;
      while (auto v = cursor.next()) scratch_.emplace_back(*v);
      if (combining) combine_->combine(entry.key, scratch_);
      append_group(p, entry.key, scratch_);
      return;
    }
    // No combining, no sorting: on the kKvList layout the slab chain
    // already holds the frame's wire format, so the spill block-copies it
    // straight into the partition frame — each byte moves exactly once,
    // with no per-value re-encode.
    auto& w = writers_[p];
    if (layout_ == Layout::kKvList) {
      w.list.begin_group(entry.key, entry.value_count);
      auto cursor = entry.flat->values;
      cursor.drain_to(w.list);
    } else {
      auto cursor = entry.flat->values;
      while (auto v = cursor.next()) w.pair.append(entry.key, *v);
    }
    counters_->pairs_after_combine += entry.value_count;
    maybe_flush(p);
    return;
  }
  if (combine_ != nullptr && combine_->enabled() && entry.values->size() > 1) {
    combine_->combine(entry.key, *entry.values);
  }
  append_group(p, entry.key, *entry.values);
}

void SpillEncoder::append_group(std::uint32_t partition, std::string_view key,
                                std::vector<std::string>& values) {
  // "It can also sort the value list for each key on demand."
  if (options_.sort_values) std::sort(values.begin(), values.end());
  auto& w = writers_[partition];
  if (layout_ == Layout::kKvList) {
    w.list.begin_group(key, values.size());
    for (const auto& v : values) w.list.add_value(v);
  } else {
    for (const auto& v : values) w.pair.append(key, v);
  }
  counters_->pairs_after_combine += values.size();
  maybe_flush(partition);
}

void SpillEncoder::maybe_flush(std::uint32_t partition) {
  // "When the data partition is full, it will trigger ... sending."
  if (flush_bytes_ == kUnboundedFrame) return;
  if (byte_size(partition) >= flush_bytes_) flush(partition);
}

void SpillEncoder::flush(std::uint32_t partition) {
  if (!pending(partition)) return;
  auto& w = writers_[partition];
  std::vector<std::byte> frame =
      layout_ == Layout::kKvList ? w.list.take() : w.pair.take();
  if (pool_ != nullptr && flush_bytes_ != kUnboundedFrame) {
    // Re-arm the writer from the pool before the frame leaves: the next
    // pair can be serialized while this frame is still in flight.
    if (layout_ == Layout::kKvList) {
      w.list.reset(pool_->acquire(capacity_hint_));
    } else {
      w.pair.reset(pool_->acquire(capacity_hint_));
    }
  }
  bool codec_framed = false;
  if (compressor_ != nullptr && compressor_->enabled()) {
    frame = compressor_->encode(std::move(frame), codec_framed);
  }
  sink_(partition, std::move(frame), codec_framed);
}

void SpillEncoder::flush_all() {
  for (std::uint32_t p = 0; p < writers_.size(); ++p) flush(p);
}

void SpillEncoder::reset() {
  for (auto& w : writers_) {
    w.list.clear();
    w.pair.clear();
  }
}

}  // namespace mpid::shuffle
