#include "mpid/shuffle/merger.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "mpid/shuffle/compress.hpp"

namespace mpid::shuffle {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SegmentMerger::add_frame(std::vector<std::byte> frame) {
  if (started_) {
    throw std::logic_error("SegmentMerger: add_frame after merging started");
  }
  if (frame.empty()) return;
  if (spill_ && !spill_->reservation.try_grow(frame.size())) {
    // Budget refused even after pressure callbacks: trade the cursors for
    // a disk run, then charge the newcomer unconditionally — post-spill
    // the reservation is empty, so the overshoot is bounded by one frame.
    spill_cursors();
    spill_->reservation.grow(frame.size());
  }
  cursors_.emplace_back(std::move(frame), next_order_++);
  advance(cursors_.back());
}

void SegmentMerger::add_wire_frame(std::vector<std::byte> wire,
                                   bool codec_framed) {
  if (started_) {
    throw std::logic_error(
        "SegmentMerger: add_wire_frame after merging started");
  }
  if (wire.empty()) return;
  pending_.push_back(PendingWire{std::move(wire), codec_framed});
}

void SegmentMerger::enable_spill(const ShuffleOptions& options,
                                 store::MemoryBudget* budget,
                                 ShuffleCounters* counters) {
  if (!cursors_.empty() || !pending_.empty() || started_) {
    throw std::logic_error(
        "SegmentMerger: enable_spill must precede the first frame");
  }
  if (budget == nullptr || budget->unbounded()) return;
  spill_ = std::make_unique<SpillState>();
  spill_->spill_dir = options.spill_dir;
  spill_->page_bytes = options.spill_page_bytes;
  spill_->fanin = std::max<std::size_t>(2, options.spill_merge_fanin);
  spill_->compress =
      options.shuffle_compression != ShuffleCompression::kOff;
  spill_->budget = budget;
  spill_->counters = counters;
  spill_->reservation = store::Reservation(budget);
  spill_->pool =
      std::make_unique<store::SpillPool>(budget, options.spill_page_bytes);
}

void SegmentMerger::prepare(WorkerPool& pool, std::size_t capacity_hint,
                            ShuffleCounters* counters) {
  if (started_) {
    throw std::logic_error("SegmentMerger: prepare after merging started");
  }
  if (spill_) {
    // Disk tier armed: decode sequentially through the budget-charged
    // add_frame path. The parallel decode would materialize every frame
    // at once — exactly the footprint the budget exists to forbid — and
    // a spilling merge is disk-bound anyway.
    if (!pending_.empty()) {
      FrameDecoder decoder(capacity_hint, /*pool=*/nullptr, counters);
      auto pending = std::move(pending_);
      pending_.clear();
      for (auto& p : pending) {
        add_frame(p.codec_framed ? decoder.decode(std::move(p.wire))
                                 : std::move(p.wire));
      }
    }
    return;
  }
  if (!pending_.empty()) {
    // Decode phase: one task per wire frame, per-worker decoders whose
    // private counter blocks fold into the shared target at commit time.
    std::vector<std::vector<std::byte>> decoded(pending_.size());
    std::vector<ShuffleCounters> worker_counters(pool.workers());
    std::vector<FrameDecoder> decoders;
    decoders.reserve(pool.workers());
    for (std::size_t w = 0; w < pool.workers(); ++w) {
      decoders.emplace_back(capacity_hint, /*pool=*/nullptr,
                            &worker_counters[w]);
    }
    pool.run(pending_.size(), [&](std::size_t task, std::size_t worker) {
      auto& p = pending_[task];
      decoded[task] = p.codec_framed ? decoders[worker].decode(std::move(p.wire))
                                     : std::move(p.wire);
    });
    pending_.clear();
    CounterCommitPoint commit(counters);
    for (const auto& wc : worker_counters) commit.commit(wc);
    // Cursors must form in arrival order — the tie-break that keeps a
    // producer's spill order within a key — so this stays sequential.
    for (auto& frame : decoded) add_frame(std::move(frame));
  }

  // Pre-merge phase: collapse contiguous arrival-order cursor ranges into
  // one sorted run per worker. Worth it only when the sequential
  // next_group() scan would otherwise touch many more cursors than the
  // pool has workers.
  const std::size_t workers = pool.workers();
  if (workers <= 1 || cursors_.size() <= workers) return;
  std::vector<std::vector<std::byte>> merged(workers);
  const std::size_t count = cursors_.size();
  pool.run(workers, [&](std::size_t run, std::size_t /*worker*/) {
    const std::size_t lo = run * count / workers;
    const std::size_t hi = (run + 1) * count / workers;
    merged[run] = merge_range(lo, hi);
  });
  cursors_.clear();
  for (auto& frame : merged) add_frame(std::move(frame));
}

template <typename Fn>
void SegmentMerger::for_each_merged_group(std::size_t lo, std::size_t hi,
                                          Fn&& fn) {
  std::string key;
  std::vector<std::string> values;
  for (;;) {
    // Smallest current key in the range; ascending index scan with a
    // strict < makes the earliest arrival win ties automatically.
    const Cursor* best = nullptr;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& cursor = cursors_[i];
      if (!cursor.current) continue;
      if (best == nullptr || cursor.current->key < best->current->key) {
        best = &cursor;
      }
    }
    if (best == nullptr) break;
    key.assign(best->current->key);
    values.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      auto& cursor = cursors_[i];
      while (cursor.current && cursor.current->key == key) {
        for (const auto v : cursor.current->values) values.emplace_back(v);
        advance(cursor);
      }
    }
    fn(key, values);
  }
}

std::vector<std::byte> SegmentMerger::merge_range(std::size_t lo,
                                                  std::size_t hi) {
  common::KvListWriter writer;
  std::size_t bytes = 0;
  for (std::size_t i = lo; i < hi; ++i) bytes += cursors_[i].frame.size();
  writer.reserve(bytes);
  for_each_merged_group(
      lo, hi,
      [&writer](const std::string& key, const std::vector<std::string>& values) {
        writer.begin_group(key, values.size());
        for (const auto& v : values) writer.add_value(v);
      });
  return writer.take();
}

void SegmentMerger::spill_cursors() {
  if (cursors_.empty()) return;
  const std::uint64_t start = now_ns();
  const std::size_t order = cursors_.front().order;
  store::RunWriter::Options wopts;
  wopts.block_bytes = spill_->page_bytes;
  wopts.compress = spill_->compress;
  store::RunWriter writer(store::SpillFile::create(spill_->spill_dir, "run"),
                          wopts, spill_->pool.get());
  // One streamed pass: groups materialize one at a time, so the spill's
  // own footprint is a group plus the writer's staging page.
  for_each_merged_group(
      0, cursors_.size(),
      [&writer](const std::string& key, const std::vector<std::string>& values) {
        writer.begin_group(key, values.size());
        for (const auto& v : values) writer.add_value(v);
      });
  auto [file, info] = writer.finish();
  spill_->runs.push_back(SpillRun{std::move(file), order});
  spill_->compacted = false;
  cursors_.clear();
  spill_->reservation.reset();
  if (spill_->counters != nullptr) {
    spill_->counters->bytes_spilled_disk += info.file_bytes;
    spill_->counters->spill_files += 1;
    spill_->counters->spill_ns += now_ns() - start;
  }
}

void SegmentMerger::finish_spill_phase() {
  if (!spill_ || spill_->compacted || spill_->runs.empty()) return;
  // Fan-in compaction: cascade the oldest `fanin` runs into one until the
  // final merge's open-run count fits. Merging an arrival-contiguous
  // prefix preserves the tie-break collapse (see the class comment), and
  // the cascade is deterministic — no size heuristics, so two runs of the
  // same job compact identically.
  while (spill_->runs.size() > spill_->fanin) {
    const std::uint64_t start = now_ns();
    std::vector<std::unique_ptr<store::GroupSource>> sources;
    sources.reserve(spill_->fanin);
    for (std::size_t i = 0; i < spill_->fanin; ++i) {
      sources.push_back(std::make_unique<store::RunSource>(
          spill_->runs[i].file.path(), spill_->pool.get()));
    }
    store::RunWriter::Options wopts;
    wopts.block_bytes = spill_->page_bytes;
    wopts.compress = spill_->compress;
    store::RunWriter writer(
        store::SpillFile::create(spill_->spill_dir, "merge"), wopts,
        spill_->pool.get());
    auto [file, info] = store::merge_sources(sources, writer);
    const std::size_t order = spill_->runs.front().order;
    spill_->runs.erase(spill_->runs.begin(),
                       spill_->runs.begin() +
                           static_cast<std::ptrdiff_t>(spill_->fanin));
    spill_->runs.insert(spill_->runs.begin(),
                        SpillRun{std::move(file), order});
    if (spill_->counters != nullptr) {
      spill_->counters->external_merge_passes += 1;
      spill_->counters->bytes_spilled_disk += info.file_bytes;
      spill_->counters->spill_files += 1;
      spill_->counters->spill_ns += now_ns() - start;
    }
  }
  spill_->compacted = true;
}

bool SegmentMerger::CursorSource::next(store::Group& group) {
  if (!cursor_->current) return false;
  group.key.assign(cursor_->current->key);
  group.values.clear();
  group.values.reserve(cursor_->current->values.size());
  for (const auto v : cursor_->current->values) group.values.emplace_back(v);
  SegmentMerger::advance(*cursor_);
  return true;
}

void SegmentMerger::build_final_stream() {
  finish_spill_phase();
  // Source index order = arrival order: runs first (each one a contiguous
  // arrival range older than every surviving cursor), then the in-memory
  // cursors, oldest first. The loser tree's index tie-break then equals
  // the in-memory merger's order tie-break.
  final_sources_.clear();
  final_sources_.reserve(spill_->runs.size() + cursors_.size());
  for (const auto& run : spill_->runs) {
    final_sources_.push_back(std::make_unique<store::RunSource>(
        run.file.path(), spill_->pool.get()));
  }
  for (auto& cursor : cursors_) {
    final_sources_.push_back(std::make_unique<CursorSource>(&cursor));
  }
  std::vector<store::GroupSource*> raw;
  raw.reserve(final_sources_.size());
  for (const auto& s : final_sources_) raw.push_back(s.get());
  final_stream_ = std::make_unique<store::MergingGroupStream>(std::move(raw));
}

void SegmentMerger::advance(Cursor& cursor) {
  const std::optional<std::string> previous =
      cursor.current
          ? std::optional<std::string>(std::string(cursor.current->key))
          : std::nullopt;
  cursor.current = cursor.reader.next();
  if (cursor.current && previous && cursor.current->key < *previous) {
    throw std::logic_error(
        "SegmentMerger: frame is not key-sorted (enable sort_keys on the "
        "producers)");
  }
}

bool SegmentMerger::next_group(std::string& key,
                               std::vector<std::string>& values) {
  if (!pending_.empty()) {
    throw std::logic_error(
        "SegmentMerger: wire frames pending — call prepare() before "
        "next_group()");
  }
  if (spill_ && !spill_->runs.empty()) {
    // Disk tier engaged: stream from the loser tree over (runs, cursors).
    if (!final_stream_) build_final_stream();
    started_ = true;
    const std::uint64_t start = now_ns();
    const bool more = final_stream_->next(key, values);
    if (spill_->counters != nullptr) {
      spill_->counters->spill_ns += now_ns() - start;
    }
    return more;
  }
  started_ = true;
  // Smallest current key across cursors (linear scan: frame counts are
  // small — one per producer spill).
  const Cursor* best = nullptr;
  for (const auto& cursor : cursors_) {
    if (!cursor.current) continue;
    if (best == nullptr || cursor.current->key < best->current->key ||
        (cursor.current->key == best->current->key &&
         cursor.order < best->order)) {
      best = &cursor;
    }
  }
  if (best == nullptr) return false;

  key.assign(best->current->key);
  values.clear();
  // Drain the chosen key from every cursor, in arrival order.
  for (auto& cursor : cursors_) {
    while (cursor.current && cursor.current->key == key) {
      for (const auto v : cursor.current->values) values.emplace_back(v);
      advance(cursor);
    }
  }
  return true;
}

}  // namespace mpid::shuffle
