#include "mpid/shuffle/merger.hpp"

#include <stdexcept>

namespace mpid::shuffle {

void SegmentMerger::add_frame(std::vector<std::byte> frame) {
  if (started_) {
    throw std::logic_error("SegmentMerger: add_frame after merging started");
  }
  if (frame.empty()) return;
  cursors_.emplace_back(std::move(frame), cursors_.size());
  advance(cursors_.back());
}

void SegmentMerger::advance(Cursor& cursor) {
  const std::optional<std::string> previous =
      cursor.current
          ? std::optional<std::string>(std::string(cursor.current->key))
          : std::nullopt;
  cursor.current = cursor.reader.next();
  if (cursor.current && previous && cursor.current->key < *previous) {
    throw std::logic_error(
        "SegmentMerger: frame is not key-sorted (enable sort_keys on the "
        "producers)");
  }
}

bool SegmentMerger::next_group(std::string& key,
                               std::vector<std::string>& values) {
  started_ = true;
  // Smallest current key across cursors (linear scan: frame counts are
  // small — one per producer spill).
  const Cursor* best = nullptr;
  for (const auto& cursor : cursors_) {
    if (!cursor.current) continue;
    if (best == nullptr || cursor.current->key < best->current->key ||
        (cursor.current->key == best->current->key &&
         cursor.order < best->order)) {
      best = &cursor;
    }
  }
  if (best == nullptr) return false;

  key.assign(best->current->key);
  values.clear();
  // Drain the chosen key from every cursor, in arrival order.
  for (auto& cursor : cursors_) {
    while (cursor.current && cursor.current->key == key) {
      for (const auto v : cursor.current->values) values.emplace_back(v);
      advance(cursor);
    }
  }
  return true;
}

}  // namespace mpid::shuffle
