#include "mpid/shuffle/merger.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "mpid/shuffle/compress.hpp"

namespace mpid::shuffle {

void SegmentMerger::add_frame(std::vector<std::byte> frame) {
  if (started_) {
    throw std::logic_error("SegmentMerger: add_frame after merging started");
  }
  if (frame.empty()) return;
  cursors_.emplace_back(std::move(frame), cursors_.size());
  advance(cursors_.back());
}

void SegmentMerger::add_wire_frame(std::vector<std::byte> wire,
                                   bool codec_framed) {
  if (started_) {
    throw std::logic_error(
        "SegmentMerger: add_wire_frame after merging started");
  }
  if (wire.empty()) return;
  pending_.push_back(PendingWire{std::move(wire), codec_framed});
}

void SegmentMerger::prepare(WorkerPool& pool, std::size_t capacity_hint,
                            ShuffleCounters* counters) {
  if (started_) {
    throw std::logic_error("SegmentMerger: prepare after merging started");
  }
  if (!pending_.empty()) {
    // Decode phase: one task per wire frame, per-worker decoders whose
    // private counter blocks fold into the shared target at commit time.
    std::vector<std::vector<std::byte>> decoded(pending_.size());
    std::vector<ShuffleCounters> worker_counters(pool.workers());
    std::vector<FrameDecoder> decoders;
    decoders.reserve(pool.workers());
    for (std::size_t w = 0; w < pool.workers(); ++w) {
      decoders.emplace_back(capacity_hint, /*pool=*/nullptr,
                            &worker_counters[w]);
    }
    pool.run(pending_.size(), [&](std::size_t task, std::size_t worker) {
      auto& p = pending_[task];
      decoded[task] = p.codec_framed ? decoders[worker].decode(std::move(p.wire))
                                     : std::move(p.wire);
    });
    pending_.clear();
    CounterCommitPoint commit(counters);
    for (const auto& wc : worker_counters) commit.commit(wc);
    // Cursors must form in arrival order — the tie-break that keeps a
    // producer's spill order within a key — so this stays sequential.
    for (auto& frame : decoded) add_frame(std::move(frame));
  }

  // Pre-merge phase: collapse contiguous arrival-order cursor ranges into
  // one sorted run per worker. Worth it only when the sequential
  // next_group() scan would otherwise touch many more cursors than the
  // pool has workers.
  const std::size_t workers = pool.workers();
  if (workers <= 1 || cursors_.size() <= workers) return;
  std::vector<std::vector<std::byte>> merged(workers);
  const std::size_t count = cursors_.size();
  pool.run(workers, [&](std::size_t run, std::size_t /*worker*/) {
    const std::size_t lo = run * count / workers;
    const std::size_t hi = (run + 1) * count / workers;
    merged[run] = merge_range(lo, hi);
  });
  cursors_.clear();
  for (auto& frame : merged) add_frame(std::move(frame));
}

std::vector<std::byte> SegmentMerger::merge_range(std::size_t lo,
                                                  std::size_t hi) {
  common::KvListWriter writer;
  std::size_t bytes = 0;
  for (std::size_t i = lo; i < hi; ++i) bytes += cursors_[i].frame.size();
  writer.reserve(bytes);
  std::string key;
  std::vector<std::string> values;
  for (;;) {
    // Smallest current key in the range; ascending index scan with a
    // strict < makes the earliest arrival win ties automatically.
    const Cursor* best = nullptr;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& cursor = cursors_[i];
      if (!cursor.current) continue;
      if (best == nullptr || cursor.current->key < best->current->key) {
        best = &cursor;
      }
    }
    if (best == nullptr) break;
    key.assign(best->current->key);
    values.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      auto& cursor = cursors_[i];
      while (cursor.current && cursor.current->key == key) {
        for (const auto v : cursor.current->values) values.emplace_back(v);
        advance(cursor);
      }
    }
    writer.begin_group(key, values.size());
    for (const auto& v : values) writer.add_value(v);
  }
  return writer.take();
}

void SegmentMerger::advance(Cursor& cursor) {
  const std::optional<std::string> previous =
      cursor.current
          ? std::optional<std::string>(std::string(cursor.current->key))
          : std::nullopt;
  cursor.current = cursor.reader.next();
  if (cursor.current && previous && cursor.current->key < *previous) {
    throw std::logic_error(
        "SegmentMerger: frame is not key-sorted (enable sort_keys on the "
        "producers)");
  }
}

bool SegmentMerger::next_group(std::string& key,
                               std::vector<std::string>& values) {
  if (!pending_.empty()) {
    throw std::logic_error(
        "SegmentMerger: wire frames pending — call prepare() before "
        "next_group()");
  }
  started_ = true;
  // Smallest current key across cursors (linear scan: frame counts are
  // small — one per producer spill).
  const Cursor* best = nullptr;
  for (const auto& cursor : cursors_) {
    if (!cursor.current) continue;
    if (best == nullptr || cursor.current->key < best->current->key ||
        (cursor.current->key == best->current->key &&
         cursor.order < best->order)) {
      best = &cursor;
    }
  }
  if (best == nullptr) return false;

  key.assign(best->current->key);
  values.clear();
  // Drain the chosen key from every cursor, in arrival order.
  for (auto& cursor : cursors_) {
    while (cursor.current && cursor.current->key == key) {
      for (const auto v : cursor.current->values) values.emplace_back(v);
      advance(cursor);
    }
  }
  return true;
}

}  // namespace mpid::shuffle
