#include "mpid/shuffle/compress.hpp"

#include <chrono>
#include <utility>

namespace mpid::shuffle {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::vector<std::byte> FrameCompressor::encode(std::vector<std::byte> frame,
                                               bool& codec_framed) {
  codec_framed = false;
  if (!enabled()) return frame;
  counters_->shuffle_bytes_raw += frame.size();

  bool skip = false;
  if (options_.shuffle_compression == ShuffleCompression::kAuto) {
    if (frame.size() < options_.compress_min_frame_bytes) {
      skip = true;
    } else if (skip_remaining_ > 0) {
      --skip_remaining_;
      skip = true;
    }
  }

  if (skip && framing_ == WireFraming::kFlagged) {
    // Raw-body escape: the frame ships exactly as realigned and the
    // caller's transport flags it unframed. No encode cost to account.
    ++counters_->frames_stored_uncompressed;
    counters_->shuffle_bytes_wire += frame.size();
    return frame;
  }

  std::vector<std::byte> wire;
  if (pool_) {
    wire = pool_->acquire(frame.size() + 16);
    wire.clear();
  } else {
    wire.reserve(frame.size() + 16);
  }
  const std::uint64_t start = now_ns();
  const auto result = skip ? common::store_frame(frame, wire)
                           : common::encode_frame(kind_, frame, wire);
  counters_->compress_ns += now_ns() - start;
  counters_->shuffle_bytes_wire += wire.size();
  if (result.codec == common::FrameCodec::kStored) {
    ++counters_->frames_stored_uncompressed;
  }
  if (options_.shuffle_compression == ShuffleCompression::kAuto && !skip) {
    const bool poor = static_cast<double>(result.wire_bytes) >
                      options_.compress_skip_ratio *
                          static_cast<double>(result.raw_bytes);
    if (poor) {
      if (++poor_samples_ >= options_.compress_skip_after) {
        skip_remaining_ = options_.compress_skip_frames;
        poor_samples_ = 0;
      }
    } else {
      poor_samples_ = 0;
    }
  }
  if (pool_) pool_->release(std::move(frame));
  codec_framed = true;
  return wire;
}

std::vector<std::byte> FrameDecoder::decode(std::vector<std::byte> wire) {
  std::vector<std::byte> frame;
  if (pool_) frame = pool_->acquire(capacity_hint_);
  const std::uint64_t start = now_ns();
  common::decode_frame(wire, frame);
  counters_->decompress_ns += now_ns() - start;
  if (pool_) pool_->release(std::move(wire));
  return frame;
}

void FrameDecoder::decode_into(std::span<const std::byte> wire,
                               std::vector<std::byte>& out) {
  const std::uint64_t start = now_ns();
  common::decode_frame(wire, out);
  counters_->decompress_ns += now_ns() - start;
}

}  // namespace mpid::shuffle
