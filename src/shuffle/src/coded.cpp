#include "mpid/shuffle/coded.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

namespace mpid::shuffle {
namespace {

constexpr std::uint32_t kCodedMagic = 0x31584443u;  // "CDX1" little endian

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t read_u32(std::span<const std::byte> in, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(
             in[offset + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

void xor_into(std::span<std::byte> dst, std::span<const std::byte> src) {
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
}

}  // namespace

void CodedPlacement::validate(std::size_t replication, std::size_t reducers) {
  if (replication < 1) {
    throw std::invalid_argument(
        "CodedPlacement: coded_replication must be >= 1 (1 = coding off)");
  }
  if (replication > reducers) {
    throw std::invalid_argument(
        "CodedPlacement: coded_replication (" + std::to_string(replication) +
        ") exceeds the reducer count (" + std::to_string(reducers) +
        ") — a coded group needs r distinct reducers to multicast to");
  }
  if (reducers % replication != 0) {
    throw std::invalid_argument(
        "CodedPlacement: coded_replication (" + std::to_string(replication) +
        ") must divide the reducer count (" + std::to_string(reducers) +
        ") — the symmetric placement needs whole groups of r reducers");
  }
  if (replication > kMaxCodedReplication) {
    throw std::invalid_argument(
        "CodedPlacement: coded_replication (" + std::to_string(replication) +
        ") exceeds the wire-format cap of " +
        std::to_string(kMaxCodedReplication));
  }
}

std::vector<std::byte> coded_encode(
    std::span<const std::span<const std::byte>> terms, std::uint32_t round,
    ShuffleCounters* counters) {
  const auto start = counters ? now_ns() : 0;
  const std::size_t r = terms.size();
  std::size_t body = 0;
  std::size_t pre = 0;
  for (const auto& t : terms) {
    body = std::max(body, t.size());
    pre += t.size();
  }
  std::vector<std::byte> payload;
  payload.reserve(12 + 4 * r + body);
  put_u32(payload, kCodedMagic);
  put_u32(payload, static_cast<std::uint32_t>(r));
  put_u32(payload, round);
  for (const auto& t : terms) {
    put_u32(payload, static_cast<std::uint32_t>(t.size()));
  }
  const std::size_t body_offset = payload.size();
  payload.resize(body_offset + body, std::byte{0});
  for (const auto& t : terms) {
    xor_into(std::span(payload).subspan(body_offset), t);
  }
  if (counters) {
    counters->bytes_pre_coding += pre;
    counters->bytes_post_coding += payload.size();
    counters->coded_encode_ns += now_ns() - start;
  }
  return payload;
}

CodedHeader parse_coded_header(std::span<const std::byte> payload) {
  if (payload.size() < 12) {
    throw std::runtime_error("coded frame: truncated header (" +
                             std::to_string(payload.size()) + " bytes)");
  }
  if (read_u32(payload, 0) != kCodedMagic) {
    throw std::runtime_error("coded frame: bad magic");
  }
  CodedHeader header;
  header.replication = read_u32(payload, 4);
  header.round = read_u32(payload, 8);
  if (header.replication < 2 || header.replication > kMaxCodedReplication) {
    throw std::runtime_error("coded frame: replication " +
                             std::to_string(header.replication) +
                             " outside [2, " +
                             std::to_string(kMaxCodedReplication) + "]");
  }
  const std::size_t lens_end = 12 + 4 * std::size_t{header.replication};
  if (payload.size() < lens_end) {
    throw std::runtime_error("coded frame: truncated length table");
  }
  header.lens.reserve(header.replication);
  std::size_t body = 0;
  for (std::uint32_t i = 0; i < header.replication; ++i) {
    header.lens.push_back(read_u32(payload, 12 + 4 * std::size_t{i}));
    body = std::max<std::size_t>(body, header.lens.back());
  }
  header.body_offset = lens_end;
  header.body_size = body;
  if (payload.size() - lens_end != body) {
    throw std::runtime_error(
        "coded frame: body is " + std::to_string(payload.size() - lens_end) +
        " bytes but the length table implies " + std::to_string(body));
  }
  return header;
}

std::vector<std::byte> coded_decode(std::span<const std::byte> payload,
                                    std::size_t pos, const CodedSideFn& side,
                                    ShuffleCounters* counters) {
  const auto start = counters ? now_ns() : 0;
  const auto header = parse_coded_header(payload);
  if (pos >= header.replication) {
    throw std::runtime_error("coded frame: decode position " +
                             std::to_string(pos) + " outside replication " +
                             std::to_string(header.replication));
  }
  const std::size_t mine = header.lens[pos];
  if (mine == 0) {
    // My stream had drained by this round: the payload only carries the
    // other positions' terms.
    if (counters) counters->coded_decode_ns += now_ns() - start;
    return {};
  }
  std::vector<std::byte> term(payload.begin() + header.body_offset,
                              payload.end());
  for (std::size_t i = 0; i < header.replication; ++i) {
    if (i == pos || header.lens[i] == 0) continue;
    const auto s = side(i, header.round);
    if (s.size() != header.lens[i]) {
      throw std::runtime_error(
          "coded frame: side term " + std::to_string(i) + " at round " +
          std::to_string(header.round) + " is " + std::to_string(s.size()) +
          " bytes, header says " + std::to_string(header.lens[i]) +
          " — replica map pipelines diverged");
    }
    xor_into(term, s);
  }
  term.resize(mine);
  if (counters) counters->coded_decode_ns += now_ns() - start;
  return term;
}

}  // namespace mpid::shuffle
