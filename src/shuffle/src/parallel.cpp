#include "mpid/shuffle/parallel.hpp"

#include <algorithm>
#include <utility>

namespace mpid::shuffle {

namespace {
/// Auto chunk count when map_task_chunks = 0. Fixed — not derived from
/// map_threads — so the chunk cadence, and therefore the wire bytes, are
/// identical at every thread count (the parity guarantee). 16 keeps four
/// workers at ~4 steal-able chunks each without shrinking chunks so far
/// that the per-chunk flush overhead shows.
constexpr std::size_t kAutoChunks = 16;
}  // namespace

std::size_t resolve_map_chunks(const ShuffleOptions& options,
                               std::size_t items) {
  const std::size_t want =
      options.map_task_chunks > 0 ? options.map_task_chunks : kAutoChunks;
  return std::max<std::size_t>(1, std::min(want, items));
}

ParallelMapper::Lane::Lane(const ShuffleOptions& options, const Setup& setup)
    : combine(setup.combiner, &counters),
      buffer(options, &combine, &counters),
      encoder(options,
              SpillEncoder::Setup{
                  setup.layout,
                  setup.partitions,
                  setup.frame_flush_bytes,
                  Partitioner(setup.partitions, setup.partitioner),
                  &combine,
                  // Lane encoders never compress: the shared codec stage
                  // is stateful (kAuto back-off) and runs at the
                  // serialized sequencer drain instead.
                  /*compressor=*/nullptr,
                  // No frame pool either — pools are not synchronized,
                  // and lanes run concurrently.
                  /*pool=*/nullptr,
                  &counters,
                  // The lane is heap-allocated, so `this` is stable:
                  // flushed frames land in the running chunk's list.
                  /*sink=*/
                  [this](std::uint32_t partition, std::vector<std::byte> frame,
                         bool /*codec_framed*/) {
                    frames.push_back(Frame{partition, std::move(frame)});
                  },
              }) {}

ParallelMapper::ParallelMapper(const ShuffleOptions& options, Setup setup)
    : options_(options), setup_(std::move(setup)), commit_(setup_.counters) {
  if (options_.shuffle_compression != ShuffleCompression::kOff) {
    compressor_.emplace(options_, setup_.compress_framing,
                        setup_.compress_kind, /*pool=*/nullptr,
                        &codec_counters_);
  }
}

std::uint64_t ParallelMapper::run(WorkerPool& pool, std::size_t chunk_count,
                                  const ChunkFn& chunk_fn) {
  next_chunk_ = 0;
  parked_.clear();
  // (Re)build one lane per worker. Lanes persist for the batch: their
  // arenas warm up across the chunks a worker executes, while the
  // chunk-local cadence (drained empty at every chunk boundary) keeps
  // the produced bytes independent of that reuse.
  if (lanes_.size() != pool.workers()) {
    lanes_.clear();
    lanes_.reserve(pool.workers());
    for (std::size_t w = 0; w < pool.workers(); ++w) {
      lanes_.push_back(std::make_unique<Lane>(options_, setup_));
    }
  }
  for (auto& lane : lanes_) lane->pairs = 0;

  pool.run(chunk_count, [&](std::size_t chunk, std::size_t worker) {
    run_chunk(chunk, worker, chunk_fn);
  });

  // The pool has joined, so the codec block is quiescent: fold it into
  // the shared target like any other worker block.
  commit_.commit(codec_counters_);
  codec_counters_ = ShuffleCounters{};

  std::uint64_t pairs = 0;
  for (auto& lane : lanes_) pairs += lane->pairs;
  return pairs;
}

void ParallelMapper::run_chunk(std::size_t chunk, std::size_t worker,
                               const ChunkFn& chunk_fn) {
  Lane& lane = *lanes_[worker];
  lane.frames.clear();

  const EmitFn emit = [&lane](std::string_view key, std::string_view value) {
    lane.buffer.append(key, value);
    ++lane.pairs;
    if (lane.buffer.should_spill()) {
      lane.encoder.spill(lane.buffer);
    }
  };

  try {
    chunk_fn(chunk, emit);
    if (!lane.buffer.empty()) lane.encoder.spill(lane.buffer);
    lane.encoder.flush_all();
  } catch (...) {
    // Leave the lane drained so a later chunk on this worker (another
    // task may already be in flight) starts from the clean state the
    // cadence requires.
    lane.buffer.clear();
    lane.encoder.reset();
    lane.frames.clear();
    commit_.commit(lane.counters);
    lane.counters = ShuffleCounters{};
    throw;
  }

  // Commit-time accumulation: this chunk's counter block folds into the
  // shared target from the worker thread, then the lane block resets for
  // the worker's next chunk.
  commit_.commit(lane.counters);
  lane.counters = ShuffleCounters{};

  sequence(chunk, std::move(lane.frames));
  lane.frames.clear();
}

void ParallelMapper::sequence(std::size_t chunk, std::vector<Frame> frames) {
  std::lock_guard lock(seq_mu_);
  parked_.emplace(chunk, std::move(frames));
  // Drain every consecutive chunk starting at next_chunk_. Holding the
  // lock through delivery serializes the compressor and the sink — the
  // two stages whose state/order the determinism contract protects.
  for (auto it = parked_.find(next_chunk_); it != parked_.end();
       it = parked_.find(next_chunk_)) {
    for (auto& frame : it->second) deliver(frame);
    parked_.erase(it);
    ++next_chunk_;
  }
}

void ParallelMapper::deliver(Frame& frame) {
  if (compressor_) {
    bool codec_framed = false;
    auto wire = compressor_->encode(std::move(frame.bytes), codec_framed);
    setup_.sink(frame.partition, std::move(wire), codec_framed);
    return;
  }
  setup_.sink(frame.partition, std::move(frame.bytes), false);
}

}  // namespace mpid::shuffle
