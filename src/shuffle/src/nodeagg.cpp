#include "mpid/shuffle/nodeagg.hpp"

#include <chrono>
#include <utility>

#include "mpid/common/kvframe.hpp"

namespace mpid::shuffle {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

NodeAggregator::NodeAggregator(const ShuffleOptions& options, Setup setup)
    : options_(options),
      counters_(setup.counters),
      compressor_(setup.compressor),
      sink_(std::move(setup.sink)),
      buffer_(options_, setup.combine, setup.counters, setup.budget),
      // The inner encoder ships raw frames to a shim sink: the merged
      // bytes are counted as post-aggregation volume first, and only
      // then codec-framed — so compression never masks (or inflates)
      // the structural cut the pre/post counters measure.
      encoder_(options_,
               SpillEncoder::Setup{
                   .layout = setup.out_layout,
                   .partitions = setup.partitions,
                   .frame_flush_bytes = setup.frame_flush_bytes,
                   .partitioner = std::move(setup.partitioner),
                   .combine = setup.combine,
                   .compressor = nullptr,
                   .pool = setup.pool,
                   .counters = setup.counters,
                   .sink =
                       [this](std::uint32_t partition,
                              std::vector<std::byte> frame, bool) {
                         counters_->bytes_post_node_agg += frame.size();
                         bool codec_framed = false;
                         if (compressor_ != nullptr && compressor_->enabled()) {
                           frame = compressor_->encode(std::move(frame),
                                                       codec_framed);
                         }
                         sink_(partition, std::move(frame), codec_framed);
                       },
               }) {}

void NodeAggregator::add_frame(std::span<const std::byte> frame,
                               Layout in_layout) {
  const std::uint64_t start = now_ns();
  counters_->bytes_pre_node_agg += frame.size();
  if (in_layout == Layout::kKvList) {
    common::KvListReader reader(frame);
    while (auto group = reader.next()) {
      for (const auto value : group->values) {
        buffer_.append(group->key, value);
        if (buffer_.should_spill()) encoder_.spill(buffer_);
      }
    }
  } else {
    common::KvReader reader(frame);
    while (auto pair = reader.next()) {
      buffer_.append(pair->key, pair->value);
      if (buffer_.should_spill()) encoder_.spill(buffer_);
    }
  }
  counters_->node_agg_merge_ns += now_ns() - start;
}

void NodeAggregator::finish() {
  const std::uint64_t start = now_ns();
  encoder_.spill(buffer_);
  encoder_.flush_all();
  counters_->node_agg_merge_ns += now_ns() - start;
}

void NodeAggregator::reset() {
  buffer_.clear();
  encoder_.reset();
}

}  // namespace mpid::shuffle
