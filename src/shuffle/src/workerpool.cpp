#include "mpid/shuffle/workerpool.hpp"

#include <ctime>

#include <algorithm>
#include <stdexcept>

namespace mpid::shuffle {

namespace {

/// CPU time of the calling thread, for the per-worker batch accounting.
std::uint64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace

WorkerPool::WorkerPool(std::size_t threads) : deques_(std::max<std::size_t>(threads, 1)) {
  if (threads < 1) {
    throw std::invalid_argument("WorkerPool: need >= 1 worker");
  }
  threads_.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) {
    threads_.emplace_back([this, w] { pool_thread_main(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(std::size_t count, const TaskFn& fn) {
  batch_cpu_ns_.assign(workers(), 0);
  if (count == 0) return;
  if (workers() == 1) {
    // Caller-only pool: no threads, no locking — the `threads = 1`
    // configuration costs exactly a loop.
    const std::uint64_t start = thread_cpu_ns();
    for (std::size_t t = 0; t < count; ++t) fn(t, 0);
    batch_cpu_ns_[0] = thread_cpu_ns() - start;
    return;
  }
  {
    std::lock_guard lock(mu_);
    // Deal contiguous blocks: worker w owns [w*count/W, (w+1)*count/W).
    const std::size_t workers_n = workers();
    for (std::size_t w = 0; w < workers_n; ++w) {
      auto& dq = deques_[w];
      std::lock_guard dq_lock(dq.mu);
      dq.tasks.clear();
      const std::size_t lo = w * count / workers_n;
      const std::size_t hi = (w + 1) * count / workers_n;
      for (std::size_t t = lo; t < hi; ++t) dq.tasks.push_back(t);
    }
    fn_ = &fn;
    pending_ = count;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  work(0);
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool WorkerPool::take(std::size_t worker, std::size_t& task) {
  {
    // Own deque first, front-out: the block dealt to this worker runs in
    // ascending task order when nobody steals.
    auto& own = deques_[worker];
    std::lock_guard lock(own.mu);
    if (!own.tasks.empty()) {
      task = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal half of the largest victim's remainder from the back. Tasks are
  // coarse, so scanning every deque per steal is noise.
  for (;;) {
    std::size_t victim = worker;
    std::size_t best = 0;
    for (std::size_t w = 0; w < deques_.size(); ++w) {
      if (w == worker) continue;
      std::lock_guard lock(deques_[w].mu);
      if (deques_[w].tasks.size() > best) {
        best = deques_[w].tasks.size();
        victim = w;
      }
    }
    if (best == 0) return false;  // nothing left anywhere
    // Move the stolen half out under the victim's lock alone, then stash
    // the remainder under our own lock — never both at once (two workers
    // stealing from each other would otherwise order the two deque
    // mutexes both ways, a lock-order inversion).
    std::vector<std::size_t> stolen;  // descending victim order
    {
      auto& dq = deques_[victim];
      std::lock_guard victim_lock(dq.mu);
      if (dq.tasks.empty()) continue;  // raced: re-scan
      const std::size_t grab = (dq.tasks.size() + 1) / 2;
      stolen.reserve(grab);
      for (std::size_t i = 0; i < grab; ++i) {
        stolen.push_back(dq.tasks.back());
        dq.tasks.pop_back();
      }
    }
    task = stolen.back();  // lowest-index stolen task runs first
    stolen.pop_back();
    if (!stolen.empty()) {
      auto& own = deques_[worker];
      std::lock_guard own_lock(own.mu);
      for (const std::size_t t : stolen) own.tasks.push_front(t);
    }
    return true;
  }
}

void WorkerPool::finish_task(std::size_t worker, std::uint64_t cpu_ns) {
  std::lock_guard lock(mu_);
  batch_cpu_ns_[worker] += cpu_ns;
  if (--pending_ == 0) done_cv_.notify_all();
}

void WorkerPool::work(std::size_t worker) {
  const TaskFn* fn;
  {
    std::lock_guard lock(mu_);
    fn = fn_;
  }
  std::size_t task;
  while (take(worker, task)) {
    const std::uint64_t start = thread_cpu_ns();
    try {
      (*fn)(task, worker);
    } catch (...) {
      std::size_t drained;
      {
        std::lock_guard lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        // Abandon everything still queued (in-flight tasks on other
        // workers finish); each worker drains only its own deque, steals
        // find the rest empty.
        auto& own = deques_[worker];
        std::lock_guard own_lock(own.mu);
        drained = own.tasks.size();
        own.tasks.clear();
        pending_ -= drained;
      }
      (void)drained;
    }
    finish_task(worker, thread_cpu_ns() - start);
  }
}

void WorkerPool::pool_thread_main(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    work(worker);
  }
}

}  // namespace mpid::shuffle
