#include "mpid/shuffle/workerpool.hpp"

#include <ctime>

#include <algorithm>
#include <stdexcept>

namespace mpid::shuffle {

namespace {

/// CPU time of the calling thread, for the per-worker batch accounting.
std::uint64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace

WorkerPool::WorkerPool(std::size_t threads) : deques_(std::max<std::size_t>(threads, 1)) {
  if (threads < 1) {
    throw std::invalid_argument("WorkerPool: need >= 1 worker");
  }
  threads_.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) {
    threads_.emplace_back([this, w] { pool_thread_main(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(std::size_t count, const TaskFn& fn) {
  batch_cpu_ns_.assign(workers(), 0);
  if (count == 0) return;
  if (workers() == 1) {
    // Caller-only pool: no threads, no locking — the `threads = 1`
    // configuration costs exactly a loop.
    const std::uint64_t start = thread_cpu_ns();
    for (std::size_t t = 0; t < count; ++t) fn(t, 0);
    batch_cpu_ns_[0] = thread_cpu_ns() - start;
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard lock(mu_);
    // Deal contiguous blocks: worker w owns [w*count/W, (w+1)*count/W).
    const std::size_t workers_n = workers();
    for (std::size_t w = 0; w < workers_n; ++w) {
      auto& dq = deques_[w];
      dq.clear();
      const std::size_t lo = w * count / workers_n;
      const std::size_t hi = (w + 1) * count / workers_n;
      for (std::size_t t = lo; t < hi; ++t) dq.push_back(t);
    }
    fn_ = &fn;
    pending_ = count;
    first_error_ = nullptr;
    gen = ++generation_;
  }
  start_cv_.notify_all();
  work(0, gen);
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool WorkerPool::take(std::size_t worker, std::size_t& task) {
  // Own deque first, front-out: the block dealt to this worker runs in
  // ascending task order when nobody steals.
  auto& own = deques_[worker];
  if (!own.empty()) {
    task = own.front();
    own.pop_front();
    return true;
  }
  // Steal half of the largest victim's remainder from the back. Tasks
  // are coarse, so scanning every deque per steal is noise.
  std::size_t victim = worker;
  std::size_t best = 0;
  for (std::size_t w = 0; w < deques_.size(); ++w) {
    if (w == worker) continue;
    if (deques_[w].size() > best) {
      best = deques_[w].size();
      victim = w;
    }
  }
  if (best == 0) return false;  // nothing left anywhere
  auto& dq = deques_[victim];
  const std::size_t keep = dq.size() - (dq.size() + 1) / 2;
  const auto split = dq.begin() + static_cast<std::ptrdiff_t>(keep);
  task = *split;  // lowest-index stolen task runs first
  own.assign(split + 1, dq.end());
  dq.resize(keep);
  return true;
}

void WorkerPool::finish_task(std::size_t worker, std::uint64_t cpu_ns) {
  std::lock_guard lock(mu_);
  batch_cpu_ns_[worker] += cpu_ns;
  if (--pending_ == 0) done_cv_.notify_all();
}

void WorkerPool::work(std::size_t worker, std::uint64_t gen) {
  for (;;) {
    const TaskFn* fn;
    std::size_t task;
    {
      std::lock_guard lock(mu_);
      // Stale-wake guard: a worker preempted between waking for batch
      // `gen` and arriving here may find that batch already completed —
      // fn_ cleared, or a later batch published with fresh tasks. The
      // generation check and the task pop happen under the same lock
      // hold, so a task can never pair with a different batch's fn.
      if (generation_ != gen || fn_ == nullptr) return;
      if (!take(worker, task)) return;
      fn = fn_;
    }
    const std::uint64_t start = thread_cpu_ns();
    try {
      (*fn)(task, worker);
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon everything still queued, on every deque; only tasks
      // already in flight on other workers finish.
      for (auto& dq : deques_) {
        pending_ -= dq.size();
        dq.clear();
      }
    }
    finish_task(worker, thread_cpu_ns() - start);
  }
}

void WorkerPool::pool_thread_main(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    work(worker, seen_generation);
  }
}

}  // namespace mpid::shuffle
