// Coded shuffle (DESIGN.md §15): XOR-coded multicast of shuffle frames
// over r×-replicated map tasks — Coded MapReduce's compute-for-
// communication trade (Li, Maddah-Ali, Avestimehr; PAPERS.md).
//
// The placement is a symmetric node-group design: the R reducers form
// G = R / r consecutive groups of r, and every map task (or node, under
// node aggregation) has a home group — the one group whose r reducers
// ALL replicate that task's map work. Each replica runs the identical
// deterministic map pipeline on one of r fixed sub-splits of the task's
// input, so all r copies of a (sub-split, partition) frame sequence are
// byte-identical codeable units (the determinism guarantee of the
// thread-parallel and node-aggregation stages makes this free).
//
// One multicast round then serves the whole home group at once: the
// producer XORs the r aligned frames {sub i → the reducer at group
// position i} into a single payload, and each reducer reconstructs its
// own term by XOR-ing out the r−1 terms it already computed locally as
// side information. The fabric carries one transmission per group where
// the uncoded shuffle carried r unicasts of uncoded bytes — and because
// a reducer's own partition of its replicated map work never crosses
// the wire at all, the structural cut compounds beyond r on small
// group counts.
//
// This header is transport-agnostic: it owns the placement arithmetic
// and the encode/decode of one coded payload. MPI-D supplies the
// multicast (minimpi's multicast_bytes_owned), the per-unit frame
// streams and the resilient-lane integration; the mpidsim Figure-6
// model charges the same trade as cost constants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mpid/shuffle/counters.hpp"

namespace mpid::shuffle {

/// Placement arithmetic of the symmetric node-group design. Reducer q
/// sits at position pos_of_reducer(q) of group group_of_reducer(q);
/// replication unit u (a mapper, or a node under node aggregation) codes
/// toward home_group(u), whose r reducers all replicate u's map work.
struct CodedPlacement {
  std::size_t replication = 1;  // r: replicas per map task (1 = off)
  std::size_t reducers = 1;     // R: must be a multiple of r

  std::size_t groups() const noexcept { return reducers / replication; }
  std::size_t group_of_reducer(std::size_t q) const noexcept {
    return q / replication;
  }
  std::size_t pos_of_reducer(std::size_t q) const noexcept {
    return q % replication;
  }
  std::size_t home_group(std::size_t unit) const noexcept {
    return unit % groups();
  }
  /// First reducer index of a group (its members are base .. base+r-1).
  std::size_t group_base(std::size_t group) const noexcept {
    return group * replication;
  }

  /// Throws std::invalid_argument unless 1 <= r <= reducers and r
  /// divides reducers (the symmetric design needs whole groups).
  static void validate(std::size_t replication, std::size_t reducers);
};

/// Hard cap on r accepted by the wire format (and by any sane config:
/// r× redundant map compute past this could never pay for itself).
inline constexpr std::uint32_t kMaxCodedReplication = 64;

/// Parsed header of one coded payload. Wire layout (all u32 little
/// endian): [magic 'CDX1'][replication r][round][lens[0..r-1]][body],
/// where body is the byte-wise XOR of the r terms, each zero-padded to
/// max(lens). A term past the end of its stream has len 0 (groups'
/// streams drain at different rounds).
struct CodedHeader {
  std::uint32_t replication = 0;
  std::uint32_t round = 0;
  std::vector<std::uint32_t> lens;  // one per group position
  std::size_t body_offset = 0;      // byte offset of the XOR body
  std::size_t body_size = 0;        // == max(lens)
};

/// XOR-encodes the r aligned terms of one round into a multicast
/// payload. terms[i] is group position i's frame for this round (empty
/// when that stream already drained). Accounts bytes_pre_coding (the
/// bytes r unicasts would have carried), bytes_post_coding (the coded
/// payload actually shipped) and coded_encode_ns into `counters` when
/// non-null.
std::vector<std::byte> coded_encode(
    std::span<const std::span<const std::byte>> terms, std::uint32_t round,
    ShuffleCounters* counters);

/// Validates and parses a coded payload's header. Hostile-input safe:
/// throws std::runtime_error (never reads out of bounds) on bad magic,
/// r outside [2, kMaxCodedReplication], a truncated header, or a body
/// whose size disagrees with max(lens).
CodedHeader parse_coded_header(std::span<const std::byte> payload);

/// Side-information source for decode: returns the locally recomputed
/// term of group position `sub` at `round`. Called only for sub !=
/// the decoder's own position and only when the header says that term
/// is non-empty; the returned span must match lens[sub] exactly (any
/// mismatch means replica pipelines diverged — decode throws).
using CodedSideFn =
    std::function<std::span<const std::byte>(std::size_t sub, std::uint32_t round)>;

/// Recovers the decoder's own term (group position `pos`) from a coded
/// payload by XOR-ing out the r−1 side terms. Returns the term truncated
/// to its true length — empty when the header says this position's
/// stream had drained. Accounts coded_decode_ns into `counters` when
/// non-null. Throws std::runtime_error on malformed payloads or
/// side-term length mismatches.
std::vector<std::byte> coded_decode(std::span<const std::byte> payload,
                                    std::size_t pos, const CodedSideFn& side,
                                    ShuffleCounters* counters);

}  // namespace mpid::shuffle
