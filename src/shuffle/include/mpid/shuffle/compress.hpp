// FrameCompressor / FrameDecoder: the optional codec stage between the
// spill encoder and the transport sink.
//
// Policy (what to compress) is shared — it comes from ShuffleOptions and
// is identical under both runtimes: kOn always encodes, kAuto skips
// header-dominated frames below compress_min_frame_bytes and backs off
// after a run of poor ratios (re-sampling later, since the data
// distribution can drift across a job's spills).
//
// Framing (how a skipped frame ships) is transport-specific:
//
//   * kSelfDescribing (MPI-D): every frame on the wire is a codec frame;
//     a skip uses the stored escape, so the consumer decodes
//     unconditionally. Required because the MPI byte stream carries no
//     out-of-band flag.
//   * kFlagged (MiniHadoop): a skip ships the truly raw frame and the
//     caller records codec_framed = false — the servlet simply omits the
//     X-Mpid-Codec response header, like Hadoop's shuffle omitting its
//     codec headers for uncompressed map output.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpid/common/codec.hpp"
#include "mpid/common/framepool.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/options.hpp"

namespace mpid::shuffle {

enum class WireFraming { kSelfDescribing, kFlagged };

/// Producer-side codec stage. One instance per task attempt: the auto
/// skip state is per-producer, like Hadoop's per-task codec instances.
class FrameCompressor {
 public:
  /// `pool` (nullable) recycles frame allocations across spills; `kind`
  /// is the codec frame kind recorded in the wire header (kKvList for
  /// MPI-D partition frames, kKvPair for MiniHadoop segments).
  FrameCompressor(const ShuffleOptions& options, WireFraming framing,
                  common::FrameKind kind, common::FramePool* pool,
                  ShuffleCounters* counters)
      : options_(options),
        framing_(framing),
        kind_(kind),
        pool_(pool),
        counters_(counters) {}

  bool enabled() const noexcept {
    return options_.shuffle_compression != ShuffleCompression::kOff;
  }

  /// Encodes one frame for the wire and updates the byte/time counters.
  /// `codec_framed` reports whether the returned bytes are a codec frame
  /// (always true under kSelfDescribing; false under kFlagged when the
  /// frame skipped the encoder and ships raw).
  std::vector<std::byte> encode(std::vector<std::byte> frame,
                                bool& codec_framed);

 private:
  const ShuffleOptions& options_;
  const WireFraming framing_;
  const common::FrameKind kind_;
  common::FramePool* pool_;
  ShuffleCounters* counters_;

  // Auto back-off state: consecutive poor ratio samples, and how many
  // upcoming frames still skip the encoder.
  std::size_t poor_samples_ = 0;
  std::size_t skip_remaining_ = 0;
};

/// Consumer-side codec stage: decodes wire frames back to raw frame bytes
/// and accounts the wall time into decompress_ns.
class FrameDecoder {
 public:
  /// `capacity_hint` pre-sizes pool-acquired output buffers (use the
  /// producer's frame size target); `pool` is nullable.
  FrameDecoder(std::size_t capacity_hint, common::FramePool* pool,
               ShuffleCounters* counters)
      : capacity_hint_(capacity_hint), pool_(pool), counters_(counters) {}

  /// Decodes an owned wire frame, releasing it to the pool afterwards.
  std::vector<std::byte> decode(std::vector<std::byte> wire);

  /// Decodes a borrowed wire frame (e.g. an HTTP body) into `out`.
  void decode_into(std::span<const std::byte> wire,
                   std::vector<std::byte>& out);

 private:
  std::size_t capacity_hint_;
  common::FramePool* pool_;
  ShuffleCounters* counters_;
};

}  // namespace mpid::shuffle
