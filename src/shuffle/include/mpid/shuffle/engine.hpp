// SpillEncoder: the realignment stage — drains a MapOutputBuffer into
// per-partition wire frames and hands full frames to a transport sink.
//
// This is the paper's "realign the buffered map output by partition"
// step, factored out of both runtimes:
//
//   * MPI-D realigns into KvList frames (grouped key → [values]) bounded
//     at partition_frame_bytes, and its sink sends each full frame
//     immediately over the data communicator ("when the data partition is
//     full, it will trigger ... sending");
//   * MiniHadoop realigns into KvPair frames (flat key/value pairs) with
//     an unbounded flush threshold, so each partition accumulates one
//     segment that the sink publishes to the tasktracker's SegmentStore
//     at task end.
//
// The encoder owns partitioning (via Partitioner), spill-time combining
// (via CombineRunner), value sorting, frame flush policy and optional
// compression (via FrameCompressor); the sink only moves bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "mpid/common/framepool.hpp"
#include "mpid/common/kvframe.hpp"
#include "mpid/shuffle/buffer.hpp"
#include "mpid/shuffle/compress.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/options.hpp"
#include "mpid/shuffle/partition.hpp"

namespace mpid::shuffle {

/// Wire layout of the realigned frames.
enum class Layout {
  kKvList,  // grouped key → [values] (common::KvListWriter)
  kKvPair,  // flat key/value pairs (common::KvWriter)
};

class SpillEncoder {
 public:
  /// frame_flush_bytes value meaning "never flush mid-spill": partitions
  /// accumulate until flush_all() (the MiniHadoop one-segment-per-
  /// partition shape).
  static constexpr std::size_t kUnboundedFrame = ~std::size_t{0};

  /// Receives one realigned frame for `partition`. `codec_framed` is true
  /// when the bytes are a codec frame (see FrameCompressor); the frame is
  /// owned by the sink from here on.
  using FrameSink = std::function<void(
      std::uint32_t partition, std::vector<std::byte> frame,
      bool codec_framed)>;

  struct Setup {
    Layout layout = Layout::kKvList;
    std::uint32_t partitions = 1;
    /// Flush threshold per partition frame; 0 means "use
    /// options.partition_frame_bytes", kUnboundedFrame disables mid-spill
    /// flushing.
    std::size_t frame_flush_bytes = 0;
    Partitioner partitioner;
    CombineRunner* combine = nullptr;        // nullable: no combiner
    FrameCompressor* compressor = nullptr;   // nullable: ship raw
    /// Re-arms flushed writers with recycled allocations (nullable: a
    /// flushed writer restarts empty). Only consulted on bounded frames.
    common::FramePool* pool = nullptr;
    ShuffleCounters* counters = nullptr;
    FrameSink sink;
  };

  SpillEncoder(const ShuffleOptions& options, Setup setup);

  SpillEncoder(const SpillEncoder&) = delete;
  SpillEncoder& operator=(const SpillEncoder&) = delete;

  /// Realigns one pair straight into its partition frame, bypassing the
  /// buffer (the direct_realign path: no combining, no sorting).
  void emit_direct(std::string_view key, std::string_view value);

  /// Drains `buffer` into the partition frames: per entry — partition
  /// select (reusing the cached key hash), spill-time combine, optional
  /// value sort, serialize; full frames flush to the sink as they fill.
  /// With sort_keys every partition flushes at the end of the round, so a
  /// shipped frame is always a single sorted run (Hadoop's per-spill
  /// sorted files). The whole round is timed into spill_ns.
  void spill(MapOutputBuffer& buffer);

  /// Flushes every partition's pending frame (in partition order). Call
  /// at task end after the final spill.
  void flush_all();

  /// Discards all pending frame bytes (task restart support); keeps the
  /// writers' allocations.
  void reset();

 private:
  struct Writer {
    common::KvListWriter list;
    common::KvWriter pair;
  };

  void append_entry(const MapOutputBuffer::Entry& entry);
  void append_group(std::uint32_t partition, std::string_view key,
                    std::vector<std::string>& values);
  void maybe_flush(std::uint32_t partition);
  void flush(std::uint32_t partition);

  std::size_t byte_size(std::uint32_t partition) const noexcept {
    const auto& w = writers_[partition];
    return layout_ == Layout::kKvList ? w.list.byte_size()
                                      : w.pair.byte_size();
  }
  bool pending(std::uint32_t partition) const noexcept {
    const auto& w = writers_[partition];
    return layout_ == Layout::kKvList ? w.list.group_count() > 0
                                      : w.pair.pair_count() > 0;
  }

  const ShuffleOptions& options_;
  const Layout layout_;
  const std::size_t flush_bytes_;
  Partitioner partitioner_;
  CombineRunner* combine_;
  FrameCompressor* compressor_;
  common::FramePool* pool_;
  ShuffleCounters* counters_;
  FrameSink sink_;

  std::vector<Writer> writers_;
  std::size_t capacity_hint_ = 0;
  std::vector<std::string> scratch_;  // flat-entry materialization
};

}  // namespace mpid::shuffle
