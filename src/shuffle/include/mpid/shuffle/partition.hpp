// Partitioner: the key → partition selector of the realignment stage.
//
// The default is the paper's hash-mod selector ("similar to the
// HashPartitioner in the Hadoop MapReduce framework"): fnv1a64(key) mod
// partitions. The flat combine table caches exactly that hash per entry
// (KvCombineTable::EntryView::key_hash), so a spill picks the partition
// without rehashing the key — of_hashed() is that fast path. A custom
// PartitionFn (range partitioning for globally sorted output, etc.)
// overrides both paths and is bounds-checked on every call.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "mpid/common/hash.hpp"
#include "mpid/shuffle/options.hpp"

namespace mpid::shuffle {

class Partitioner {
 public:
  Partitioner() = default;
  explicit Partitioner(std::uint32_t partitions, PartitionFn custom = {})
      : partitions_(partitions), custom_(std::move(custom)) {}

  std::uint32_t partitions() const noexcept { return partitions_; }

  /// Selects the partition for `key`, hashing it if no custom selector is
  /// configured. Throws std::out_of_range if a custom selector returns an
  /// index >= partitions.
  std::uint32_t operator()(std::string_view key) const {
    if (!custom_) return common::hash_partition(key, partitions_);
    const auto p = custom_(key, partitions_);
    if (p >= partitions_) {
      throw std::out_of_range(
          "shuffle::Partitioner: custom partitioner returned an index >= "
          "the partition count");
    }
    return p;
  }

  /// As operator(), but reuses a caller-cached fnv1a64(key) — the hash
  /// the combine table already paid for — on the default path.
  std::uint32_t of_hashed(std::string_view key,
                          std::uint64_t fnv_hash) const {
    if (!custom_) {
      return static_cast<std::uint32_t>(fnv_hash % partitions_);
    }
    return (*this)(key);
  }

 private:
  std::uint32_t partitions_ = 1;
  PartitionFn custom_;
};

}  // namespace mpid::shuffle
