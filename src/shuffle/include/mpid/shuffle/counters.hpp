// ShuffleCounters: the shared counter block of the shuffle pipeline.
//
// Both runtimes report the same dataflow quantities — pairs surviving the
// combiner, spill rounds, combine/spill wall time, compression byte and
// time accounting. `core::Stats` and `minihadoop::JobSummary` inherit
// this block and add their transport-specific counters (frame windows,
// HTTP requests, recovery) on top, so a stage object in mpid::shuffle can
// fold its accounting into either runtime through one pointer.
#pragma once

#include <cstdint>
#include <mutex>

namespace mpid::shuffle {

struct ShuffleCounters {
  // --- combine / spill path (the memory side of the map stage) ---
  std::uint64_t pairs_after_combine = 0;  // pairs surviving the combiner
  std::uint64_t spills = 0;               // map-output buffer spill rounds
  /// Wall time inside the user combiner (incremental and spill-time runs,
  /// including value materialization around incremental calls).
  /// Spill-time combining also counts toward spill_ns.
  std::uint64_t combine_ns = 0;
  /// Wall time of buffer spill rounds — drain, realignment into partition
  /// frames and any frame flushes they trigger — plus, when a memory
  /// budget forces the disk tier, run write/read/merge I/O time.
  std::uint64_t spill_ns = 0;
  /// High-water byte footprint of the combine buffer (keys + encoded
  /// values + bookkeeping). Aggregates as a max, not a sum.
  std::uint64_t table_bytes_peak = 0;
  /// Spill rounds that recycled the flat table's arenas in place instead
  /// of freeing (zero on the legacy node-based path).
  std::uint64_t arena_recycles = 0;

  // --- shuffle compression (zero when shuffle_compression is off) ---
  /// Frame payload bytes before encoding (what the shuffle would have
  /// shipped raw).
  std::uint64_t shuffle_bytes_raw = 0;
  /// Frame bytes actually shipped (codec header + payload, or the raw
  /// bytes when a frame skipped the encoder).
  std::uint64_t shuffle_bytes_wire = 0;
  std::uint64_t compress_ns = 0;    // producer wall time inside encode
  std::uint64_t decompress_ns = 0;  // consumer wall time inside decode
  /// Frames that shipped via the stored escape or the auto-skip heuristic.
  std::uint64_t frames_stored_uncompressed = 0;

  // --- node-local aggregation (zero unless node_aggregation is set) ---
  /// Partition-frame bytes entering the per-node combine tree (what the
  /// co-located mappers would each have shipped across the fabric).
  std::uint64_t bytes_pre_node_agg = 0;
  /// Merged frame bytes leaving the tree before any codec framing — the
  /// pre/post ratio is the structural traffic cut, independent of
  /// compression.
  std::uint64_t bytes_post_node_agg = 0;
  /// Wall time inside the aggregation tree: frame decode, cross-mapper
  /// combine, re-encode, and (on the leader) codec framing of the merged
  /// stream.
  std::uint64_t node_agg_merge_ns = 0;

  // --- coded shuffle (zero unless coded_replication > 1) ---
  /// Term bytes entering the XOR encoder — what r per-reducer unicasts
  /// would have carried to the home group without coding.
  std::uint64_t bytes_pre_coding = 0;
  /// Coded multicast payload bytes actually produced (header + XOR body,
  /// before any codec framing); pre/post is the structural coding cut.
  std::uint64_t bytes_post_coding = 0;
  /// Producer wall time XOR-combining aligned terms into payloads.
  std::uint64_t coded_encode_ns = 0;
  /// Consumer wall time recovering terms from payloads via side
  /// information (the redundant map compute itself is charged to the
  /// replica pipelines, not here).
  std::uint64_t coded_decode_ns = 0;

  // --- two-tier spill store (zero unless memory_budget_bytes is set) ---
  /// Bytes written to spill runs on disk, merge-pass rewrites included —
  /// the total disk-write volume the budget cost, not the live footprint.
  std::uint64_t bytes_spilled_disk = 0;
  /// Spill files created (budget-triggered runs plus compaction outputs).
  std::uint64_t spill_files = 0;
  /// Fan-in compaction merges the external merge ran before streaming
  /// (0 = every run fit under spill_merge_fanin in one pass).
  std::uint64_t external_merge_passes = 0;

  // --- iterative job chaining (zero unless resident_rounds > 1) ---
  /// MapReduce rounds this chain ran (aggregates as a max, not a sum:
  /// every rank of one chain runs the same round count).
  std::uint64_t chain_rounds = 0;
  /// External input bytes read from the ingest channel (round 1 of a
  /// chain, or every round of a re-ingest ablation run). The headline
  /// residency proof is that this stays flat after round 1.
  std::uint64_t ingest_bytes = 0;
  /// Pairs and bytes mapped in place from resident partitions (rounds
  /// >= 2) — data that never round-tripped through ingest or DFS.
  std::uint64_t resident_pairs_in = 0;
  std::uint64_t resident_bytes_in = 0;
  /// Bytes of the static_input channel realigned ONCE and pinned for the
  /// whole chain (counted in the round that built the tables).
  std::uint64_t static_bytes_pinned = 0;
  /// Bytes of the static channel re-realigned in later rounds — zero in
  /// resident mode by construction; nonzero only in the unchained
  /// (fresh-job-per-round) ablation, where every round re-pins.
  std::uint64_t static_bytes_reshuffled = 0;
  /// Bytes of sealed resident partitions the memory budget refused —
  /// demoted to record files between rounds (two-tier residency).
  std::uint64_t resident_bytes_spilled = 0;

  /// Folds another task's counters into this one: sums everywhere except
  /// table_bytes_peak and chain_rounds, which aggregate as maxima.
  void merge(const ShuffleCounters& rhs) noexcept {
    pairs_after_combine += rhs.pairs_after_combine;
    spills += rhs.spills;
    combine_ns += rhs.combine_ns;
    spill_ns += rhs.spill_ns;
    if (rhs.table_bytes_peak > table_bytes_peak) {
      table_bytes_peak = rhs.table_bytes_peak;
    }
    arena_recycles += rhs.arena_recycles;
    shuffle_bytes_raw += rhs.shuffle_bytes_raw;
    shuffle_bytes_wire += rhs.shuffle_bytes_wire;
    compress_ns += rhs.compress_ns;
    decompress_ns += rhs.decompress_ns;
    frames_stored_uncompressed += rhs.frames_stored_uncompressed;
    bytes_pre_node_agg += rhs.bytes_pre_node_agg;
    bytes_post_node_agg += rhs.bytes_post_node_agg;
    node_agg_merge_ns += rhs.node_agg_merge_ns;
    bytes_pre_coding += rhs.bytes_pre_coding;
    bytes_post_coding += rhs.bytes_post_coding;
    coded_encode_ns += rhs.coded_encode_ns;
    coded_decode_ns += rhs.coded_decode_ns;
    bytes_spilled_disk += rhs.bytes_spilled_disk;
    spill_files += rhs.spill_files;
    external_merge_passes += rhs.external_merge_passes;
    if (rhs.chain_rounds > chain_rounds) chain_rounds = rhs.chain_rounds;
    ingest_bytes += rhs.ingest_bytes;
    resident_pairs_in += rhs.resident_pairs_in;
    resident_bytes_in += rhs.resident_bytes_in;
    static_bytes_pinned += rhs.static_bytes_pinned;
    static_bytes_reshuffled += rhs.static_bytes_reshuffled;
    resident_bytes_spilled += rhs.resident_bytes_spilled;
  }
};

/// Commit-time accumulation point for worker threads (the hybrid
/// process+threads model, ShuffleOptions::map_threads / reduce_threads).
///
/// ShuffleCounters::merge() itself is single-writer — calling it on a
/// shared block from several threads tears. The threading contract is
/// therefore Hadoop's task-commit shape: every worker accumulates into
/// its own private ShuffleCounters block with zero synchronization on the
/// hot path, and folds the block into the shared target exactly once,
/// through commit(), when its work completes. The mutex serializes only
/// those commits (one per worker per task, not per pair), so counters
/// stay exact — sums are sums and table_bytes_peak stays a max — without
/// making every counter an atomic.
class CounterCommitPoint {
 public:
  /// `target` is the shared counter block (e.g. core::Stats or a job's
  /// ShuffleCounters); it must outlive the commit point and must not be
  /// mutated elsewhere between the first and last commit(). A null target
  /// makes every commit a no-op (callers without counters).
  explicit CounterCommitPoint(ShuffleCounters* target) : target_(target) {}

  CounterCommitPoint(const CounterCommitPoint&) = delete;
  CounterCommitPoint& operator=(const CounterCommitPoint&) = delete;

  /// Folds one worker's private block into the target. Safe to call from
  /// any thread, any number of times.
  void commit(const ShuffleCounters& worker) {
    if (!target_) return;
    std::lock_guard lock(mu_);
    target_->merge(worker);
  }

 private:
  std::mutex mu_;
  ShuffleCounters* target_;
};

}  // namespace mpid::shuffle
