// ShuffleCounters: the shared counter block of the shuffle pipeline.
//
// Both runtimes report the same dataflow quantities — pairs surviving the
// combiner, spill rounds, combine/spill wall time, compression byte and
// time accounting. `core::Stats` and `minihadoop::JobSummary` inherit
// this block and add their transport-specific counters (frame windows,
// HTTP requests, recovery) on top, so a stage object in mpid::shuffle can
// fold its accounting into either runtime through one pointer.
#pragma once

#include <cstdint>

namespace mpid::shuffle {

struct ShuffleCounters {
  // --- combine / spill path (the memory side of the map stage) ---
  std::uint64_t pairs_after_combine = 0;  // pairs surviving the combiner
  std::uint64_t spills = 0;               // map-output buffer spill rounds
  /// Wall time inside the user combiner (incremental and spill-time runs,
  /// including value materialization around incremental calls).
  /// Spill-time combining also counts toward spill_ns.
  std::uint64_t combine_ns = 0;
  /// Wall time of buffer spill rounds: drain, realignment into partition
  /// frames and any frame flushes they trigger.
  std::uint64_t spill_ns = 0;
  /// High-water byte footprint of the combine buffer (keys + encoded
  /// values + bookkeeping). Aggregates as a max, not a sum.
  std::uint64_t table_bytes_peak = 0;
  /// Spill rounds that recycled the flat table's arenas in place instead
  /// of freeing (zero on the legacy node-based path).
  std::uint64_t arena_recycles = 0;

  // --- shuffle compression (zero when shuffle_compression is off) ---
  /// Frame payload bytes before encoding (what the shuffle would have
  /// shipped raw).
  std::uint64_t shuffle_bytes_raw = 0;
  /// Frame bytes actually shipped (codec header + payload, or the raw
  /// bytes when a frame skipped the encoder).
  std::uint64_t shuffle_bytes_wire = 0;
  std::uint64_t compress_ns = 0;    // producer wall time inside encode
  std::uint64_t decompress_ns = 0;  // consumer wall time inside decode
  /// Frames that shipped via the stored escape or the auto-skip heuristic.
  std::uint64_t frames_stored_uncompressed = 0;

  /// Folds another task's counters into this one: sums everywhere except
  /// table_bytes_peak, which is a peak.
  void merge(const ShuffleCounters& rhs) noexcept {
    pairs_after_combine += rhs.pairs_after_combine;
    spills += rhs.spills;
    combine_ns += rhs.combine_ns;
    spill_ns += rhs.spill_ns;
    if (rhs.table_bytes_peak > table_bytes_peak) {
      table_bytes_peak = rhs.table_bytes_peak;
    }
    arena_recycles += rhs.arena_recycles;
    shuffle_bytes_raw += rhs.shuffle_bytes_raw;
    shuffle_bytes_wire += rhs.shuffle_bytes_wire;
    compress_ns += rhs.compress_ns;
    decompress_ns += rhs.decompress_ns;
    frames_stored_uncompressed += rhs.frames_stored_uncompressed;
  }
};

}  // namespace mpid::shuffle
