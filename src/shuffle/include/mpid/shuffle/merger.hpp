// SegmentMerger: the consumer-side sorted merge stage — Hadoop's merge
// phase, shared by both runtimes.
//
// When producers realign with ShuffleOptions::sort_keys, every partition
// frame they ship is internally key-sorted. A consumer that wants
// globally key-ordered groups (Hadoop's reduce contract) can then k-way
// merge the frames instead of hash-grouping them — memory stays bounded
// by one group plus one cursor per frame, regardless of how many distinct
// keys exist.
//
//   SegmentMerger merger;
//   std::vector<std::byte> frame;
//   while (d.recv_raw_frame(frame)) merger.add_frame(std::move(frame));
//   std::string key; std::vector<std::string> values;
//   while (merger.next_group(key, values)) reduce(key, values);
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "mpid/common/kvframe.hpp"

namespace mpid::shuffle {

class SegmentMerger {
 public:
  /// Takes ownership of one internally key-sorted KvList frame. All
  /// frames must be added before the first next_group() call.
  void add_frame(std::vector<std::byte> frame);

  /// Produces the next group in ascending key order, concatenating the
  /// value lists of equal keys across frames (frame arrival order breaks
  /// ties, so a producer's spill order is preserved within a key).
  /// Returns false when every frame is exhausted.
  /// Throws std::runtime_error on a corrupt frame and std::logic_error if
  /// some frame is not sorted.
  bool next_group(std::string& key, std::vector<std::string>& values);

  std::size_t frame_count() const noexcept { return cursors_.size(); }

 private:
  struct Cursor {
    std::vector<std::byte> frame;
    common::KvListReader reader;
    std::optional<common::KvListView> current;
    std::size_t order;  // arrival order, the tie-breaker

    explicit Cursor(std::vector<std::byte> f, std::size_t ord)
        : frame(std::move(f)), reader(frame), order(ord) {}
  };

  void advance(Cursor& cursor);

  std::deque<Cursor> cursors_;  // deque: stable addresses for the views
  bool started_ = false;
};

}  // namespace mpid::shuffle
