// SegmentMerger: the consumer-side sorted merge stage — Hadoop's merge
// phase, shared by both runtimes.
//
// When producers realign with ShuffleOptions::sort_keys, every partition
// frame they ship is internally key-sorted. A consumer that wants
// globally key-ordered groups (Hadoop's reduce contract) can then k-way
// merge the frames instead of hash-grouping them — memory stays bounded
// by one group plus one cursor per frame, regardless of how many distinct
// keys exist.
//
//   SegmentMerger merger;
//   std::vector<std::byte> frame;
//   while (d.recv_raw_frame(frame)) merger.add_frame(std::move(frame));
//   std::string key; std::vector<std::string> values;
//   while (merger.next_group(key, values)) reduce(key, values);
// With reduce_threads > 1 the stage also runs concurrently: wire frames
// are collected undecoded via add_wire_frame(), and prepare() fans the
// codec decode — and a contiguous pre-merge of the cursors into one
// sorted run per worker — across a WorkerPool. Pre-merging a contiguous
// arrival-order range is associativity-safe: within the range, equal
// keys' values concatenate in arrival order, the merged run inherits the
// range's first arrival index as its tie-break order, and the ranges are
// disjoint and ordered — so next_group() produces byte-for-byte the same
// group sequence for every worker count.
//
// Disk tier (enable_spill, DESIGN.md §13): when a MemoryBudget refuses an
// arriving frame's charge, the merger stream-merges everything it holds
// into one sorted run on disk (store::RunWriter) and frees the cursors;
// the run inherits the spilled range's first arrival index as its
// tie-break order. Because every spill takes *all* current cursors, runs
// cover disjoint contiguous arrival ranges — the same associativity
// argument as the thread pre-merge above — so the final loser-tree merge
// over (runs, then surviving cursors) concatenates equal keys' values in
// exactly the arrival order the all-in-memory merge would have used, and
// budget-bounded output is byte-identical to unbounded output. With the
// budget unset nothing here changes: no state is allocated, no branch is
// taken past a null check.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpid/common/kvframe.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/options.hpp"
#include "mpid/shuffle/workerpool.hpp"
#include "mpid/store/budget.hpp"
#include "mpid/store/extmerge.hpp"
#include "mpid/store/pagepool.hpp"
#include "mpid/store/spillfile.hpp"

namespace mpid::shuffle {

class SegmentMerger {
 public:
  /// Takes ownership of one internally key-sorted KvList frame. All
  /// frames must be added before the first next_group() call.
  void add_frame(std::vector<std::byte> frame);

  /// Takes ownership of one frame as it arrived on the wire, deferring
  /// the codec decode to prepare(). `codec_framed` says whether the bytes
  /// are a codec frame (see FrameCompressor) or already raw. Frames added
  /// this way are invisible to next_group() until prepare() runs.
  void add_wire_frame(std::vector<std::byte> wire, bool codec_framed);

  /// Decodes every pending wire frame across `pool`'s workers (per-worker
  /// FrameDecoder, decompress_ns folded into `counters` at commit time;
  /// `counters` nullable) and, when it pays, pre-merges contiguous cursor
  /// ranges into one sorted run per worker so the sequential next_group()
  /// scan touches W cursors instead of hundreds. `capacity_hint` pre-sizes
  /// decode buffers (use the producer's frame size target). Idempotent;
  /// must precede next_group() when wire frames are pending. With the
  /// disk tier armed the decode runs sequentially through the budget-
  /// charged add_frame() path instead (spilling is disk-bound; the
  /// pre-merge would fight the budget for the cursors it merges).
  void prepare(WorkerPool& pool, std::size_t capacity_hint,
               ShuffleCounters* counters);

  /// Arms the disk tier. Must precede the first add_frame(); no-op when
  /// `budget` is null or unbounded. `options` supplies spill_dir,
  /// spill_page_bytes, spill_merge_fanin and whether runs are
  /// codec-compressed (shuffle_compression != kOff); `counters`
  /// (nullable) receives bytes_spilled_disk / spill_files /
  /// external_merge_passes / spill_ns as they happen. Re-arm after
  /// move-assigning a fresh merger (restart paths).
  void enable_spill(const ShuffleOptions& options,
                    store::MemoryBudget* budget, ShuffleCounters* counters);

  /// Runs the fan-in compaction passes (if spilling happened) so every
  /// spill counter is final. Idempotent; next_group() calls it lazily,
  /// but a caller that ships counters before reducing — MPI-D folds stats
  /// at finalize() — must call it first.
  void finish_spill_phase();

  /// Produces the next group in ascending key order, concatenating the
  /// value lists of equal keys across frames (frame arrival order breaks
  /// ties, so a producer's spill order is preserved within a key).
  /// Returns false when every frame is exhausted.
  /// Throws std::runtime_error on a corrupt frame and std::logic_error if
  /// some frame is not sorted.
  bool next_group(std::string& key, std::vector<std::string>& values);

  std::size_t frame_count() const noexcept { return cursors_.size(); }

  /// Disk runs currently held (post-compaction once the merge started).
  std::size_t spill_run_count() const noexcept {
    return spill_ ? spill_->runs.size() : 0;
  }

 private:
  struct Cursor {
    std::vector<std::byte> frame;
    common::KvListReader reader;
    std::optional<common::KvListView> current;
    std::size_t order;  // arrival order, the tie-breaker

    explicit Cursor(std::vector<std::byte> f, std::size_t ord)
        : frame(std::move(f)), reader(frame), order(ord) {}
  };

  struct PendingWire {
    std::vector<std::byte> wire;
    bool codec_framed;
  };

  /// One spilled run: a contiguous arrival range on disk, ranked by the
  /// range's first arrival index.
  struct SpillRun {
    store::SpillFile file;
    std::size_t order;
  };

  /// Everything the disk tier needs; absent (null) with no budget, so the
  /// in-memory path pays one pointer test.
  struct SpillState {
    std::string spill_dir;
    std::size_t page_bytes = 0;
    std::size_t fanin = 2;
    bool compress = false;
    store::MemoryBudget* budget = nullptr;
    ShuffleCounters* counters = nullptr;
    store::Reservation reservation;
    std::unique_ptr<store::SpillPool> pool;
    std::vector<SpillRun> runs;
    bool compacted = false;
  };

  /// An in-memory cursor as a loser-tree source (for the final merge when
  /// runs exist).
  class CursorSource final : public store::GroupSource {
   public:
    explicit CursorSource(Cursor* cursor) : cursor_(cursor) {}
    bool next(store::Group& group) override;

   private:
    Cursor* cursor_;
  };

  static void advance(Cursor& cursor);

  /// Streams the fully-merged groups of cursors_[lo, hi) to `fn(key,
  /// values)` in ascending key order, arrival-order concatenation — the
  /// one merge loop behind merge_range() (in-memory output) and
  /// spill_cursors() (disk output).
  template <typename Fn>
  void for_each_merged_group(std::size_t lo, std::size_t hi, Fn&& fn);

  /// Sequentially k-way merges cursors_[lo, hi) into one sorted KvList
  /// frame, preserving the range's arrival-order value concatenation.
  std::vector<std::byte> merge_range(std::size_t lo, std::size_t hi);

  /// Writes every current cursor to one sorted run and frees the memory.
  void spill_cursors();

  /// Builds the loser tree over (compacted runs, surviving cursors).
  void build_final_stream();

  std::deque<Cursor> cursors_;  // deque: stable addresses for the views
  std::vector<PendingWire> pending_;
  std::size_t next_order_ = 0;  // survives cursor clears (spills, pre-merge)
  bool started_ = false;
  std::unique_ptr<SpillState> spill_;
  std::vector<std::unique_ptr<store::GroupSource>> final_sources_;
  std::unique_ptr<store::MergingGroupStream> final_stream_;
};

}  // namespace mpid::shuffle
