// SegmentMerger: the consumer-side sorted merge stage — Hadoop's merge
// phase, shared by both runtimes.
//
// When producers realign with ShuffleOptions::sort_keys, every partition
// frame they ship is internally key-sorted. A consumer that wants
// globally key-ordered groups (Hadoop's reduce contract) can then k-way
// merge the frames instead of hash-grouping them — memory stays bounded
// by one group plus one cursor per frame, regardless of how many distinct
// keys exist.
//
//   SegmentMerger merger;
//   std::vector<std::byte> frame;
//   while (d.recv_raw_frame(frame)) merger.add_frame(std::move(frame));
//   std::string key; std::vector<std::string> values;
//   while (merger.next_group(key, values)) reduce(key, values);
// With reduce_threads > 1 the stage also runs concurrently: wire frames
// are collected undecoded via add_wire_frame(), and prepare() fans the
// codec decode — and a contiguous pre-merge of the cursors into one
// sorted run per worker — across a WorkerPool. Pre-merging a contiguous
// arrival-order range is associativity-safe: within the range, equal
// keys' values concatenate in arrival order, the merged run inherits the
// range's first arrival index as its tie-break order, and the ranges are
// disjoint and ordered — so next_group() produces byte-for-byte the same
// group sequence for every worker count.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "mpid/common/kvframe.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/workerpool.hpp"

namespace mpid::shuffle {

class SegmentMerger {
 public:
  /// Takes ownership of one internally key-sorted KvList frame. All
  /// frames must be added before the first next_group() call.
  void add_frame(std::vector<std::byte> frame);

  /// Takes ownership of one frame as it arrived on the wire, deferring
  /// the codec decode to prepare(). `codec_framed` says whether the bytes
  /// are a codec frame (see FrameCompressor) or already raw. Frames added
  /// this way are invisible to next_group() until prepare() runs.
  void add_wire_frame(std::vector<std::byte> wire, bool codec_framed);

  /// Decodes every pending wire frame across `pool`'s workers (per-worker
  /// FrameDecoder, decompress_ns folded into `counters` at commit time;
  /// `counters` nullable) and, when it pays, pre-merges contiguous cursor
  /// ranges into one sorted run per worker so the sequential next_group()
  /// scan touches W cursors instead of hundreds. `capacity_hint` pre-sizes
  /// decode buffers (use the producer's frame size target). Idempotent;
  /// must precede next_group() when wire frames are pending.
  void prepare(WorkerPool& pool, std::size_t capacity_hint,
               ShuffleCounters* counters);

  /// Produces the next group in ascending key order, concatenating the
  /// value lists of equal keys across frames (frame arrival order breaks
  /// ties, so a producer's spill order is preserved within a key).
  /// Returns false when every frame is exhausted.
  /// Throws std::runtime_error on a corrupt frame and std::logic_error if
  /// some frame is not sorted.
  bool next_group(std::string& key, std::vector<std::string>& values);

  std::size_t frame_count() const noexcept { return cursors_.size(); }

 private:
  struct Cursor {
    std::vector<std::byte> frame;
    common::KvListReader reader;
    std::optional<common::KvListView> current;
    std::size_t order;  // arrival order, the tie-breaker

    explicit Cursor(std::vector<std::byte> f, std::size_t ord)
        : frame(std::move(f)), reader(frame), order(ord) {}
  };

  struct PendingWire {
    std::vector<std::byte> wire;
    bool codec_framed;
  };

  void advance(Cursor& cursor);

  /// Sequentially k-way merges cursors_[lo, hi) into one sorted KvList
  /// frame, preserving the range's arrival-order value concatenation.
  std::vector<std::byte> merge_range(std::size_t lo, std::size_t hi);

  std::deque<Cursor> cursors_;  // deque: stable addresses for the views
  std::vector<PendingWire> pending_;
  bool started_ = false;
};

}  // namespace mpid::shuffle
