// WorkerPool: the per-rank worker pool behind the hybrid process+threads
// execution model (ShuffleOptions::map_threads / reduce_threads).
//
// Each MPI-D rank (and each MiniHadoop map task) is one OS process-analog
// in this repo; the pool lets that one rank keep several cores busy: a
// batch of steal-able tasks (map-input chunks, merge runs, decode jobs)
// is distributed block-wise over per-worker deques, and an idle worker
// steals half of a victim's remaining tasks from the back — the classic
// work-stealing shape, sized for coarse tasks (tens per batch,
// milliseconds each), so one pool mutex guarding every deque plus the
// batch state costs nothing measurable — and makes the take-a-task /
// which-batch-is-this decision a single atomic step (see work()), which
// keeps the pool trivially ThreadSanitizer-clean.
//
// The calling thread is always worker 0: a pool of one spawns no threads
// and runs every task inline, which is what makes `threads = 1` configs
// behave (and schedule) exactly like the pre-pool sequential code.
//
// Tasks within one batch must be independent — they may not enqueue
// further tasks. run() blocks until the batch completes and rethrows the
// first task exception on the caller (remaining tasks are abandoned).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpid::shuffle {

class WorkerPool {
 public:
  /// fn(task, worker): `task` is the batch task index, `worker` the
  /// executing worker in [0, workers()) — per-worker state (buffers,
  /// counters) is indexed by it without synchronization.
  using TaskFn = std::function<void(std::size_t task, std::size_t worker)>;

  /// `threads` >= 1 total workers, including the calling thread; spawns
  /// `threads - 1` pool threads that park between batches.
  explicit WorkerPool(std::size_t threads);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool();

  std::size_t workers() const noexcept { return deques_.size(); }

  /// Runs tasks [0, count) across the workers and blocks until all have
  /// completed. Tasks are dealt block-wise (worker w starts with the w-th
  /// contiguous range), so a deterministic chunking stays cache-friendly
  /// when nobody steals. Throws whatever the first failing task threw;
  /// the remaining queued tasks are abandoned (but in-flight ones finish).
  void run(std::size_t count, const TaskFn& fn);

  /// Per-worker CPU time (CLOCK_THREAD_CPUTIME_ID) spent inside the tasks
  /// of the last run() batch, indexed by worker. The max entry is the
  /// batch's critical-path CPU — on a machine with fewer cores than
  /// workers (or under a loaded scheduler) wall time cannot show the
  /// parallel speedup, but sum/max of this vector still measures how well
  /// the stealing balanced the work (see bench/micro_threads.cpp). Valid
  /// until the next run() call.
  const std::vector<std::uint64_t>& last_batch_cpu_ns() const noexcept {
    return batch_cpu_ns_;
  }

 private:
  /// One worker's batch participation: drain own deque from the front,
  /// then steal half of the largest victim's remainder from the back;
  /// returns once no task is left anywhere. `gen` is the batch the worker
  /// was woken for — each iteration re-reads {generation_, fn_} and pops
  /// the task under one mu_ hold, so a worker that wakes late (or is
  /// preempted across a batch boundary) bails out instead of running a
  /// newer batch's tasks through a stale or cleared fn pointer.
  void work(std::size_t worker, std::uint64_t gen);
  /// Requires mu_ held by the caller.
  bool take(std::size_t worker, std::size_t& task);
  /// Folds one finished task's CPU time into the worker's batch slot and
  /// decrements pending_ — both under mu_, so by the time the caller
  /// observes pending_ == 0 every CPU write is visible too.
  void finish_task(std::size_t worker, std::uint64_t cpu_ns);
  void pool_thread_main(std::size_t worker);

  std::vector<std::deque<std::size_t>> deques_;
  std::vector<std::thread> threads_;
  std::vector<std::uint64_t> batch_cpu_ns_;

  // Batch lifecycle: the caller publishes {deques, fn, pending} under mu_
  // and bumps generation_; pool threads wake, work, and the last finished
  // task signals the caller back. mu_ guards the deques too — coarse
  // tasks make one mutex fine, and it ties each popped task to the fn of
  // the same generation.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const TaskFn* fn_ = nullptr;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace mpid::shuffle
