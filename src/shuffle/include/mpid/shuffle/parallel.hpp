// ParallelMapper: the map-side half of the hybrid process+threads model.
//
// One rank (or one MiniHadoop map attempt) splits its input into
// steal-able chunks and runs them across a WorkerPool. Every worker owns
// a full private pipeline lane — CombineRunner, MapOutputBuffer,
// SpillEncoder — so the hot emit/combine/spill path takes no locks at
// all. What *is* shared is the transport: frames leave through one sink,
// and the paper-grade guarantee this stage keeps is determinism — the
// bytes on the wire are identical for every thread count, so
// `map_threads` is purely a speed knob, never a semantics knob.
//
// Determinism comes from two rules:
//
//   1. Chunk-local cadence. A chunk always starts with an empty lane
//      (buffer and encoder drained), spills on the normal threshold while
//      it runs, and ends with a final spill + flush_all. The frames a
//      chunk produces are therefore a pure function of the chunk's
//      records — independent of which worker ran it, what ran before it
//      on that lane, and how many workers exist.
//   2. Chunk-order hand-off. Completed chunks pass their frame lists to a
//      reorder sequencer that releases them to the sink strictly in chunk
//      index order (out-of-order completions park until their turn). The
//      shared FrameCompressor — whose kAuto skip heuristic is stateful —
//      runs at this serialized drain point, so even its state evolves in
//      the same deterministic frame order every run.
//
// Counters follow the commit-time contract (CounterCommitPoint): each
// lane accumulates into a private ShuffleCounters block and the worker
// commits it as each chunk completes, so the shared Stats block is exact
// without a single atomic on the emit path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "mpid/shuffle/buffer.hpp"
#include "mpid/shuffle/compress.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/engine.hpp"
#include "mpid/shuffle/options.hpp"
#include "mpid/shuffle/partition.hpp"
#include "mpid/shuffle/workerpool.hpp"

namespace mpid::shuffle {

/// Number of map chunks a batch of `items` records splits into:
/// options.map_task_chunks when set, else a fixed auto count — never a
/// function of map_threads (see options.hpp) — capped by the item count.
std::size_t resolve_map_chunks(const ShuffleOptions& options,
                               std::size_t items);

class ParallelMapper {
 public:
  /// Emits one map-output pair into the executing worker's lane. Only
  /// valid inside the ChunkFn invocation it was passed to.
  using EmitFn = std::function<void(std::string_view key,
                                    std::string_view value)>;

  /// Runs one chunk: reads the chunk's slice of the input and emits its
  /// pairs. Chunks must be independent (no shared mutable state beyond
  /// what the caller synchronizes) — they execute concurrently.
  using ChunkFn = std::function<void(std::size_t chunk, const EmitFn& emit)>;

  struct Setup {
    Layout layout = Layout::kKvList;
    std::uint32_t partitions = 1;
    /// Per-lane frame flush threshold, same meaning as SpillEncoder's: 0
    /// = options.partition_frame_bytes, kUnboundedFrame = one frame per
    /// partition per chunk.
    std::size_t frame_flush_bytes = 0;
    PartitionFn partitioner;  // nullable: hash-mod default
    Combiner combiner;        // nullable: no combining
    /// Codec stage wiring, used only when options.shuffle_compression is
    /// not kOff. The mapper owns its compressor — runtime-shared codec
    /// instances would race their counter pointer against the lanes'
    /// commits — and runs it at the serialized sequencer drain, so the
    /// kAuto skip state sees frames in deterministic order. Its byte/time
    /// accounting folds into `counters` when the run completes.
    WireFraming compress_framing = WireFraming::kSelfDescribing;
    common::FrameKind compress_kind = common::FrameKind::kKvList;
    /// Commit target for the per-lane counters (and pairs emitted fold
    /// into pairs_after_combine via the lanes' combine accounting).
    /// Nullable — but every production caller has one.
    ShuffleCounters* counters = nullptr;
    /// Receives frames in deterministic chunk order. Called with the
    /// sequencer lock held: it may block (transport flow control) but
    /// must not re-enter the mapper.
    SpillEncoder::FrameSink sink;
  };

  ParallelMapper(const ShuffleOptions& options, Setup setup);

  ParallelMapper(const ParallelMapper&) = delete;
  ParallelMapper& operator=(const ParallelMapper&) = delete;

  /// Runs chunks [0, chunk_count) across `pool`'s workers and blocks
  /// until every frame has been handed to the sink. Returns the number of
  /// pairs emitted (pre-combine). Rethrows the first chunk/sink failure;
  /// a reused mapper must not be run again after a throw.
  std::uint64_t run(WorkerPool& pool, std::size_t chunk_count,
                    const ChunkFn& chunk_fn);

 private:
  /// One realigned frame waiting in the sequencer.
  struct Frame {
    std::uint32_t partition = 0;
    std::vector<std::byte> bytes;
  };

  /// One worker's private pipeline. Heap-allocated so lane addresses are
  /// stable and fields needing construction order (combine before buffer
  /// before encoder) initialize in one place.
  struct Lane {
    Lane(const ShuffleOptions& options, const Setup& setup);

    ShuffleCounters counters;  // per-chunk block, committed then reset
    CombineRunner combine;
    MapOutputBuffer buffer;
    SpillEncoder encoder;
    std::vector<Frame> frames;  // the running chunk's output, in order
    std::uint64_t pairs = 0;    // lane-lifetime emit count
  };

  void run_chunk(std::size_t chunk, std::size_t worker,
                 const ChunkFn& chunk_fn);
  void sequence(std::size_t chunk, std::vector<Frame> frames);
  void deliver(Frame& frame);

  const ShuffleOptions& options_;
  Setup setup_;

  std::vector<std::unique_ptr<Lane>> lanes_;
  CounterCommitPoint commit_;

  /// The owned codec stage (engaged when compression is on): counters go
  /// to a private block — its writes happen under seq_mu_, concurrently
  /// with lane commits — folded into the target after the pool joins.
  ShuffleCounters codec_counters_;
  std::optional<FrameCompressor> compressor_;

  // Reorder sequencer: chunks deliver under seq_mu_ when their index is
  // next_chunk_, otherwise park in parked_ until the gap fills.
  std::mutex seq_mu_;
  std::size_t next_chunk_ = 0;
  std::map<std::size_t, std::vector<Frame>> parked_;
};

}  // namespace mpid::shuffle
