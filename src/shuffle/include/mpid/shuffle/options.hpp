// ShuffleOptions: the one set of knobs both runtimes' shuffle pipelines
// share.
//
// The paper's central claim is that the MapReduce dataflow — buffer,
// combine, partition, realign, encode, merge — is independent of the
// communication substrate underneath it (Hadoop RPC/Jetty vs MPI-D).
// mpid::shuffle is that substrate-independent layer: the stage objects in
// buffer.hpp / engine.hpp / compress.hpp / merger.hpp are parameterized by
// this struct, and `core::Config` / `minihadoop::MiniJobConfig` embed it
// (by inheritance) instead of re-declaring drifting twins of every knob.
//
// Transport-specific policy (frame windows, retransmission, HTTP fetch
// budgets) does NOT belong here — it stays in the per-runtime configs.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mpid::store {
class MemoryBudget;
}

namespace mpid::shuffle {

/// Shuffle-frame compression mode (Hadoop's `mapred.compress.map.output`
/// analog; see common/codec.hpp for the wire format).
///  * kOff  — frames ship raw (the default, like Hadoop's).
///  * kAuto — frames below compress_min_frame_bytes skip the encoder;
///            larger frames are compressed, and a producer that keeps
///            observing poor ratios stops paying the encode cost for a
///            while before re-sampling (the auto-skip heuristic).
///  * kOn   — every frame is codec-framed; the per-frame stored escape is
///            the only bail-out.
/// The mode must match on every task of a job: it decides whether the
/// consumer treats arriving payloads as codec frames.
enum class ShuffleCompression { kOff, kAuto, kOn };

/// Local combination hook (Section IV.A of the paper): collapses the value
/// list accumulated for one key into a (usually shorter) list before it is
/// realigned and transmitted. "Commonly ... assigned as the reduce
/// function" — e.g. WordCount sums counts into a single value. Per the
/// MapReduce combiner contract it may run zero or more times per key.
using Combiner = std::function<std::vector<std::string>(
    std::string_view key, std::vector<std::string>&& values)>;

/// Partition selector: maps a key to a partition index in
/// [0, partitions). The default is the paper's hash-mod selector
/// ("similar to the HashPartitioner in the Hadoop MapReduce framework");
/// a custom one enables e.g. range partitioning for globally sorted
/// output.
using PartitionFn =
    std::function<std::uint32_t(std::string_view key, std::uint32_t parts)>;

/// Knobs of the shared spill/partition/encode pipeline. One set of
/// defaults for both runtimes; validate() rejects nonsense combinations
/// up front instead of letting them silently misbehave.
struct ShuffleOptions {
  /// Map-output buffer size that triggers a spill to partition frames
  /// ("when the hash table buffer exceeds a particular size").
  std::size_t spill_threshold_bytes = 4 * 1024 * 1024;

  /// Target size of one realigned partition frame; a full frame is handed
  /// to the transport sink immediately ("when the data partition is
  /// full"). Producers that accumulate one segment per partition
  /// (MiniHadoop) ignore this as a flush trigger but still use it as the
  /// frame reservation hint.
  std::size_t partition_frame_bytes = 256 * 1024;

  /// Apply the combiner incrementally once a key's buffered value list
  /// reaches this many entries (bounds memory for hot keys); the combiner
  /// always runs again at spill time. 0 disables incremental combining.
  std::size_t inline_combine_threshold = 64;

  /// Sort each key's value list during realignment ("it can also sort the
  /// value list for each key on demand").
  bool sort_values = false;

  /// Emit keys of a partition frame in sorted order during realignment
  /// (Hadoop's sorted spill runs; required by SegmentMerger consumers).
  bool sort_keys = false;

  /// Buffer emitted pairs in common::KvCombineTable — an open-addressing
  /// flat table whose keys live in a bump-pointer arena and whose value
  /// lists are slab-allocated block chains — instead of a node-based map.
  /// Spills drain the arenas back to empty without freeing, so
  /// steady-state mapping allocates nothing per pair. Disabling falls
  /// back to the legacy node-based buffer (kept for A/B benchmarking).
  bool flat_combine_table = true;

  /// Shuffle-frame compression (see ShuffleCompression above).
  ShuffleCompression shuffle_compression = ShuffleCompression::kOff;

  /// kAuto only: frames smaller than this skip the encoder — tiny frames
  /// are header-dominated and not worth the encode cost.
  std::size_t compress_min_frame_bytes = 4 * 1024;

  /// kAuto only: a frame whose wire/raw ratio exceeds this counts as a
  /// poor sample; after compress_skip_after consecutive poor samples the
  /// producer ships the next compress_skip_frames frames uncompressed,
  /// then re-samples (data distributions drift within a job).
  double compress_skip_ratio = 0.9;
  std::size_t compress_skip_after = 2;
  std::size_t compress_skip_frames = 8;

  // --- hybrid process+threads execution (arXiv:1811.04875's model) ---
  /// Worker threads per map-side rank/task. 1 (the default) keeps the
  /// pre-pool sequential path: no pool threads are spawned and scheduling
  /// is byte-for-byte the legacy cadence. N > 1 runs map chunks through a
  /// work-stealing WorkerPool with per-worker buffers feeding the shared
  /// spill stream in deterministic chunk order, so output bytes are
  /// identical for every thread count.
  std::size_t map_threads = 1;

  /// Worker threads per reduce-side rank/task: parallel decode and
  /// pre-merge of arriving segments inside SegmentMerger. Same default-1
  /// contract as map_threads.
  std::size_t reduce_threads = 1;

  /// Steal-able map chunks per batch when map_threads > 1. Finer chunks
  /// steal better, coarser chunks amortize the per-chunk spill+flush.
  /// 0 (the default) auto-sizes to a fixed count (16, capped by the
  /// record count) — deliberately NOT a function of map_threads, because
  /// the chunk cadence decides the output bytes and the byte-parity
  /// guarantee above requires the same cadence at every thread count.
  /// validate() rejects values above kMaxMapTaskChunks: beyond that the
  /// per-chunk flush dwarfs the work, and downstream splitters take the
  /// chunk count as an int.
  std::size_t map_task_chunks = 0;

  /// Upper bound validate() enforces on map_task_chunks.
  static constexpr std::size_t kMaxMapTaskChunks = 1u << 20;

  // --- memory-budgeted two-tier store (src/store; DESIGN.md §13) ---
  /// Hard cap on the bytes the shuffle's buffering stages may hold in RAM
  /// per budget instance (one per rank/task by default, or shared through
  /// `memory_budget` below). 0 — the default — means unbounded: no budget
  /// is created, no spill files are written, and every byte-parity
  /// guarantee of the in-memory pipeline is untouched. When set, a
  /// consumer whose charge is refused spills to sorted runs under
  /// spill_dir and the reducer external-merges them back (loser tree,
  /// fan-in bounded by spill_merge_fanin) — output bytes stay identical
  /// to the unbounded run.
  std::size_t memory_budget_bytes = 0;

  /// Directory for spill runs; must name an existing writable directory
  /// when memory_budget_bytes > 0 (validate() probes it). Files are
  /// uniquely named per process and removed on success and error paths.
  std::string spill_dir;

  /// Page size of the store's recycled I/O buffers and the run block
  /// size. validate() enforces the kMinSpillPageBytes floor — tinier
  /// pages make every block header-dominated — and that one page fits
  /// the budget (a budget smaller than a single page could never stage
  /// its own spill I/O).
  std::size_t spill_page_bytes = 256 * 1024;

  /// Maximum runs the final external merge reads concurrently; more runs
  /// trigger fan-in compaction passes first (each pass is one
  /// external_merge_passes tick). Bounds reducer memory at roughly
  /// fanin × spill_page_bytes during the merge. validate() requires >= 2.
  std::size_t spill_merge_fanin = 16;

  /// Optional shared arbiter: when set, every consumer of these options
  /// charges the same MemoryBudget instance (a job-wide cap); when null
  /// and memory_budget_bytes > 0, each runtime creates one budget per
  /// rank/task (a per-process cap, Hadoop's per-JVM heap analog).
  std::shared_ptr<store::MemoryBudget> memory_budget;

  /// Floor validate() enforces on spill_page_bytes.
  static constexpr std::size_t kMinSpillPageBytes = 4 * 1024;

  // --- hierarchical node-local aggregation (DESIGN.md §14) ---
  /// Route the partitioned output of every mapper co-located on one
  /// modeled node through a per-node combine tree (shuffle::NodeAggregator)
  /// that merges duplicate keys across those mappers and ships ONE frame
  /// stream per (node, reducer-partition) instead of one per (mapper,
  /// partition). On combiner-friendly keys this multiplies the combiner's
  /// traffic cut by the per-node mapper count before bytes touch the
  /// fabric (Lee et al.'s in-node combining; Coded MapReduce's
  /// compute-for-communication trade). Off by default: the per-mapper
  /// frame cadence is byte-for-byte the legacy one.
  ///
  /// Interaction with memory_budget_bytes: the aggregator's combine buffer
  /// charges the same budget as every other buffering stage, so memory
  /// pressure tightens its drain cadence — it emits smaller merged frames
  /// earlier (less cross-mapper dedup, never incorrect output). A budget
  /// therefore bounds the aggregation tree's RAM exactly like a mapper's
  /// spill buffer; validate() enforces the same spill_dir/page invariants.
  bool node_aggregation = false;

  /// Mappers modeled per node when node_aggregation is on. MPI-D derives
  /// the node id of mapper m as m / ranks_per_node and elects the lowest
  /// co-located mapper index as the node's aggregation leader. MiniHadoop
  /// ignores this knob: each tasktracker IS a node, and its segment store
  /// aggregates whatever map tasks committed there. validate() requires
  /// >= 1 when node_aggregation is set.
  std::size_t ranks_per_node = 1;

  // --- coded shuffle (DESIGN.md §15, Coded MapReduce) ---
  /// Replication factor r of the coded shuffle: every map task runs on r
  /// reducer-side replicas so that one XOR-coded multicast payload per
  /// round serves a whole group of r reducers at once, trading r× map
  /// compute for a structural ~r-fold cut in cross-fabric shuffle bytes.
  /// 1 (the default) disables coding entirely — the pipeline is
  /// byte-for-byte the uncoded one. Values > 1 are MPI-D only (the
  /// multicast needs the MPI fabric; MiniHadoop rejects them), require
  /// r to divide the reducer count (validate() checks what it can see
  /// here; the runtime checks the counts), and are incompatible with
  /// direct_realign (replica alignment needs the buffered spill path).
  std::size_t coded_replication = 1;

  // --- iterative job chaining (DESIGN.md §16) ---
  /// Maximum MapReduce rounds one world may run over resident partitions
  /// before finalizing. 1 (the default) is the classic one-shot job:
  /// `finalize()` is the only barrier and `next_round()` throws. Values
  /// > 1 arm the chain lifecycle — each round ends in the same
  /// ship/seal/stats barrier as finalize, but the ranks re-arm (mapper
  /// lanes reset with a fresh incarnation, reducer EOS/seal state
  /// cleared) instead of tearing down, so round N's realigned reducer
  /// partitions can feed round N+1 in place with no re-ingest.
  /// Incompatible with coded_replication > 1 (replica placement is
  /// derived from the one-shot split layout; the runtime rejects the
  /// combination).
  std::size_t resident_rounds = 1;

  /// Throws std::invalid_argument on nonsense combinations (zero
  /// thresholds, auto-compression bounds that could never trigger).
  /// Called by both runtimes before any task starts.
  void validate() const;
};

}  // namespace mpid::shuffle
