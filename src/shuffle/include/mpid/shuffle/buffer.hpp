// MapOutputBuffer + CombineRunner: the buffering stage of the shuffle.
//
// Both runtimes accumulate emitted (key, value) pairs per key until a
// spill realigns the buffer into partition frames (Section IV.A of the
// paper). This file owns the two interchangeable buffer implementations
// behind one interface:
//
//   * the flat combine table (common::KvCombineTable, the default): open-
//     addressing slots, arena-interned keys, slab-chained values already
//     in wire format — zero allocations per pair in steady state;
//   * the legacy node-based buffer (flat_combine_table = false, the A/B
//     baseline): one heap entry per key, values as std::strings, drained
//     in first-insertion order so both buffers spill entries in the same
//     deterministic order.
//
// CombineRunner wraps the user combiner with the timing and the
// single-value skip rule both runtimes share: a one-element value list is
// already combined (the MapReduce combiner contract allows zero runs), so
// the skewed tail of single-value keys never pays a combiner call.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpid/common/hash.hpp"
#include "mpid/common/kvtable.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/options.hpp"
#include "mpid/store/budget.hpp"

namespace mpid::shuffle {

/// Runs the user combiner with wall-time accounting into
/// ShuffleCounters::combine_ns. Stateless apart from a reused scratch
/// vector; safe to share between the buffer (incremental combining) and
/// the encoder (spill-time combining) of one task.
class CombineRunner {
 public:
  CombineRunner(Combiner combiner, ShuffleCounters* counters)
      : combiner_(std::move(combiner)), counters_(counters) {}

  bool enabled() const noexcept { return static_cast<bool>(combiner_); }

  /// Replaces `values` with the combiner's output; only the combiner call
  /// (and its output-size bookkeeping) is timed.
  void combine(std::string_view key, std::vector<std::string>& values);

  /// Incremental in-place combine of one flat-table entry (collect →
  /// combiner → replace); the whole cycle is timed, matching what the
  /// incremental trigger costs the map loop.
  void combine_entry(common::KvCombineTable& table, std::uint32_t index,
                     std::string_view key);

 private:
  Combiner combiner_;
  ShuffleCounters* counters_;
  std::vector<std::string> scratch_;
};

/// The map-output (or reducer grouping) buffer. append() until
/// should_spill(), then hand the buffer to SpillEncoder::spill() — or, on
/// the receive side, iterate groups with for_each_group().
class MapOutputBuffer {
 public:
  /// One buffered entry as seen by drain(): exactly one of `flat` /
  /// `values` is set, and key_hash is the cached fnv1a64(key) the default
  /// partitioner consumes without rehashing.
  struct Entry {
    std::string_view key;
    std::uint64_t key_hash = 0;
    std::size_t value_count = 0;
    const common::KvCombineTable::EntryView* flat = nullptr;
    std::vector<std::string>* values = nullptr;
  };

  /// `combine` (nullable) enables incremental combining at
  /// options.inline_combine_threshold; `counters` receives the spill/peak
  /// accounting. Both pointers must outlive the buffer. `budget`
  /// (nullable) makes the buffer a budgeted consumer of the two-tier
  /// store: growth is charged in spill_page_bytes chunks, and a refused
  /// charge latches should_spill() true so the owner drains early — the
  /// in-memory fast tier giving way before the cap, instead of OOMing.
  MapOutputBuffer(const ShuffleOptions& options, CombineRunner* combine,
                  ShuffleCounters* counters,
                  store::MemoryBudget* budget = nullptr);

  MapOutputBuffer(const MapOutputBuffer&) = delete;
  MapOutputBuffer& operator=(const MapOutputBuffer&) = delete;

  void append(std::string_view key, std::string_view value);

  bool empty() const noexcept {
    return flat_ ? table_.empty() : legacy_entries_.empty();
  }

  /// Spill-threshold accounting: key + value bytes plus per-entry
  /// bookkeeping overhead.
  std::size_t bytes_used() const noexcept {
    return flat_ ? table_.bytes_used() : legacy_bytes_;
  }

  bool should_spill() const noexcept {
    return bytes_used() >= spill_threshold_ || pressure_spill_;
  }

  /// Largest single-entry frame overshoot (exact on the flat path, 0 on
  /// the legacy path) — the frame reservation slack SpillEncoder adds to
  /// the flush threshold.
  std::size_t max_entry_frame_bytes() const noexcept {
    return flat_ ? table_.max_entry_frame_bytes() : 0;
  }

  /// Empties the buffer through `fn(const Entry&)`, in first-insertion
  /// order or sorted by key. Counts the spill round (spills, peak,
  /// arena_recycles); timing is the caller's job (SpillEncoder owns
  /// spill_ns). The buffer is emptied even when `fn` throws mid-drain —
  /// the drain-then-partition semantics both runtimes rely on for clean
  /// recovery — but views passed to `fn` are invalidated by the return.
  /// No-op on an empty buffer (no counters move).
  template <typename Fn>
  void drain(bool sorted, Fn&& fn) {
    if (empty()) return;
    ++counters_->spills;
    if (bytes_used() > counters_->table_bytes_peak) {
      counters_->table_bytes_peak = bytes_used();
    }
    if (flat_) {
      try {
        table_.for_each(sorted,
                        [&](const common::KvCombineTable::EntryView& e) {
                          fn(Entry{e.key, e.key_hash, e.value_count, &e,
                                   nullptr});
                        });
      } catch (...) {
        table_.recycle();
        release_budget();
        throw;
      }
      table_.recycle();
      ++counters_->arena_recycles;
      release_budget();
      return;
    }
    // Move both containers out first: the entries' key views point into
    // the index's nodes, and the buffer must read empty before `fn` can
    // throw.
    auto entries = std::move(legacy_entries_);
    auto index = std::move(legacy_index_);
    legacy_entries_.clear();
    legacy_index_.clear();
    legacy_bytes_ = 0;
    if (sorted) {
      std::sort(entries.begin(), entries.end(),
                [](const LegacyEntry& a, const LegacyEntry& b) {
                  return a.key < b.key;
                });
    }
    for (auto& e : entries) {
      fn(Entry{e.key, common::fnv1a64(e.key), e.values.size(), nullptr,
               &e.values});
    }
    release_budget();
  }

  /// Read-only grouped iteration for the receive side:
  /// `fn(std::string_view key, const std::vector<std::string>& values)`,
  /// in insertion or sorted key order. Does not empty the buffer and does
  /// not touch spill counters.
  template <typename Fn>
  void for_each_group(bool sorted, Fn&& fn) {
    if (flat_) {
      table_.for_each(sorted,
                      [&](const common::KvCombineTable::EntryView& e) {
                        scratch_.clear();
                        auto cursor = e.values;
                        while (auto v = cursor.next()) {
                          scratch_.emplace_back(*v);
                        }
                        fn(e.key, scratch_);
                      });
      return;
    }
    if (!sorted) {
      for (const auto& e : legacy_entries_) fn(e.key, e.values);
      return;
    }
    std::vector<const LegacyEntry*> order;
    order.reserve(legacy_entries_.size());
    for (const auto& e : legacy_entries_) order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const LegacyEntry* a, const LegacyEntry* b) {
                return a->key < b->key;
              });
    for (const auto* e : order) fn(e->key, e->values);
  }

  /// Discards everything buffered without counting a spill round (task
  /// restart support); arena chunks and node capacity are kept.
  void clear();

 private:
  /// Approximate per-entry bookkeeping overhead counted against the spill
  /// threshold on the legacy path (hash node + string headers).
  static constexpr std::size_t kEntryOverhead = 48;

  /// Returns every charged byte to the budget and re-opens the fast tier
  /// (called when the buffer empties).
  void release_budget() noexcept {
    reservation_.reset();
    pressure_spill_ = false;
  }

  struct LegacyEntry {
    std::string_view key;  // aliases the index node's key; stable
    std::vector<std::string> values;
    std::size_t bytes = 0;  // value bytes only (key counted separately)
  };

  const bool flat_;
  const std::size_t spill_threshold_;
  const std::size_t inline_combine_threshold_;
  const std::size_t budget_chunk_;  // charge granularity (spill_page_bytes)
  CombineRunner* combine_;
  ShuffleCounters* counters_;
  store::Reservation reservation_;
  bool pressure_spill_ = false;

  common::KvCombineTable table_;

  // Legacy path: dense first-insertion-order entries plus a transparent
  // index whose node-stable keys back the entries' views.
  std::vector<LegacyEntry> legacy_entries_;
  std::unordered_map<std::string, std::uint32_t,
                     common::TransparentStringHash,
                     common::TransparentStringEq>
      legacy_index_;
  std::size_t legacy_bytes_ = 0;

  std::vector<std::string> scratch_;  // for_each_group materialization
};

}  // namespace mpid::shuffle
