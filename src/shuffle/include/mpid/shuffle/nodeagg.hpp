// NodeAggregator: the hierarchical node-local aggregation stage
// (DESIGN.md §14).
//
// The paper measures cross-node shuffle transfer as the dominant
// MapReduce cost on slow fabrics; the combiner cuts it per mapper, but
// every co-located mapper still ships its own copy of the hot keys.
// This stage is the structural fix (Lee et al.'s in-node combining):
// all mappers modeled on one node route their partitioned, spill-encoded
// frames through a per-node combine tree that merges duplicate keys
// ACROSS the co-located mappers and emits one frame stream per
// (node, reducer-partition). With m mappers per node and combiner-
// friendly keys, the fabric sees ~1/m of the per-mapper traffic — the
// compute-for-communication trade Coded MapReduce formalizes.
//
// The tree is built from the stages PR 5–7 already shared: a
// MapOutputBuffer (KvCombineTable fast tier, MemoryBudget-charged, so
// memory pressure tightens the drain cadence instead of OOMing) feeding
// a SpillEncoder whose frames are counted as bytes_post_node_agg and
// only then codec-framed. Determinism: callers feed member streams in a
// fixed order (MPI-D: node-local mapper index ascending; MiniHadoop:
// map-task id ascending), the buffer drains in first-insertion (or
// sorted-key) order, so the merged stream is byte-identical across runs
// — the property the parity tests pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mpid/common/framepool.hpp"
#include "mpid/shuffle/buffer.hpp"
#include "mpid/shuffle/compress.hpp"
#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/engine.hpp"
#include "mpid/shuffle/options.hpp"
#include "mpid/shuffle/partition.hpp"

namespace mpid::store {
class MemoryBudget;
}

namespace mpid::shuffle {

/// One node's combine tree. Feed every co-located member's frames via
/// add_frame() (member order fixed by the caller), then finish(); the
/// sink receives the merged per-partition stream. Counter contract:
/// bytes_pre_node_agg counts every byte entering the tree,
/// bytes_post_node_agg counts merged frame bytes before codec framing,
/// and node_agg_merge_ns times the whole decode/combine/re-encode path
/// (spill rounds inside it also tick spills/spill_ns, like any other
/// use of the shared stages).
class NodeAggregator {
 public:
  struct Setup {
    /// Layout of the frames the sink receives (MPI-D: kKvList,
    /// MiniHadoop segments: kKvPair). The aggregator keeps its own copy
    /// of the options, so callers may pass a tuned temporary.
    Layout out_layout = Layout::kKvList;
    std::uint32_t partitions = 1;
    /// Flush threshold per merged partition frame; 0 means "use
    /// options.partition_frame_bytes", SpillEncoder::kUnboundedFrame
    /// accumulates one frame per partition until finish().
    std::size_t frame_flush_bytes = 0;
    Partitioner partitioner;
    CombineRunner* combine = nullptr;       // nullable: merge lists only
    /// Applied to each merged frame AFTER the bytes_post_node_agg
    /// accounting, so the pre/post ratio stays a pure structural cut.
    FrameCompressor* compressor = nullptr;  // nullable: ship raw
    common::FramePool* pool = nullptr;
    /// Budget the tree's combine buffer charges (nullable: unbounded).
    store::MemoryBudget* budget = nullptr;
    ShuffleCounters* counters = nullptr;
    SpillEncoder::FrameSink sink;
  };

  NodeAggregator(const ShuffleOptions& options, Setup setup);

  NodeAggregator(const NodeAggregator&) = delete;
  NodeAggregator& operator=(const NodeAggregator&) = delete;

  /// Merges one member frame into the tree. `in_layout` names the wire
  /// layout of `frame` (already codec-decoded by the caller). Budget
  /// pressure or the spill threshold drain the buffer mid-stream —
  /// earlier drains mean less cross-mapper dedup, never wrong output.
  void add_frame(std::span<const std::byte> frame, Layout in_layout);

  /// Final drain + flush of every partition's merged frame (in
  /// partition order). Call once after the last add_frame().
  void finish();

  /// Discards everything buffered and pending (restart support).
  void reset();

 private:
  const ShuffleOptions options_;  // owned copy: members reference it
  ShuffleCounters* counters_;
  FrameCompressor* compressor_;
  SpillEncoder::FrameSink sink_;
  MapOutputBuffer buffer_;
  SpillEncoder encoder_;
};

}  // namespace mpid::shuffle
