#include "mpid/store/spillfile.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "mpid/common/codec.hpp"

namespace mpid::store {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::uint32_t kMagic = 0x5244504Du;  // "MPDR" little-endian
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagCompressed = 0x01;
constexpr std::size_t kHeaderBytes = 40;

void put_u32(std::byte* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = std::byte((v >> (8 * i)) & 0xFF);
}

void put_u64(std::byte* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = std::byte((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(const std::byte* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t(std::to_integer<std::uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::byte* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t(std::to_integer<std::uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

void encode_header(std::byte* h, std::uint8_t flags, const RunInfo& info) {
  put_u32(h, kMagic);
  h[4] = std::byte(kVersion);
  h[5] = std::byte(flags);
  h[6] = std::byte(0);
  h[7] = std::byte(0);
  put_u64(h + 8, info.groups);
  put_u64(h + 16, info.raw_bytes);
  put_u64(h + 24, info.wire_bytes);
  put_u64(h + 32, info.blocks);
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("store: " + what + ": " + path + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

// ---- SpillFile -----------------------------------------------------------

SpillFile SpillFile::create(const std::string& dir, std::string_view tag) {
  static std::atomic<std::uint64_t> sequence{0};
  if (dir.empty()) {
    throw std::runtime_error(
        "store: spill_dir is empty — set ShuffleOptions::spill_dir when a "
        "memory budget is active");
  }
  // pid + process-wide sequence makes the name unique across concurrent
  // test processes AND across attempts within one process; O_EXCL turns
  // any residual collision into a retry instead of silent reuse.
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::string path = dir;
    if (path.back() != '/') path += '/';
    path += "mpid-spill-p" + std::to_string(::getpid()) + "-" +
            std::to_string(sequence.fetch_add(1)) + "-" + std::string(tag);
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0600);
    if (fd >= 0) {
      ::close(fd);
      return SpillFile(std::move(path));
    }
    if (errno != EEXIST) fail("cannot create spill file", path);
  }
  throw std::runtime_error("store: spill file name collisions persist in " +
                           dir);
}

void SpillFile::remove_now() noexcept {
  if (!path_.empty()) {
    std::remove(path_.c_str());
    path_.clear();
  }
}

// ---- RunWriter -----------------------------------------------------------

RunWriter::RunWriter(SpillFile file, const Options& options, SpillPool* pool)
    : options_(options), pool_(pool), file_(std::move(file)) {
  out_ = std::fopen(file_.path().c_str(), "wb");
  if (out_ == nullptr) fail("cannot open spill file", file_.path());
  std::byte zeros[kHeaderBytes] = {};
  if (std::fwrite(zeros, 1, kHeaderBytes, out_) != kHeaderBytes) {
    fail("cannot write run header", file_.path());
  }
  info_.file_bytes = kHeaderBytes;
  if (pool_ != nullptr) {
    block_ = pool_->acquire();
    scratch_ = pool_->acquire();
  } else {
    block_.reserve(options_.block_bytes);
  }
}

RunWriter::~RunWriter() {
  if (out_ != nullptr) std::fclose(out_);
  if (pool_ != nullptr) {
    pool_->release(std::move(block_));
    pool_->release(std::move(scratch_));
  }
}

void RunWriter::begin_group(std::string_view key, std::size_t value_count) {
  if (finished_) {
    throw std::logic_error("RunWriter: begin_group after finish");
  }
  if (pending_values_ != 0) {
    throw std::logic_error("RunWriter: previous group is missing values");
  }
  // Blocks cut on group boundaries only, so a reader never reassembles a
  // group across blocks; a single oversized group just grows its block.
  if (!block_.empty() && block_.size() >= options_.block_bytes) flush_block();
  common::put_varint(block_, key.size());
  const auto* data = reinterpret_cast<const std::byte*>(key.data());
  block_.insert(block_.end(), data, data + key.size());
  common::put_varint(block_, value_count);
  pending_values_ = value_count;
  ++info_.groups;
}

void RunWriter::add_value(std::string_view value) {
  if (pending_values_ == 0) {
    throw std::logic_error("RunWriter: add_value without begin_group");
  }
  common::put_varint(block_, value.size());
  const auto* data = reinterpret_cast<const std::byte*>(value.data());
  block_.insert(block_.end(), data, data + value.size());
  --pending_values_;
}

void RunWriter::flush_block() {
  if (block_.empty()) return;
  const std::uint64_t start = now_ns();
  std::span<const std::byte> payload(block_.data(), block_.size());
  if (options_.compress) {
    scratch_.clear();
    common::encode_frame(common::FrameKind::kKvList, payload, scratch_);
    payload = {scratch_.data(), scratch_.size()};
  }
  std::byte len[4];
  put_u32(len, static_cast<std::uint32_t>(payload.size()));
  if (std::fwrite(len, 1, 4, out_) != 4 ||
      std::fwrite(payload.data(), 1, payload.size(), out_) !=
          payload.size()) {
    fail("cannot write run block", file_.path());
  }
  ++info_.blocks;
  info_.raw_bytes += block_.size();
  info_.wire_bytes += payload.size();
  info_.file_bytes += 4 + payload.size();
  block_.clear();
  info_.write_ns += now_ns() - start;
}

std::pair<SpillFile, RunInfo> RunWriter::finish() {
  if (finished_) throw std::logic_error("RunWriter: double finish");
  if (pending_values_ != 0) {
    throw std::logic_error("RunWriter: last group is missing values");
  }
  flush_block();
  const std::uint64_t start = now_ns();
  std::byte header[kHeaderBytes];
  encode_header(header, options_.compress ? kFlagCompressed : 0, info_);
  if (std::fseek(out_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kHeaderBytes, out_) != kHeaderBytes ||
      std::fflush(out_) != 0) {
    fail("cannot finalize run header", file_.path());
  }
  std::fclose(out_);
  out_ = nullptr;
  info_.write_ns += now_ns() - start;
  finished_ = true;
  return {std::move(file_), info_};
}

// ---- RunReader -----------------------------------------------------------

RunReader::RunReader(const std::string& path, SpillPool* pool)
    : pool_(pool) {
  in_ = std::fopen(path.c_str(), "rb");
  if (in_ == nullptr) fail("cannot open run", path);
  std::byte header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, in_) != kHeaderBytes) {
    std::fclose(in_);
    in_ = nullptr;
    throw std::runtime_error("store: truncated run header: " + path);
  }
  if (get_u32(header) != kMagic ||
      std::to_integer<std::uint8_t>(header[4]) != kVersion) {
    std::fclose(in_);
    in_ = nullptr;
    throw std::runtime_error("store: not a finished run: " + path);
  }
  compressed_ =
      (std::to_integer<std::uint8_t>(header[5]) & kFlagCompressed) != 0;
  header_groups_ = get_u64(header + 8);
  blocks_left_ = get_u64(header + 32);
  if (pool_ != nullptr) {
    wire_ = pool_->acquire();
    decoded_ = pool_->acquire();
  }
}

RunReader::~RunReader() {
  if (in_ != nullptr) std::fclose(in_);
  if (pool_ != nullptr) {
    pool_->release(std::move(wire_));
    pool_->release(std::move(decoded_));
  }
}

bool RunReader::load_block() {
  if (blocks_left_ == 0) return false;
  const std::uint64_t start = now_ns();
  std::byte len_bytes[4];
  if (std::fread(len_bytes, 1, 4, in_) != 4) {
    throw std::runtime_error("store: truncated run block prefix");
  }
  const std::uint32_t len = get_u32(len_bytes);
  wire_.resize(len);
  if (std::fread(wire_.data(), 1, len, in_) != len) {
    throw std::runtime_error("store: truncated run block");
  }
  if (compressed_) {
    common::decode_frame({wire_.data(), wire_.size()}, decoded_);
    reader_.emplace(std::span<const std::byte>(decoded_.data(),
                                               decoded_.size()));
  } else {
    reader_.emplace(std::span<const std::byte>(wire_.data(), wire_.size()));
  }
  --blocks_left_;
  read_ns_ += now_ns() - start;
  return true;
}

bool RunReader::next(Group& group) {
  for (;;) {
    if (!reader_ || reader_->at_end()) {
      if (!load_block()) return false;
      continue;
    }
    const auto view = reader_->next();
    if (!view) continue;  // block exhausted exactly at a boundary
    if (have_last_ && view->key < last_key_) {
      throw std::runtime_error("store: run is not key-sorted");
    }
    last_key_.assign(view->key);
    have_last_ = true;
    group.key.assign(view->key);
    group.values.clear();
    group.values.reserve(view->values.size());
    for (const auto v : view->values) group.values.emplace_back(v);
    return true;
  }
}

}  // namespace mpid::store
