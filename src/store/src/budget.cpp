#include "mpid/store/budget.hpp"

namespace mpid::store {

bool MemoryBudget::try_charge(std::size_t bytes) {
  if (cap_ == 0) return true;
  {
    std::lock_guard lock(mu_);
    if (used_ + bytes <= cap_) {
      used_ += bytes;
      return true;
    }
  }
  // Refused: ask cache-like holders to give memory back, then retry once.
  // The registry lock is held across the invocations so a callback being
  // removed cannot be running after remove_pressure_callback returns.
  {
    std::lock_guard cb_lock(callbacks_mu_);
    for (auto& [token, fn] : callbacks_) {
      (void)token;
      fn(bytes);
    }
  }
  std::lock_guard lock(mu_);
  if (used_ + bytes <= cap_) {
    used_ += bytes;
    return true;
  }
  return false;
}

std::size_t MemoryBudget::add_pressure_callback(PressureFn fn) {
  std::lock_guard lock(callbacks_mu_);
  const std::size_t token = next_token_++;
  callbacks_.emplace_back(token, std::move(fn));
  return token;
}

void MemoryBudget::remove_pressure_callback(std::size_t token) {
  std::lock_guard lock(callbacks_mu_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    if (it->first == token) {
      callbacks_.erase(it);
      return;
    }
  }
}

}  // namespace mpid::store
