#include "mpid/store/extmerge.hpp"

namespace mpid::store {

LoserTree::LoserTree(std::vector<GroupSource*> sources)
    : sources_(std::move(sources)), k_(sources_.size()) {
  slots_.resize(k_);
  exhausted_.resize(k_, 0);
  for (std::size_t s = 0; s < k_; ++s) {
    exhausted_[s] = sources_[s]->next(slots_[s]) ? 0 : 1;
  }
  if (k_ == 0) return;
  // Build the tournament bottom-up: leaves live at positions [k, 2k),
  // node i's children are 2i and 2i+1, each internal node keeps the loser
  // of its match and tree_[0] keeps the overall winner. The complete-tree
  // indexing is valid for any k, powers of two or not.
  tree_.assign(k_, 0);
  std::vector<std::size_t> winner(2 * k_);
  for (std::size_t s = 0; s < k_; ++s) winner[k_ + s] = s;
  for (std::size_t node = k_ - 1; node >= 1; --node) {
    const std::size_t a = winner[2 * node];
    const std::size_t b = winner[2 * node + 1];
    if (beats(a, b)) {
      winner[node] = a;
      tree_[node] = b;
    } else {
      winner[node] = b;
      tree_[node] = a;
    }
  }
  tree_[0] = winner[1];  // k == 1: position 1 IS the single leaf
}

bool LoserTree::beats(std::size_t a, std::size_t b) const {
  if (exhausted_[a]) return false;
  if (exhausted_[b]) return true;
  const auto& ka = slots_[a].key;
  const auto& kb = slots_[b].key;
  if (ka != kb) return ka < kb;
  return a < b;  // arrival-order tie-break
}

void LoserTree::replay(std::size_t s) {
  std::size_t cur = s;
  for (std::size_t node = (k_ + s) / 2; node >= 1; node /= 2) {
    if (beats(tree_[node], cur)) std::swap(cur, tree_[node]);
  }
  tree_[0] = cur;
}

bool LoserTree::pop(Group& group, std::size_t& source) {
  if (k_ == 0) return false;
  const std::size_t w = tree_[0];
  if (exhausted_[w]) return false;
  group = std::move(slots_[w]);
  source = w;
  exhausted_[w] = sources_[w]->next(slots_[w]) ? 0 : 1;
  replay(w);
  return true;
}

bool MergingGroupStream::next(std::string& key,
                              std::vector<std::string>& values) {
  std::size_t source = 0;
  if (!have_pending_ && !tree_.pop(pending_, source)) return false;
  have_pending_ = false;
  key = std::move(pending_.key);
  values = std::move(pending_.values);
  // Drain every source holding this key; pops arrive in (key, source)
  // order, so the concatenation is automatically in arrival order.
  while (tree_.pop(pending_, source)) {
    if (pending_.key != key) {
      have_pending_ = true;
      break;
    }
    for (auto& v : pending_.values) values.push_back(std::move(v));
  }
  return true;
}

std::pair<SpillFile, RunInfo> merge_sources(
    const std::vector<std::unique_ptr<GroupSource>>& sources,
    RunWriter& writer) {
  std::vector<GroupSource*> raw;
  raw.reserve(sources.size());
  for (const auto& s : sources) raw.push_back(s.get());
  MergingGroupStream stream(std::move(raw));
  std::string key;
  std::vector<std::string> values;
  while (stream.next(key, values)) {
    writer.begin_group(key, values.size());
    for (const auto& v : values) writer.add_value(v);
  }
  return writer.finish();
}

}  // namespace mpid::store
