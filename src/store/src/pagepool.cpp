#include "mpid/store/pagepool.hpp"

#include <utility>

namespace mpid::store {

SpillPool::SpillPool(MemoryBudget* budget, std::size_t page_bytes,
                     std::size_t max_free)
    : page_bytes_(page_bytes), max_free_(max_free), budget_(budget) {
  if (budget_ != nullptr) {
    pressure_token_ = budget_->add_pressure_callback(
        [this](std::size_t /*wanted*/) { return drop_free_pages(); });
  }
}

SpillPool::~SpillPool() {
  if (budget_ != nullptr) {
    budget_->remove_pressure_callback(pressure_token_);
    std::lock_guard lock(mu_);
    budget_->release(pages_charged_ * page_bytes_);
    pages_charged_ = 0;
  }
}

SpillPool::Page SpillPool::acquire() {
  {
    std::lock_guard lock(mu_);
    if (!free_.empty()) {
      Page page = std::move(free_.back());
      free_.pop_back();
      page.clear();
      return page;
    }
  }
  // Fresh page: charged if the budget permits, forced otherwise — the
  // spill path must be able to stage bytes on their way OUT of memory.
  if (budget_ != nullptr && !budget_->try_charge(page_bytes_)) {
    budget_->charge(page_bytes_);
  }
  {
    std::lock_guard lock(mu_);
    ++pages_charged_;
  }
  Page page;
  page.reserve(page_bytes_);
  return page;
}

void SpillPool::release(Page page) {
  if (page.capacity() >= page_bytes_) {
    std::lock_guard lock(mu_);
    if (free_.size() < max_free_) {
      page.clear();
      free_.push_back(std::move(page));
      return;
    }
  }
  // Dropped: free the memory and return its charge.
  page = Page{};
  std::lock_guard lock(mu_);
  if (pages_charged_ > 0) {
    --pages_charged_;
    if (budget_ != nullptr) budget_->release(page_bytes_);
  }
}

std::size_t SpillPool::drop_free_pages() {
  std::lock_guard lock(mu_);
  const std::size_t dropped = free_.size();
  free_.clear();
  if (budget_ != nullptr && dropped > 0) {
    budget_->release(dropped * page_bytes_);
    pages_charged_ -= dropped > pages_charged_ ? pages_charged_ : dropped;
  }
  return dropped * page_bytes_;
}

}  // namespace mpid::store
