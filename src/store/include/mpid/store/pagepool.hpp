// SpillPool: fixed-size recycled pages for the store's I/O paths.
//
// Mimir's Spool taught the page lesson for MapReduce runtimes: every
// buffer the spill path touches should be a fixed-size page drawn from a
// recycling pool, so steady-state spilling allocates nothing and the
// page size — not the data distribution — bounds transient memory.
// RunWriter and RunReader stage their blocks in SpillPool pages;
// consumers that hold pages across calls return them when done.
//
// The pool is a cache, so it cooperates with the MemoryBudget rather than
// competing with it: free pages stay charged (they are real RSS), and the
// pool registers a pressure callback that drops the free list when some
// other consumer's charge would otherwise be refused. Acquiring a page
// always succeeds — a spill path that cannot get its I/O buffer cannot
// drain memory to disk at all — so a fresh page under a full budget
// force-charges (transient overshoot bounded by pages in flight).
//
// Thread safety: acquire/release are safe from any thread.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "mpid/store/budget.hpp"

namespace mpid::store {

class SpillPool {
 public:
  using Page = std::vector<std::byte>;

  /// `budget` nullable (uncharged pool). Pages are `page_bytes` of
  /// capacity each; `max_free` bounds the free list.
  SpillPool(MemoryBudget* budget, std::size_t page_bytes,
            std::size_t max_free = 16);

  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  ~SpillPool();

  /// An empty page with at least page_bytes of capacity. Never fails:
  /// prefers the free list, then a budget-charged fresh page, then a
  /// force-charged one (see file comment).
  Page acquire();

  /// Returns a page to the free list (or frees it when the list is full
  /// or the page was resized below page_bytes capacity).
  void release(Page page);

  std::size_t page_bytes() const noexcept { return page_bytes_; }

  std::size_t free_pages() const {
    std::lock_guard lock(mu_);
    return free_.size();
  }

  /// Total pages this pool has charged against the budget (free + in use).
  std::size_t pages_charged() const {
    std::lock_guard lock(mu_);
    return pages_charged_;
  }

 private:
  std::size_t drop_free_pages();

  const std::size_t page_bytes_;
  const std::size_t max_free_;
  MemoryBudget* const budget_;
  std::size_t pressure_token_ = 0;
  mutable std::mutex mu_;
  std::vector<Page> free_;
  std::size_t pages_charged_ = 0;
};

}  // namespace mpid::store
