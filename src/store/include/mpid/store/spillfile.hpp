// SpillFile + RunWriter/RunReader: the disk tier of the two-tier store.
//
// A *run* is the on-disk shape of one sorted merge input: a sequence of
// key-sorted KvList blocks, each independently (optionally) codec-framed,
// behind a fixed self-describing header. Runs are what the budget-bound
// SegmentMerger spills when its in-memory cursors exceed the arbiter's
// cap, and what the external k-way merge (extmerge.hpp) reads back —
// possibly through several fan-in-bounded passes — so reducer memory
// stays bounded by (cursors + one I/O block per open run) regardless of
// the shuffle volume.
//
// On-disk layout (all integers little-endian):
//
//   [u32 magic "MPDR"][u8 version][u8 flags][u16 reserved]
//   [u64 group_count][u64 raw_bytes][u64 wire_bytes][u64 block_count]
//   then block_count times: [u32 payload_len][payload]
//
// flags bit 0: payloads are codec frames (common/codec.hpp) of KvList
// blocks; otherwise payloads are raw KvList frames. Blocks end on group
// boundaries, so a reader never stitches a group across blocks. The
// header is patched in place by RunWriter::finish(); a run that was never
// finished is unreadable by construction (zero magic), which keeps a
// crashed writer from being mistaken for a valid run.
//
// SpillFile owns the name and the lifetime: names are unique per process
// (pid + atomic sequence + tag, created O_EXCL so ctest -j collisions are
// impossible) and the file is unlinked on destruction — success and
// exception paths alike. Nothing outlives the job in spill_dir.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mpid/common/kvframe.hpp"
#include "mpid/store/pagepool.hpp"

namespace mpid::store {

/// RAII handle to one uniquely named temp file in a spill directory.
class SpillFile {
 public:
  /// Creates `<dir>/mpid-spill-p<pid>-<seq>-<tag>` exclusively. Throws
  /// std::runtime_error when the directory is missing or not writable.
  static SpillFile create(const std::string& dir, std::string_view tag);

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  SpillFile(SpillFile&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }

  SpillFile& operator=(SpillFile&& other) noexcept {
    if (this != &other) {
      remove_now();
      path_ = std::move(other.path_);
      other.path_.clear();
    }
    return *this;
  }

  /// Unlinks the file (no-op for a moved-from handle).
  ~SpillFile() { remove_now(); }

  const std::string& path() const noexcept { return path_; }

 private:
  explicit SpillFile(std::string path) : path_(std::move(path)) {}

  void remove_now() noexcept;

  std::string path_;
};

/// One materialized (key, [value...]) group — the currency of the disk
/// tier. Runs stream these; the loser-tree merge (extmerge.hpp) reorders
/// and concatenates them.
struct Group {
  std::string key;
  std::vector<std::string> values;
};

/// What one finished run holds (folded into ShuffleCounters by callers —
/// the store layer has no dependency on the shuffle layer's counter
/// block).
struct RunInfo {
  std::uint64_t groups = 0;
  std::uint64_t blocks = 0;
  std::uint64_t raw_bytes = 0;   // KvList payload bytes before the codec
  std::uint64_t wire_bytes = 0;  // payload bytes on disk (post-codec)
  std::uint64_t file_bytes = 0;  // everything written (header + prefixes)
  std::uint64_t write_ns = 0;    // wall time inside write + encode
};

/// Streams key-sorted groups into one run. Groups must arrive in
/// non-decreasing key order (the writer does not check — its callers are
/// merges whose output order is already proven; RunReader re-verifies on
/// the way back in).
class RunWriter {
 public:
  struct Options {
    std::size_t block_bytes = 256 * 1024;  // flush threshold, not a cap
    bool compress = false;                 // codec-frame each block
  };

  /// Takes ownership of the file; `pool` (nullable) recycles the block
  /// staging buffers.
  RunWriter(SpillFile file, const Options& options, SpillPool* pool);

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  ~RunWriter();

  void begin_group(std::string_view key, std::size_t value_count);
  void add_value(std::string_view value);

  /// Flushes the tail block, patches the header, and returns the stats.
  /// The run stays on disk, owned by the returned SpillFile.
  std::pair<SpillFile, RunInfo> finish();

 private:
  void flush_block();

  const Options options_;
  SpillPool* const pool_;
  SpillFile file_;
  std::FILE* out_ = nullptr;
  RunInfo info_;
  std::vector<std::byte> block_;    // raw KvList bytes being staged
  std::vector<std::byte> scratch_;  // codec output staging
  std::uint64_t pending_values_ = 0;
  bool finished_ = false;
};

/// Streams a finished run back as (key, values) groups, verifying the
/// sort order and frame integrity as it goes.
class RunReader {
 public:
  /// Opens `path` and parses the header. Throws std::runtime_error on a
  /// missing, truncated, or unfinished run.
  RunReader(const std::string& path, SpillPool* pool);

  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  ~RunReader();

  /// Next group in key order; false at end of run. Throws
  /// std::runtime_error on corrupt blocks or an unsorted run.
  bool next(Group& group);

  std::uint64_t groups() const noexcept { return header_groups_; }
  std::uint64_t read_ns() const noexcept { return read_ns_; }

 private:
  bool load_block();

  SpillPool* const pool_;
  std::FILE* in_ = nullptr;
  bool compressed_ = false;
  std::uint64_t header_groups_ = 0;
  std::uint64_t blocks_left_ = 0;
  std::vector<std::byte> wire_;     // on-disk block bytes
  std::vector<std::byte> decoded_;  // post-codec KvList bytes
  std::optional<common::KvListReader> reader_;  // over the current block
  std::string last_key_;
  bool have_last_ = false;
  std::uint64_t read_ns_ = 0;
};

}  // namespace mpid::store
