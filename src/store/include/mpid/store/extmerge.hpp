// External k-way merge: a tournament loser tree over key-sorted group
// streams.
//
// This is the classic external-sort merge network (Knuth TAOCP vol. 3):
// K sorted inputs, one comparison path of depth ceil(log2 K) per popped
// group instead of a K-wide linear scan. The inputs are GroupSources —
// disk runs (RunReader) or any in-memory cursor an adapter wraps — so the
// same tree serves both the run-compaction passes (disk → disk, bounding
// the final fan-in) and the final streamed merge the reducer consumes.
//
// Ordering contract: pops come in ascending (key, source index) order.
// The source-index tie-break is load-bearing — the shuffle layer assigns
// indices in frame arrival order, which is exactly the tie-break the
// in-memory SegmentMerger uses, so a merge that detours through disk
// concatenates equal keys' values in the same order as one that never
// spilled. That is what keeps budget-bounded output byte-identical to
// unbounded output.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mpid/store/spillfile.hpp"

namespace mpid::store {

/// One key-sorted input stream of the merge.
class GroupSource {
 public:
  virtual ~GroupSource() = default;

  /// Produces the next group in non-decreasing key order; false at end.
  virtual bool next(Group& group) = 0;
};

/// A disk run as a merge input.
class RunSource final : public GroupSource {
 public:
  RunSource(const std::string& path, SpillPool* pool)
      : reader_(path, pool) {}

  bool next(Group& group) override { return reader_.next(group); }

  std::uint64_t read_ns() const noexcept { return reader_.read_ns(); }

 private:
  RunReader reader_;
};

/// Tournament loser tree over K GroupSources. pop() yields groups in
/// ascending (key, source index) order; equal-key concatenation is the
/// caller's job (see MergingGroupStream).
class LoserTree {
 public:
  /// Borrows the sources (they must outlive the tree); index order is the
  /// tie-break order.
  explicit LoserTree(std::vector<GroupSource*> sources);

  /// Moves the smallest pending group (and its source index) out; false
  /// when every source is exhausted.
  bool pop(Group& group, std::size_t& source);

 private:
  /// True when source a's pending group ranks before source b's.
  bool beats(std::size_t a, std::size_t b) const;

  /// Replays leaf `s`'s path to the root after its slot was refilled.
  void replay(std::size_t s);

  std::vector<GroupSource*> sources_;
  std::vector<Group> slots_;     // pending group per source
  std::vector<char> exhausted_;  // per source
  std::vector<std::size_t> tree_;  // [0] winner; [1, k) match losers
  std::size_t k_ = 0;
};

/// The stream shape merge consumers iterate: groups in ascending key
/// order with equal keys' value lists concatenated in source-index order.
class MergingGroupStream {
 public:
  explicit MergingGroupStream(std::vector<GroupSource*> sources)
      : tree_(std::move(sources)) {}

  bool next(std::string& key, std::vector<std::string>& values);

 private:
  LoserTree tree_;
  Group pending_;
  bool have_pending_ = false;
};

/// One compaction pass: merges `sources` into `writer` (equal keys
/// concatenated in source order) and finishes the run.
std::pair<SpillFile, RunInfo> merge_sources(
    const std::vector<std::unique_ptr<GroupSource>>& sources,
    RunWriter& writer);

}  // namespace mpid::store
