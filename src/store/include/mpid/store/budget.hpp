// MemoryBudget: the process-wide arbiter of the two-tier store.
//
// The paper's Figure 6 runs (100 GB WordCount) assume the runtime can hold
// map output and reducer merge segments entirely in RAM. A bounded box
// cannot, which is the failure mode successor systems (Mimir's page-based
// Spool, DataMPI's explicit buffer management) fixed by making memory a
// budgeted resource: every consumer asks the arbiter before it grows, and
// a refused grow is the signal to spill to the slow tier (disk) instead of
// OOMing.
//
// The arbiter is deliberately simple:
//
//   * one hard byte cap shared by every consumer that holds a Reservation
//     against this budget (map-output buffers, merger cursors, page pools);
//   * try_charge() never blocks — a refusal is immediate, and the caller
//     decides whether to spill, shrink, or force the charge because it
//     cannot make progress otherwise (e.g. the one page a spill writer
//     needs to drain memory *to* disk);
//   * pressure callbacks let cache-like consumers (free page lists) give
//     memory back before a charge is refused, so caches never starve the
//     consumers doing real work.
//
// Thread safety: all methods are safe to call from any thread. Pressure
// callbacks run outside the arbiter lock (a callback may release()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace mpid::store {

class MemoryBudget {
 public:
  /// A pressure callback returns the number of bytes it released.
  using PressureFn = std::function<std::size_t(std::size_t wanted)>;

  /// cap_bytes = 0 means unbounded: every charge succeeds and pressure
  /// callbacks never fire.
  explicit MemoryBudget(std::size_t cap_bytes) : cap_(cap_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  std::size_t cap() const noexcept { return cap_; }
  bool unbounded() const noexcept { return cap_ == 0; }

  std::size_t used() const {
    std::lock_guard lock(mu_);
    return used_;
  }

  /// Bytes still chargeable without refusal (cap for an unbounded budget).
  std::size_t available() const {
    std::lock_guard lock(mu_);
    if (cap_ == 0) return SIZE_MAX;
    return used_ >= cap_ ? 0 : cap_ - used_;
  }

  /// Attempts to charge `bytes`. On refusal, runs the registered pressure
  /// callbacks (outside the lock) and retries once; returns false if the
  /// budget is still exhausted. A false return charges nothing.
  bool try_charge(std::size_t bytes);

  /// Unconditional charge for consumers that cannot make progress without
  /// the memory (the spill path's own I/O page). May push used() past the
  /// cap transiently; pair with release().
  void charge(std::size_t bytes) {
    std::lock_guard lock(mu_);
    used_ += bytes;
  }

  void release(std::size_t bytes) {
    std::lock_guard lock(mu_);
    used_ = bytes >= used_ ? 0 : used_ - bytes;
  }

  /// Registers a pressure callback; returns a token for remove. The
  /// callback must not call add/remove_pressure_callback (deadlock) but
  /// may charge/release.
  std::size_t add_pressure_callback(PressureFn fn);
  void remove_pressure_callback(std::size_t token);

 private:
  const std::size_t cap_;
  mutable std::mutex mu_;
  std::size_t used_ = 0;
  std::mutex callbacks_mu_;  // serializes callback registry + invocation
  std::vector<std::pair<std::size_t, PressureFn>> callbacks_;
  std::size_t next_token_ = 0;
};

/// RAII per-consumer account against one MemoryBudget. Tracks how many
/// bytes this consumer holds and releases them all on destruction, so a
/// consumer that throws mid-task can never leak budget. Detached (null
/// budget) reservations grant every grow — the unbounded default costs
/// callers no branches.
class Reservation {
 public:
  Reservation() = default;
  explicit Reservation(MemoryBudget* budget) : budget_(budget) {}

  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;

  Reservation(Reservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }

  Reservation& operator=(Reservation&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  ~Reservation() { reset(); }

  /// Grows the reservation by `bytes`; false means the budget refused
  /// (after pressure) and nothing was charged.
  bool try_grow(std::size_t bytes) {
    if (budget_ == nullptr || budget_->try_charge(bytes)) {
      bytes_ += bytes;
      return true;
    }
    return false;
  }

  /// Unconditional grow (see MemoryBudget::charge).
  void grow(std::size_t bytes) {
    if (budget_ != nullptr) budget_->charge(bytes);
    bytes_ += bytes;
  }

  void shrink(std::size_t bytes) {
    if (bytes > bytes_) bytes = bytes_;
    if (budget_ != nullptr) budget_->release(bytes);
    bytes_ -= bytes;
  }

  /// Releases everything held (the destructor's body, callable early).
  void reset() {
    if (budget_ != nullptr && bytes_ > 0) budget_->release(bytes_);
    bytes_ = 0;
  }

  std::size_t bytes() const noexcept { return bytes_; }
  MemoryBudget* budget() const noexcept { return budget_; }

  /// True when attached to a budget that can actually refuse a grow.
  bool budgeted() const noexcept {
    return budget_ != nullptr && !budget_->unbounded();
  }

 private:
  MemoryBudget* budget_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace mpid::store
