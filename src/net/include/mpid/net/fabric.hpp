// Flow-level model of the paper's testbed network: N hosts on a single
// Gigabit Ethernet switch.
//
// Every host has a full-duplex link to the switch (an uplink and a downlink
// with independent capacity) plus a private loopback link for host-local
// transfers. A transfer is a *flow* that consumes the source's uplink and
// the destination's downlink; concurrent flows share link capacity by
// max-min fairness (progressive filling), optionally subject to a per-flow
// rate cap (protocol models use the cap to express per-byte CPU limits,
// e.g. Hadoop RPC's ~1.4 MB/s effective ceiling).
//
// The model is event-driven: whenever a flow starts or finishes, rates are
// recomputed and the next completion is rescheduled. This is the standard
// flow-level approximation used in datacenter simulators; it captures the
// fan-in contention that shapes the shuffle copy times of Figure 1.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <vector>

#include "mpid/sim/engine.hpp"
#include "mpid/sim/event.hpp"
#include "mpid/sim/task.hpp"
#include "mpid/sim/time.hpp"

namespace mpid::net {

struct FabricSpec {
  /// Per-direction host link capacity. Default: effective TCP goodput of
  /// Gigabit Ethernet (~117 MB/s of the 125 MB/s line rate).
  double link_bytes_per_second = 117.0e6;
  /// One-way propagation + switching latency per transfer.
  sim::Time link_latency = sim::microseconds(65);
  /// Capacity of a host's loopback path (local reads during shuffle).
  double loopback_bytes_per_second = 1.2e9;
};

/// Link-level fault applied to one flow by a fault hook: the flow's
/// achievable rate is multiplied by `rate_factor` (<1 models a degraded
/// link) and its start is pushed back by `stall` of virtual time.
struct FlowFault {
  double rate_factor = 1.0;
  sim::Time stall = sim::kTimeZero;
};

/// Consulted once per transfer; the fabric stays fault-library-agnostic
/// (mpid::fault or a test supplies decisions through this plain struct).
using FlowFaultHook = std::function<FlowFault(int src, int dst,
                                              std::uint64_t bytes)>;

class Fabric {
 public:
  Fabric(sim::Engine& engine, int hosts, FabricSpec spec = {});
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Installs the per-flow fault hook (simulation is single-threaded, so
  /// installation is a plain assignment done before running the engine).
  void set_fault_hook(FlowFaultHook hook) { fault_hook_ = std::move(hook); }

  int hosts() const noexcept { return static_cast<int>(up_.size()); }
  const FabricSpec& spec() const noexcept { return spec_; }

  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  /// Transfers `bytes` from host `src` to host `dst`; completes when the
  /// last byte arrives (fair-shared transmission time + link latency).
  /// `rate_cap` bounds this flow's rate regardless of free capacity.
  /// Zero-byte transfers still pay the link latency.
  sim::Task<> transfer(int src, int dst, std::uint64_t bytes,
                       double rate_cap = kUncapped);

  /// Number of in-flight flows (diagnostics / tests).
  std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Total payload bytes ever carried (diagnostics / tests).
  std::uint64_t bytes_carried() const noexcept { return bytes_carried_; }

 private:
  struct Flow {
    int src = 0;
    int dst = 0;
    double remaining = 0;  // bytes
    double rate = 0;       // bytes per second
    double cap = kUncapped;
    std::unique_ptr<sim::Event> done;
  };

  /// Integrates flow progress since the last recompute.
  void advance_progress();
  /// Max-min fair rate assignment over uplinks/downlinks/loopbacks.
  void recompute_rates();
  /// Schedules (or reschedules) the wakeup at the earliest completion.
  void schedule_next_completion();
  /// Timer body: completes finished flows and recomputes.
  sim::Task<> completion_timer(std::uint64_t generation, sim::Time at);
  void on_flows_changed();

  sim::Engine& engine_;
  FabricSpec spec_;
  FlowFaultHook fault_hook_;
  std::vector<double> up_, down_, loop_;  // capacities (constant, per host)
  std::list<Flow> flows_;
  sim::Time last_progress_time_ = sim::kTimeZero;
  std::uint64_t timer_generation_ = 0;
  std::uint64_t bytes_carried_ = 0;
};

}  // namespace mpid::net
