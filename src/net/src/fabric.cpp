#include "mpid/net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mpid::net {

namespace {

/// Flows shorter than this many bytes are considered complete (absorbs
/// floating-point residue in progress integration).
constexpr double kResidueBytes = 1.0;

}  // namespace

Fabric::Fabric(sim::Engine& engine, int hosts, FabricSpec spec)
    : engine_(engine), spec_(spec) {
  if (hosts < 1) throw std::invalid_argument("Fabric: hosts must be >= 1");
  if (spec.link_bytes_per_second <= 0 || spec.loopback_bytes_per_second <= 0) {
    throw std::invalid_argument("Fabric: capacities must be positive");
  }
  up_.assign(static_cast<std::size_t>(hosts), spec.link_bytes_per_second);
  down_.assign(static_cast<std::size_t>(hosts), spec.link_bytes_per_second);
  loop_.assign(static_cast<std::size_t>(hosts),
               spec.loopback_bytes_per_second);
}

sim::Task<> Fabric::transfer(int src, int dst, std::uint64_t bytes,
                             double rate_cap) {
  if (src < 0 || src >= hosts() || dst < 0 || dst >= hosts()) {
    throw std::out_of_range("Fabric::transfer: host out of range");
  }
  if (!(rate_cap > 0)) {
    throw std::invalid_argument("Fabric::transfer: rate cap must be > 0");
  }
  bytes_carried_ += bytes;
  FlowFault fault;
  if (fault_hook_) fault = fault_hook_(src, dst, bytes);
  if (fault.stall > sim::kTimeZero) co_await engine_.delay(fault.stall);
  if (bytes == 0) {
    co_await engine_.delay(spec_.link_latency);
    co_return;
  }

  advance_progress();
  Flow& flow = flows_.emplace_back();
  flow.src = src;
  flow.dst = dst;
  flow.remaining = static_cast<double>(bytes);
  flow.cap = rate_cap;
  if (fault.rate_factor < 1.0) {
    // A degraded link caps the flow below its fair share; the factor
    // applies to the tighter of the two endpoint links.
    const double link = src == dst ? loop_[static_cast<std::size_t>(src)]
                                   : std::min(up_[static_cast<std::size_t>(src)],
                                              down_[static_cast<std::size_t>(dst)]);
    flow.cap = std::min(flow.cap,
                        std::max(fault.rate_factor, 1e-9) * link);
  }
  flow.done = std::make_unique<sim::Event>(engine_);
  sim::Event& done = *flow.done;
  on_flows_changed();

  co_await done.wait();
  co_await engine_.delay(spec_.link_latency);
}

void Fabric::advance_progress() {
  const double elapsed = (engine_.now() - last_progress_time_).to_seconds();
  if (elapsed > 0) {
    for (auto& flow : flows_) {
      flow.remaining = std::max(0.0, flow.remaining - flow.rate * elapsed);
    }
  }
  last_progress_time_ = engine_.now();
}

void Fabric::recompute_rates() {
  // Link ids: [0,H) uplinks, [H,2H) downlinks, [2H,3H) loopbacks.
  const auto h = static_cast<std::size_t>(hosts());
  std::vector<double> cap(3 * h);
  for (std::size_t i = 0; i < h; ++i) {
    cap[i] = up_[i];
    cap[h + i] = down_[i];
    cap[2 * h + i] = loop_[i];
  }

  struct Entry {
    Flow* flow;
    std::size_t link_a;
    std::size_t link_b;  // == link_a for loopback flows
  };
  std::vector<Entry> unfixed;
  unfixed.reserve(flows_.size());
  for (auto& flow : flows_) {
    flow.rate = 0;
    const auto s = static_cast<std::size_t>(flow.src);
    const auto d = static_cast<std::size_t>(flow.dst);
    if (flow.src == flow.dst) {
      unfixed.push_back({&flow, 2 * h + s, 2 * h + s});
    } else {
      unfixed.push_back({&flow, s, h + d});
    }
  }

  std::vector<int> load(3 * h, 0);
  auto count_loads = [&] {
    std::fill(load.begin(), load.end(), 0);
    for (const auto& e : unfixed) {
      ++load[e.link_a];
      if (e.link_b != e.link_a) ++load[e.link_b];
    }
  };

  while (!unfixed.empty()) {
    count_loads();
    // Tightest per-flow share over all loaded links.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < cap.size(); ++l) {
      if (load[l] > 0) share = std::min(share, std::max(cap[l], 0.0) / load[l]);
    }
    // Flows whose own cap binds before the link share are fixed first.
    bool fixed_capped = false;
    for (auto it = unfixed.begin(); it != unfixed.end();) {
      if (it->flow->cap <= share) {
        it->flow->rate = it->flow->cap;
        cap[it->link_a] -= it->flow->cap;
        if (it->link_b != it->link_a) cap[it->link_b] -= it->flow->cap;
        it = unfixed.erase(it);
        fixed_capped = true;
      } else {
        ++it;
      }
    }
    if (fixed_capped) continue;

    // Fix every flow crossing a bottleneck link at the fair share.
    constexpr double kRelTol = 1.0 + 1e-9;
    for (auto it = unfixed.begin(); it != unfixed.end();) {
      const bool on_bottleneck =
          std::max(cap[it->link_a], 0.0) <= share * load[it->link_a] * kRelTol ||
          std::max(cap[it->link_b], 0.0) <= share * load[it->link_b] * kRelTol;
      if (on_bottleneck) {
        it->flow->rate = share;
        cap[it->link_a] -= share;
        if (it->link_b != it->link_a) cap[it->link_b] -= share;
        it = unfixed.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Fabric::schedule_next_completion() {
  ++timer_generation_;
  if (flows_.empty()) return;
  double min_seconds = std::numeric_limits<double>::infinity();
  for (const auto& flow : flows_) {
    if (flow.rate > 0) {
      min_seconds = std::min(min_seconds, flow.remaining / flow.rate);
    }
  }
  if (!std::isfinite(min_seconds)) return;  // nothing can progress
  // Round up a nanosecond so the wakeup never lands before the flow is
  // numerically finished.
  const sim::Time at =
      engine_.now() + sim::from_seconds(min_seconds) + sim::nanoseconds(1);
  engine_.spawn(completion_timer(timer_generation_, at));
}

sim::Task<> Fabric::completion_timer(std::uint64_t generation, sim::Time at) {
  co_await engine_.delay(at - engine_.now());
  if (generation != timer_generation_) co_return;  // superseded
  advance_progress();
  bool completed_any = false;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kResidueBytes) {
      it->done->set();
      it = flows_.erase(it);
      completed_any = true;
    } else {
      ++it;
    }
  }
  if (completed_any || !flows_.empty()) on_flows_changed();
}

void Fabric::on_flows_changed() {
  recompute_rates();
  schedule_next_completion();
}

}  // namespace mpid::net
