#include "mpid/fault/fault.hpp"

#include <algorithm>
#include <sstream>

#include "mpid/common/hash.hpp"

namespace mpid::fault {

namespace {

// Distinct site constants keep the decision streams of the different
// hooks statistically independent even when their (a, b) entities collide.
constexpr std::uint64_t kSiteMessage = 0x6d736700;    // "msg"
constexpr std::uint64_t kSiteFlow = 0x666c6f77;       // "flow"
constexpr std::uint64_t kSiteCrash = 0x63727368;      // "crsh"
constexpr std::uint64_t kSiteStraggle = 0x73747261;   // "stra"
constexpr std::uint64_t kSiteHeartbeat = 0x68656172;  // "hear"
constexpr std::uint64_t kSiteFetch = 0x66657463;      // "fetc"

std::uint64_t mix3(std::uint64_t site, std::uint64_t a,
                   std::uint64_t b) noexcept {
  return common::fmix64(site * 0x9e3779b97f4a7c15ULL ^
                        common::fmix64(a + 0x100000001b3ULL) ^
                        common::fmix64(b + 0xc6a4a7935bd1e995ULL));
}

std::string task_subject(TaskKind kind, int id, int attempt) {
  std::ostringstream s;
  s << (kind == TaskKind::kMap ? "map:" : "reduce:") << id << "#" << attempt;
  return s.str();
}

}  // namespace

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kMessageDrop: return "message_drop";
    case Kind::kMessageDuplicate: return "message_duplicate";
    case Kind::kMessageDelay: return "message_delay";
    case Kind::kMessageCorrupt: return "message_corrupt";
    case Kind::kLinkDegrade: return "link_degrade";
    case Kind::kLinkStall: return "link_stall";
    case Kind::kTaskCrash: return "task_crash";
    case Kind::kTaskStraggle: return "task_straggle";
    case Kind::kHeartbeatDrop: return "heartbeat_drop";
    case Kind::kHeartbeatDelay: return "heartbeat_delay";
    case Kind::kFetchError: return "fetch_error";
    case Kind::kRetransmit: return "retransmit";
    case Kind::kRepull: return "repull";
    case Kind::kTaskReexec: return "task_reexec";
    case Kind::kSpeculativeLaunch: return "speculative_launch";
    case Kind::kFetchRetry: return "fetch_retry";
    case Kind::kLostTracker: return "lost_tracker";
    case Kind::kCorruptDetected: return "corrupt_detected";
    case Kind::kDuplicateDetected: return "duplicate_detected";
  }
  return "unknown";
}

Layer layer_of(Kind kind) noexcept {
  switch (kind) {
    case Kind::kMessageDrop:
    case Kind::kMessageDuplicate:
    case Kind::kMessageDelay:
    case Kind::kMessageCorrupt:
    case Kind::kLinkDegrade:
    case Kind::kLinkStall:
      return Layer::kTransport;
    case Kind::kTaskCrash:
    case Kind::kTaskStraggle:
      return Layer::kTask;
    case Kind::kHeartbeatDrop:
    case Kind::kHeartbeatDelay:
    case Kind::kFetchError:
      return Layer::kControl;
    default:
      return Layer::kRecovery;
  }
}

// ------------------------------------------------------------------ log --

void FaultLog::record(Layer layer, Kind kind, std::string subject,
                      std::string detail) {
  std::lock_guard lock(mu_);
  LogEntry entry;
  entry.id = entries_.size();
  entry.layer = layer;
  entry.kind = kind;
  entry.subject = std::move(subject);
  entry.detail = std::move(detail);
  entries_.push_back(std::move(entry));
  ++counts_[kind];
}

std::vector<LogEntry> FaultLog::entries() const {
  std::lock_guard lock(mu_);
  return entries_;
}

std::uint64_t FaultLog::count(Kind kind) const {
  std::lock_guard lock(mu_);
  const auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t FaultLog::total() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::vector<std::string> FaultLog::canonical() const {
  std::vector<std::string> lines;
  {
    std::lock_guard lock(mu_);
    lines.reserve(entries_.size());
    for (const auto& e : entries_) {
      std::string line = kind_name(e.kind);
      line += ' ';
      line += e.subject;
      if (!e.detail.empty()) {
        line += ' ';
        line += e.detail;
      }
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TaskCrash::TaskCrash(TaskKind task_kind, int id, int attempt_no)
    : std::runtime_error("fault: injected crash of " +
                         task_subject(task_kind, id, attempt_no)),
      task(task_kind),
      task_id(id),
      attempt(attempt_no) {}

// ------------------------------------------------------------- injector --

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

std::uint64_t FaultInjector::raw_draw(std::uint64_t site, std::uint64_t a,
                                      std::uint64_t b,
                                      std::uint64_t sequence) const noexcept {
  return common::fmix64(plan_.seed ^ mix3(site, a, b) ^
                        common::fmix64(sequence + 0x2545f4914f6cdd1dULL));
}

double FaultInjector::draw(std::uint64_t site, std::uint64_t a,
                           std::uint64_t b,
                           std::uint64_t sequence) const noexcept {
  // 53 random bits -> [0, 1), the standard double construction.
  return static_cast<double>(raw_draw(site, a, b, sequence) >> 11) *
         (1.0 / 9007199254740992.0);
}

std::uint64_t FaultInjector::next_sequence(std::uint64_t site, std::uint64_t a,
                                           std::uint64_t b) {
  std::lock_guard lock(mu_);
  return sequences_[mix3(site, a, b)]++;
}

void FaultInjector::add_transport_scope(std::uint64_t context, int tag) {
  std::lock_guard lock(mu_);
  for (const auto& [ctx, t] : scopes_) {
    if (ctx == context && t == tag) return;  // every rank registers once
  }
  scopes_.emplace_back(context, tag);
}

bool FaultInjector::in_scope(std::uint64_t context, int tag) const {
  std::lock_guard lock(mu_);
  for (const auto& [ctx, t] : scopes_) {
    if (ctx == context && t == tag) return true;
  }
  return false;
}

MessageFault FaultInjector::on_message(std::uint64_t context, int src, int dst,
                                       int tag, std::size_t bytes) {
  MessageFault fault;
  if (!in_scope(context, tag)) return fault;
  const double p_any = plan_.message_drop_prob + plan_.message_corrupt_prob +
                       plan_.message_duplicate_prob + plan_.message_delay_prob;
  if (p_any <= 0.0) return fault;

  const auto a = static_cast<std::uint64_t>(src);
  const auto b = static_cast<std::uint64_t>(dst);
  const std::uint64_t seq = next_sequence(kSiteMessage, a, b);
  const double u = draw(kSiteMessage, a, b, seq);

  std::ostringstream subject;
  subject << "msg " << src << "->" << dst;
  std::ostringstream detail;
  detail << "seq " << seq << ", " << bytes << " B";

  double band = plan_.message_drop_prob;
  if (u < band) {
    fault.drop = true;
    log_.record(Layer::kTransport, Kind::kMessageDrop, subject.str(),
                detail.str());
    return fault;
  }
  band += plan_.message_corrupt_prob;
  if (u < band) {
    fault.corrupt = true;
    if (bytes > 0) {
      const std::uint64_t r = raw_draw(kSiteMessage ^ 0xff, a, b, seq);
      fault.corrupt_offset = static_cast<std::size_t>(r % bytes);
      fault.corrupt_mask = static_cast<std::byte>(1u << ((r >> 32) % 8));
    }
    log_.record(Layer::kTransport, Kind::kMessageCorrupt, subject.str(),
                detail.str());
    return fault;
  }
  band += plan_.message_duplicate_prob;
  if (u < band) {
    fault.duplicate = true;
    log_.record(Layer::kTransport, Kind::kMessageDuplicate, subject.str(),
                detail.str());
    return fault;
  }
  band += plan_.message_delay_prob;
  if (u < band) {
    fault.delay = plan_.message_delay;
    log_.record(Layer::kTransport, Kind::kMessageDelay, subject.str(),
                detail.str());
  }
  return fault;
}

FlowFault FaultInjector::on_flow(int src, int dst, std::uint64_t bytes) {
  FlowFault fault;
  if (plan_.link_degrade_prob <= 0.0 && plan_.link_stall_prob <= 0.0) {
    return fault;
  }
  const auto a = static_cast<std::uint64_t>(src);
  const auto b = static_cast<std::uint64_t>(dst);
  const std::uint64_t seq = next_sequence(kSiteFlow, a, b);
  const double u = draw(kSiteFlow, a, b, seq);

  std::ostringstream subject;
  subject << "flow " << src << "->" << dst;
  std::ostringstream detail;
  detail << "seq " << seq << ", " << bytes << " B";

  if (u < plan_.link_degrade_prob) {
    fault.rate_factor = plan_.link_degrade_factor;
    log_.record(Layer::kTransport, Kind::kLinkDegrade, subject.str(),
                detail.str());
  } else if (u < plan_.link_degrade_prob + plan_.link_stall_prob) {
    fault.stall = plan_.link_stall;
    log_.record(Layer::kTransport, Kind::kLinkStall, subject.str(),
                detail.str());
  }
  return fault;
}

std::optional<std::uint64_t> FaultInjector::crash_tick(TaskKind kind,
                                                       int task_id,
                                                       int attempt) {
  for (const auto& scripted : plan_.scripted_crashes) {
    if (scripted.task == kind && scripted.task_id == task_id &&
        scripted.attempt == attempt) {
      return scripted.after_ticks;
    }
  }
  const double p = kind == TaskKind::kMap ? plan_.map_crash_prob
                                          : plan_.reduce_crash_prob;
  if (p <= 0.0 || attempt >= plan_.max_injected_attempts) return std::nullopt;
  // Pure function of the attempt identity: no sequence counter needed, and
  // re-querying the same attempt returns the same schedule.
  const auto a = static_cast<std::uint64_t>(task_id) * 2 +
                 (kind == TaskKind::kMap ? 0 : 1);
  const auto b = static_cast<std::uint64_t>(attempt);
  if (draw(kSiteCrash, a, b, 0) >= p) return std::nullopt;
  const std::uint64_t range = std::max<std::uint64_t>(plan_.crash_tick_range, 1);
  return 1 + raw_draw(kSiteCrash, a, b, 1) % range;
}

std::chrono::nanoseconds FaultInjector::straggle_delay(TaskKind kind,
                                                       int task_id,
                                                       int attempt) {
  if (plan_.straggler_prob <= 0.0 || attempt >= plan_.max_injected_attempts) {
    return std::chrono::nanoseconds{0};
  }
  const auto a = static_cast<std::uint64_t>(task_id) * 2 +
                 (kind == TaskKind::kMap ? 0 : 1);
  const auto b = static_cast<std::uint64_t>(attempt);
  if (draw(kSiteStraggle, a, b, 0) >= plan_.straggler_prob) {
    return std::chrono::nanoseconds{0};
  }
  log_.record(Layer::kTask, Kind::kTaskStraggle,
              task_subject(kind, task_id, attempt));
  return plan_.straggle;
}

HeartbeatFault FaultInjector::on_heartbeat(int tracker_id) {
  HeartbeatFault fault;
  const double p_any = plan_.heartbeat_drop_prob + plan_.heartbeat_delay_prob;
  if (p_any <= 0.0) return fault;
  const auto a = static_cast<std::uint64_t>(tracker_id);
  const std::uint64_t seq = next_sequence(kSiteHeartbeat, a, 0);
  const double u = draw(kSiteHeartbeat, a, 0, seq);
  std::ostringstream subject;
  subject << "tracker:" << tracker_id;
  std::ostringstream detail;
  detail << "seq " << seq;
  if (u < plan_.heartbeat_drop_prob) {
    fault.drop = true;
    log_.record(Layer::kControl, Kind::kHeartbeatDrop, subject.str(),
                detail.str());
  } else if (u < p_any) {
    fault.delay = plan_.heartbeat_delay;
    log_.record(Layer::kControl, Kind::kHeartbeatDelay, subject.str(),
                detail.str());
  }
  return fault;
}

bool FaultInjector::fail_fetch(int map_id, int reduce_id) {
  if (plan_.fetch_error_prob <= 0.0) return false;
  const auto a = static_cast<std::uint64_t>(map_id);
  const auto b = static_cast<std::uint64_t>(reduce_id);
  const std::uint64_t seq = next_sequence(kSiteFetch, a, b);
  if (draw(kSiteFetch, a, b, seq) >= plan_.fetch_error_prob) return false;
  std::ostringstream subject;
  subject << "segment " << map_id << "->" << reduce_id;
  std::ostringstream detail;
  detail << "attempt " << seq;
  log_.record(Layer::kControl, Kind::kFetchError, subject.str(), detail.str());
  return true;
}

void FaultInjector::note(Kind kind, std::string subject, std::string detail) {
  log_.record(layer_of(kind), kind, std::move(subject), std::move(detail));
}

void FaultInjector::record_recovery(Kind kind, std::string subject,
                                    std::string detail) {
  log_.record(Layer::kRecovery, kind, std::move(subject), std::move(detail));
}

}  // namespace mpid::fault
