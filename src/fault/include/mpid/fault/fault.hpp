// mpid::fault — seeded, fully deterministic fault injection.
//
// The paper's central trade-off is that Hadoop pays its communication tax
// partly to buy task-level fault tolerance, while MPI-D wins the shuffle
// but "leaves fault tolerance as an open issue" (Section VI). This
// subsystem lets the repo *measure* that trade-off: a FaultPlan describes
// fault rates and scripted failures at three layers —
//
//   transport      message drop / duplication / delay / corruption on the
//                  minimpi send path; link degradation and stalls on
//                  net::Fabric flows
//   task           mapper/reducer crashes mid-task, straggler slowdowns
//   control plane  dropped or late RPC heartbeats, HTTP shuffle-fetch
//                  errors
//
// — and a FaultInjector turns the plan into concrete decisions. Every
// decision is a pure function of (seed, site identity, per-site sequence
// number): two injectors built from the same plan and asked the same
// questions return the same answers and produce the same FaultLog, no
// matter how threads interleave, because each (site, entity) keeps its own
// counter. Recovery actions (task re-execution, frame retransmission,
// speculative launches, fetch retries) are recorded in the same log so a
// run's full fault/recovery history is one structured artifact.
//
// The injector never touches a layer by itself: minimpi, net::Fabric,
// hrpc, MiniHadoop and MPI-D each consult it through narrow hooks and stay
// buildable without it. Injection is compiled in but entirely inert until
// a plan with nonzero rates (or scripted crashes) is installed.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mpid::fault {

// ---------------------------------------------------------------- kinds --

enum class Layer { kTransport, kTask, kControl, kRecovery };

enum class Kind {
  // injected faults
  kMessageDrop,
  kMessageDuplicate,
  kMessageDelay,
  kMessageCorrupt,
  kLinkDegrade,
  kLinkStall,
  kTaskCrash,
  kTaskStraggle,
  kHeartbeatDrop,
  kHeartbeatDelay,
  kFetchError,
  // recovery actions (recorded by the runtimes, never injected)
  kRetransmit,        // mapper re-sent frames after a NACK
  kRepull,            // restarted reducer asked mappers to re-send a lane
  kTaskReexec,        // a crashed/lost task attempt was re-queued / re-run
  kSpeculativeLaunch, // duplicate attempt launched for a straggler
  kFetchRetry,        // shuffle fetch retried after an error/timeout
  kLostTracker,       // jobtracker declared a tasktracker dead
  kCorruptDetected,   // receiver dropped a checksum-failing frame
  kDuplicateDetected, // receiver dropped an already-seen frame
};

const char* kind_name(Kind kind) noexcept;
Layer layer_of(Kind kind) noexcept;

enum class TaskKind { kMap, kReduce };

// ----------------------------------------------------------------- plan --

/// A crash scheduled by hand: attempt `attempt` of the given task dies
/// after `after_ticks` units of progress (records mapped / frames
/// received — whatever the call site counts). Scripted entries override
/// the probabilistic crash draw for their (task, id, attempt).
struct ScriptedCrash {
  TaskKind task = TaskKind::kMap;
  int task_id = 0;
  int attempt = 0;
  std::uint64_t after_ticks = 1;
};

/// The declarative fault schedule. All probabilities are per-event and in
/// [0, 1]; everything defaults to "no faults".
struct FaultPlan {
  std::uint64_t seed = 1;

  // --- transport: per message on registered (context, tag) scopes ---
  double message_drop_prob = 0.0;
  double message_duplicate_prob = 0.0;
  double message_corrupt_prob = 0.0;
  double message_delay_prob = 0.0;
  std::chrono::nanoseconds message_delay = std::chrono::microseconds(200);

  // --- transport: net::Fabric flows ---
  double link_degrade_prob = 0.0;
  double link_degrade_factor = 0.25;  // surviving fraction of the flow rate
  double link_stall_prob = 0.0;
  std::chrono::nanoseconds link_stall = std::chrono::milliseconds(5);

  // --- task layer ---
  double map_crash_prob = 0.0;
  double reduce_crash_prob = 0.0;
  /// A probabilistic crash fires after a tick drawn uniformly from
  /// [1, crash_tick_range].
  std::uint64_t crash_tick_range = 64;
  /// Probabilistic crashes and straggles only hit attempts below this, so
  /// re-executions eventually succeed (Hadoop's attempt semantics).
  int max_injected_attempts = 1;
  double straggler_prob = 0.0;
  std::chrono::nanoseconds straggle = std::chrono::milliseconds(20);
  std::vector<ScriptedCrash> scripted_crashes;

  // --- control plane ---
  double heartbeat_drop_prob = 0.0;
  double heartbeat_delay_prob = 0.0;
  std::chrono::nanoseconds heartbeat_delay = std::chrono::milliseconds(5);
  double fetch_error_prob = 0.0;
};

// ------------------------------------------------------------------ log --

struct LogEntry {
  std::uint64_t id = 0;  // arrival order in this log
  Layer layer = Layer::kTransport;
  Kind kind = Kind::kMessageDrop;
  std::string subject;  // "msg 1->5", "map:3#0", "tracker:2", ...
  std::string detail;
};

/// Thread-safe structured record of every injected fault and recovery
/// action. Arrival order depends on thread interleaving; canonical() gives
/// a schedule-independent rendering for determinism comparisons.
class FaultLog {
 public:
  void record(Layer layer, Kind kind, std::string subject,
              std::string detail = {});
  std::vector<LogEntry> entries() const;
  std::uint64_t count(Kind kind) const;
  std::uint64_t total() const;
  /// Sorted "<kind> <subject> <detail>" lines: equal across runs whenever
  /// the same multiset of events occurred.
  std::vector<std::string> canonical() const;

 private:
  mutable std::mutex mu_;
  std::vector<LogEntry> entries_;
  std::map<Kind, std::uint64_t> counts_;
};

// ------------------------------------------------------------ decisions --

/// What the transport should do with one message. At most one of
/// drop/duplicate/corrupt is set (a single uniform draw is banded).
struct MessageFault {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::size_t corrupt_offset = 0;   // payload byte to damage
  std::byte corrupt_mask{0x01};     // XORed into that byte
  std::chrono::nanoseconds delay{0};

  bool any() const noexcept {
    return drop || duplicate || corrupt || delay.count() > 0;
  }
};

/// What the fabric should do with one flow.
struct FlowFault {
  double rate_factor = 1.0;  // <1 degrades the flow's achievable rate
  std::chrono::nanoseconds stall{0};
};

/// A heartbeat's fate on the control plane.
struct HeartbeatFault {
  bool drop = false;
  std::chrono::nanoseconds delay{0};
};

/// Thrown by an instrumented task when its scheduled crash tick fires;
/// runtimes catch it and run their recovery path.
struct TaskCrash : std::runtime_error {
  TaskCrash(TaskKind task_kind, int id, int attempt_no);
  TaskKind task;
  int task_id;
  int attempt;
};

// ------------------------------------------------------------- injector --

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }
  FaultLog& log() noexcept { return log_; }
  const FaultLog& log() const noexcept { return log_; }

  // --- transport ---

  /// Restricts message faults to the given (context, tag); unregistered
  /// traffic always passes clean. MPI-D registers only its data channel so
  /// control, EOS/SEAL and collective messages stay reliable.
  void add_transport_scope(std::uint64_t context, int tag);
  bool in_scope(std::uint64_t context, int tag) const;

  /// Decides the fate of one message. Deterministic per (src, dst) lane:
  /// the n-th in-scope message on a lane always gets the same fate.
  MessageFault on_message(std::uint64_t context, int src, int dst, int tag,
                          std::size_t bytes);

  /// Decides degradation/stall for one fabric flow, per (src, dst) lane.
  FlowFault on_flow(int src, int dst, std::uint64_t bytes);

  // --- task layer ---

  /// Decides, once per task attempt, whether and when it crashes: returns
  /// the progress tick at which the attempt must throw TaskCrash, or
  /// nullopt for a clean run. Scripted crashes win over the probabilistic
  /// draw; draws only hit attempts < max_injected_attempts. Logs nothing —
  /// the call site records kTaskCrash when the crash actually fires.
  std::optional<std::uint64_t> crash_tick(TaskKind kind, int task_id,
                                          int attempt);

  /// Extra wall-clock this attempt must burn to act as a straggler (zero
  /// for most). Only attempts < max_injected_attempts straggle, so a
  /// speculative duplicate runs at full speed.
  std::chrono::nanoseconds straggle_delay(TaskKind kind, int task_id,
                                          int attempt);

  // --- control plane ---

  /// Fate of one heartbeat from the given tracker (per-tracker sequence).
  HeartbeatFault on_heartbeat(int tracker_id);

  /// Whether the n-th fetch of (map, reduce) segment fails (per-pair
  /// sequence, so a retry of the same segment gets a fresh draw).
  bool fail_fetch(int map_id, int reduce_id);

  // --- logging ---

  /// Records an injected fault that fired at a call site (e.g. the crash
  /// scheduled by crash_tick actually throwing).
  void note(Kind kind, std::string subject, std::string detail = {});
  /// Records a recovery action under Layer::kRecovery.
  void record_recovery(Kind kind, std::string subject,
                       std::string detail = {});

 private:
  /// Uniform double in [0, 1), a pure function of
  /// (seed, site, a, b, sequence).
  double draw(std::uint64_t site, std::uint64_t a, std::uint64_t b,
              std::uint64_t sequence) const noexcept;
  std::uint64_t raw_draw(std::uint64_t site, std::uint64_t a, std::uint64_t b,
                         std::uint64_t sequence) const noexcept;
  std::uint64_t next_sequence(std::uint64_t site, std::uint64_t a,
                              std::uint64_t b);

  FaultPlan plan_;
  FaultLog log_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> sequences_;  // per-(site,a,b) counters
  std::vector<std::pair<std::uint64_t, int>> scopes_;
};

}  // namespace mpid::fault
