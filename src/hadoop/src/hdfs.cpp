#include "mpid/hadoop/hdfs.hpp"

#include <stdexcept>

namespace mpid::hadoop {

Hdfs::Hdfs(const ClusterSpec& cluster, std::uint64_t input_bytes) {
  if (cluster.workers() < 1) {
    throw std::invalid_argument("Hdfs: need at least one worker node");
  }
  by_node_.resize(static_cast<std::size_t>(cluster.nodes));
  std::uint64_t remaining = input_bytes;
  int id = 0;
  while (remaining > 0) {
    Block b;
    b.id = id;
    b.node = 1 + (id % cluster.workers());
    b.bytes = std::min<std::uint64_t>(remaining, cluster.block_size_bytes);
    remaining -= b.bytes;
    by_node_[static_cast<std::size_t>(b.node)].push_back(id);
    blocks_.push_back(b);
    ++id;
  }
}

const std::vector<int>& Hdfs::blocks_on(int node) const {
  return by_node_.at(static_cast<std::size_t>(node));
}

}  // namespace mpid::hadoop
