#include "mpid/hadoop/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpid::hadoop {

namespace {

/// Control-plane message sizes (heartbeat request/response, map-completion
/// event polls). Charged as closed-form RPC delays: their bandwidth is
/// negligible, so they do not create fabric flows.
constexpr std::uint64_t kHeartbeatRequestBytes = 160;
constexpr std::uint64_t kHeartbeatResponseBytes = 120;
constexpr std::uint64_t kPollRequestBytes = 90;
constexpr std::uint64_t kPollResponseBytes = 200;

}  // namespace

Cluster::Run::Run(const JobSpec& j, const ClusterSpec& cluster,
                  sim::Engine& engine)
    : job(j), hdfs(cluster, j.input_bytes) {
  total_maps = static_cast<int>(hdfs.block_count());
  total_reduces = j.reduce_tasks;
  pending_local.resize(static_cast<std::size_t>(cluster.nodes));
  for (int n = 1; n < cluster.nodes; ++n) {
    for (int b : hdfs.blocks_on(n)) {
      pending_local[static_cast<std::size_t>(n)].push_back(b);
    }
  }
  pending_maps = total_maps;
  map_done.assign(static_cast<std::size_t>(total_maps), false);
  done = std::make_unique<sim::Event>(engine);
  result.maps.resize(static_cast<std::size_t>(total_maps));
  result.reduces.resize(static_cast<std::size_t>(total_reduces));
}

Cluster::Cluster(sim::Engine& engine, ClusterSpec spec)
    : engine_(engine),
      spec_(spec),
      fabric_(engine, spec.nodes, spec.network),
      rpc_(engine, fabric_),
      jetty_(engine, fabric_) {
  if (spec.nodes < 2) {
    throw std::invalid_argument("Cluster: need a master and >= 1 worker");
  }
  if (spec.map_slots < 1 || spec.reduce_slots < 1 ||
      spec.copier_threads < 1 || spec.http_server_threads < 1) {
    throw std::invalid_argument("Cluster: slot/thread counts must be >= 1");
  }
  nodes_.resize(static_cast<std::size_t>(spec.nodes));
  for (int n = 0; n < spec.nodes; ++n) {
    auto& node = nodes_[static_cast<std::size_t>(n)];
    net::FabricSpec disk_spec;
    disk_spec.loopback_bytes_per_second = spec.disk_rate_for(n);
    disk_spec.link_latency = sim::kTimeZero;
    node.disk = std::make_unique<net::Fabric>(engine_, 1, disk_spec);
    node.http_threads = std::make_unique<sim::Resource>(
        engine_, static_cast<std::uint64_t>(spec.http_server_threads));
  }
}

double Cluster::disk_seek_equivalent_bytes() const noexcept {
  return spec_.disk_seek.to_seconds() * spec_.disk_bytes_per_second;
}

sim::Time Cluster::heartbeat_rpc_cost() const {
  return rpc_.one_way_latency(kHeartbeatRequestBytes) +
         rpc_.one_way_latency(kHeartbeatResponseBytes);
}

sim::Time Cluster::poll_rpc_cost() const {
  return rpc_.one_way_latency(kPollRequestBytes) +
         rpc_.one_way_latency(kPollResponseBytes);
}

int Cluster::take_map_for(Run& run, int node, bool& local) {
  auto& mine = run.pending_local[static_cast<std::size_t>(node)];
  if (!mine.empty()) {
    const int block = mine.front();
    mine.pop_front();
    --run.pending_maps;
    local = true;
    return block;
  }
  // End-game stealing: take from the most loaded node.
  int best_node = -1;
  std::size_t best_size = 0;
  for (int n = 1; n < spec_.nodes; ++n) {
    const auto size = run.pending_local[static_cast<std::size_t>(n)].size();
    if (size > best_size) {
      best_size = size;
      best_node = n;
    }
  }
  if (best_node < 0) return -1;
  auto& theirs = run.pending_local[static_cast<std::size_t>(best_node)];
  const int block = theirs.front();
  theirs.pop_front();
  --run.pending_maps;
  local = false;
  return block;
}

int Cluster::take_speculative_map(Run& run, int node) {
  if (!spec_.speculative_execution) return -1;
  const double mean_seconds =
      run.maps_completed > 0
          ? run.completed_map_seconds / run.maps_completed
          : spec_.speculative_floor.to_seconds();
  const sim::Time threshold =
      std::max(spec_.speculative_floor,
               sim::from_seconds(mean_seconds * spec_.speculative_slowness));
  // Duplicate the longest-running candidate not already speculated and
  // not running here (a local re-run would hit the same slow disk).
  int best = -1;
  sim::Time best_started = sim::kTimeMax;
  for (auto& [block, attempt] : run.running_maps) {
    if (attempt.speculated || attempt.node == node) continue;
    if (engine_.now() - attempt.started < threshold) continue;
    if (attempt.started < best_started) {
      best_started = attempt.started;
      best = block;
    }
  }
  if (best >= 0) run.running_maps[best].speculated = true;
  return best;
}

bool Cluster::reduces_ready(const Run& run) const {
  if (run.total_maps == 0) return true;
  return run.maps_completed >=
         static_cast<int>(spec_.reduce_slowstart *
                          static_cast<double>(run.total_maps));
}

sim::Task<> Cluster::job_bootstrap(Run& run) {
  co_await engine_.delay(spec_.job_setup);
  run.accepting = true;
}

sim::Task<> Cluster::tasktracker(Run& run, int node) {
  // Stagger heartbeats across trackers as real clusters do.
  co_await engine_.delay(
      sim::Time{spec_.heartbeat_interval.ns * node / spec_.nodes});
  auto& state = nodes_[static_cast<std::size_t>(node)];
  while (!run.done->is_set()) {
    co_await engine_.delay(spec_.heartbeat_interval);
    if (run.done->is_set()) break;
    if (!run.accepting) continue;
    co_await engine_.delay(heartbeat_rpc_cost());

    for (int k = 0; k < spec_.tasks_assigned_per_heartbeat; ++k) {
      if (state.busy_map_slots >= spec_.map_slots) break;
      if (run.pending_maps > 0) {
        bool local = true;
        const int block = take_map_for(run, node, local);
        if (block < 0) break;
        ++state.busy_map_slots;
        engine_.spawn(map_task(run, node, block, local, false));
      } else {
        // End-game: duplicate a straggling attempt (speculation).
        const int block = take_speculative_map(run, node);
        if (block < 0) break;
        ++state.busy_map_slots;
        engine_.spawn(map_task(run, node, block, false, true));
      }
    }
    if (reduces_ready(run) && state.busy_reduce_slots < spec_.reduce_slots &&
        run.next_reduce_id < run.total_reduces) {
      ++state.busy_reduce_slots;
      engine_.spawn(reduce_task(run, node, run.next_reduce_id++));
    }
  }
}

sim::Task<> Cluster::map_task(Run& run, int node, int block_id, bool local,
                              bool speculative) {
  const Block& block = run.hdfs.blocks()[static_cast<std::size_t>(block_id)];
  const sim::Time attempt_start = engine_.now();
  auto& state = nodes_[static_cast<std::size_t>(node)];
  if (!speculative) {
    run.running_maps[block_id] = RunningMap{attempt_start, node, false};
  }

  co_await engine_.delay(spec_.jvm_startup);

  // Input: local read, or remote replica + network for a stolen or
  // speculative attempt. HDFS keeps replicas on other nodes; a remote
  // reader picks one that is not the (possibly slow) primary.
  if (local) {
    co_await state.disk->transfer(0, 0, block.bytes);
  } else {
    const int replica = 1 + block.node % spec_.workers();
    co_await nodes_[static_cast<std::size_t>(replica)].disk->transfer(
        0, 0, block.bytes);
    co_await fabric_.transfer(replica, node, block.bytes);
  }

  // Map function + spill writes of the combined intermediate output.
  // With mapred.compress.map.output the spill is encoded first (charged
  // as task CPU) and only the wire bytes reach the disk — the served
  // segments stay compressed until the reducer fetches them.
  co_await engine_.delay(sim::from_seconds(
      static_cast<double>(block.bytes) / run.job.map_cpu_bytes_per_second));
  const double raw_intermediate =
      static_cast<double>(block.bytes) * run.job.map_output_ratio;
  if (run.job.compress_map_output) {
    co_await engine_.delay(sim::from_seconds(
        raw_intermediate / run.job.compress_bytes_per_second));
  }
  const double intermediate = raw_intermediate * run.job.wire_ratio();
  co_await state.disk->transfer(0, 0,
                                static_cast<std::uint64_t>(intermediate));

  --state.busy_map_slots;
  // First copy wins; a late (original or speculative) duplicate just
  // releases its slot, its output unused.
  if (run.map_done[static_cast<std::size_t>(block_id)]) co_return;
  run.map_done[static_cast<std::size_t>(block_id)] = true;
  run.running_maps.erase(block_id);

  // Publish the output for shuffle serving from this node.
  state.served_outputs.push_back(
      {block_id, run.total_reduces > 0
                     ? intermediate / static_cast<double>(run.total_reduces)
                     : 0.0});
  auto& timing = run.result.maps[static_cast<std::size_t>(block_id)];
  timing.scheduled = attempt_start;
  timing.node = node;
  timing.data_local = local;
  timing.finished = engine_.now();
  run.completed_map_seconds += timing.total_seconds();
  ++run.maps_completed;
  if (run.total_reduces == 0 && run.maps_completed == run.total_maps) {
    run.result.makespan = engine_.now() - run.submitted;
    run.done->set();
  }
}

sim::Task<> Cluster::fetch_batch(Run& run, int reduce_id, int serving_node,
                                 int node, int segments, double bytes,
                                 sim::Resource& copiers,
                                 sim::Channel<int>& completions) {
  (void)reduce_id;
  co_await copiers.acquire();
  sim::Lease copier(copiers, 1);
  auto& server = nodes_[static_cast<std::size_t>(serving_node)];
  co_await server.http_threads->acquire();
  sim::Lease server_thread(*server.http_threads, 1);

  // Serving side: one seek per segment plus the sequential read, sharing
  // the node's disk with everything else running there.
  const double disk_bytes =
      bytes + static_cast<double>(segments) * disk_seek_equivalent_bytes();
  co_await server.disk->transfer(0, 0,
                                 static_cast<std::uint64_t>(disk_bytes));

  // HTTP request overhead per segment, then the batched body over the
  // shared fabric, capped at Jetty's effective streaming rate.
  co_await engine_.delay(jetty_.params().request_overhead * segments);
  const std::uint64_t wire_bytes =
      static_cast<std::uint64_t>(bytes) +
      static_cast<std::uint64_t>(segments) * jetty_.params().header_bytes;
  co_await fabric_.transfer(serving_node, node, wire_bytes,
                            jetty_.params().effective_bytes_per_second);
  server_thread.reset();

  // Compressed segments are decoded by the copier thread as the body
  // lands (Hadoop's in-memory shuffle decompresses on fetch), so the
  // decode overlaps other copiers but still occupies this one.
  if (run.job.compress_map_output) {
    co_await engine_.delay(sim::from_seconds(
        bytes * run.job.shuffle_compression_ratio /
        run.job.decompress_bytes_per_second));
  }
  copier.reset();
  co_await completions.send(segments);
}

sim::Task<> Cluster::reduce_task(Run& run, int node, int reduce_id) {
  auto& timing = run.result.reduces[static_cast<std::size_t>(reduce_id)];
  timing.scheduled = engine_.now();
  auto& state = nodes_[static_cast<std::size_t>(node)];

  co_await engine_.delay(spec_.jvm_startup);

  // ---- copy stage: fetch one segment per map task, batched per node ----
  sim::Resource copiers(engine_,
                        static_cast<std::uint64_t>(spec_.copier_threads));
  sim::Channel<int> completions(engine_);
  std::vector<std::size_t> consumed(static_cast<std::size_t>(spec_.nodes), 0);
  int fetched = 0;
  int claimed = 0;
  double input_bytes = 0;
  while (fetched < run.total_maps) {
    // Claim every newly published map output, batched per serving node.
    for (int w = 1; w < spec_.nodes; ++w) {
      auto& outputs = nodes_[static_cast<std::size_t>(w)].served_outputs;
      auto& done_idx = consumed[static_cast<std::size_t>(w)];
      if (done_idx >= outputs.size()) continue;
      const int segments = static_cast<int>(outputs.size() - done_idx);
      double bytes = 0;
      for (std::size_t i = done_idx; i < outputs.size(); ++i) {
        bytes += outputs[i].bytes_per_reducer;
      }
      done_idx = outputs.size();
      claimed += segments;
      input_bytes += bytes;
      engine_.spawn(fetch_batch(run, reduce_id, w, node, segments, bytes,
                                copiers, completions));
    }
    if (fetched < claimed) {
      fetched += co_await completions.recv();
    } else {
      // Nothing in flight: wait for more maps to finish (polling the
      // jobtracker for completion events, a small RPC). This idle time is
      // part of Hadoop's logged copy stage but is not communication.
      const sim::Time wait_start = engine_.now();
      co_await engine_.delay(spec_.map_event_poll + poll_rpc_cost());
      timing.copy_wait += engine_.now() - wait_start;
    }
  }
  timing.copy_end = engine_.now();
  timing.shuffled_bytes = input_bytes;

  // ---- sort stage: 0.20 only finalizes merge state here ----------------
  co_await engine_.delay(spec_.sort_stage);
  timing.sort_end = engine_.now();

  // ---- reduce stage: user reduce + output write -------------------------
  // The output write goes through the page cache (asynchronous writeback),
  // so it costs task time but does not contend with shuffle serving.
  // input_bytes counted wire bytes; reduce() runs over the decoded volume.
  const double raw_input =
      run.job.compress_map_output
          ? input_bytes * run.job.shuffle_compression_ratio
          : input_bytes;
  const double output = raw_input * run.job.reduce_output_ratio;
  co_await engine_.delay(sim::from_seconds(
      raw_input / run.job.reduce_cpu_bytes_per_second +
      output / spec_.output_write_bytes_per_second));
  timing.finished = engine_.now();

  --state.busy_reduce_slots;
  if (++run.reduces_done == run.total_reduces) {
    run.result.makespan = engine_.now() - run.submitted;
    run.done->set();
  }
}

JobResult Cluster::run(const JobSpec& job) {
  if (job.reduce_tasks < 0) {
    throw std::invalid_argument("Cluster::run: negative reduce count");
  }
  // Fresh shuffle state between jobs.
  for (auto& node : nodes_) {
    node.served_outputs.clear();
  }

  Run run(job, spec_, engine_);
  run.submitted = engine_.now();
  if (run.total_maps == 0 && run.total_reduces == 0) {
    run.result.makespan = spec_.job_setup;
    return std::move(run.result);
  }
  engine_.spawn(job_bootstrap(run));
  for (int n = 1; n < spec_.nodes; ++n) {
    engine_.spawn(tasktracker(run, n));
  }
  engine_.run();
  if (!run.done->is_set()) {
    throw std::runtime_error("Cluster::run: job did not complete (deadlock)");
  }
  return std::move(run.result);
}

}  // namespace mpid::hadoop
