#include "mpid/hadoop/spec.hpp"

namespace mpid::hadoop {

double JobResult::total_map_seconds() const noexcept {
  double total = 0;
  for (const auto& m : maps) total += m.total_seconds();
  return total;
}

double JobResult::total_reduce_seconds() const noexcept {
  double total = 0;
  for (const auto& r : reduces) total += r.total_seconds();
  return total;
}

double JobResult::total_copy_seconds() const noexcept {
  double total = 0;
  for (const auto& r : reduces) total += r.copy_seconds();
  return total;
}

double JobResult::total_copy_wait_seconds() const noexcept {
  double total = 0;
  for (const auto& r : reduces) total += r.copy_wait_seconds();
  return total;
}

double JobResult::total_shuffled_bytes() const noexcept {
  double total = 0;
  for (const auto& r : reduces) total += r.shuffled_bytes;
  return total;
}

double JobResult::copy_fraction() const noexcept {
  const double denom = total_map_seconds() + total_reduce_seconds();
  return denom > 0 ? total_copy_seconds() / denom : 0.0;
}

double JobResult::copy_transfer_fraction() const noexcept {
  const double denom = total_map_seconds() + total_reduce_seconds();
  return denom > 0
             ? (total_copy_seconds() - total_copy_wait_seconds()) / denom
             : 0.0;
}

}  // namespace mpid::hadoop
