// Minimal HDFS model: a namenode block map with round-robin placement
// across worker nodes.
//
// The paper distributes input "across all nodes to guarantee the data
// accessing locally", so placement is balanced and map scheduling is
// almost always data-local; the model still records locality so the
// scheduler can fall back to remote reads when a node runs out of local
// blocks (end-game stealing).
#pragma once

#include <cstdint>
#include <vector>

#include "mpid/hadoop/spec.hpp"

namespace mpid::hadoop {

struct Block {
  int id = 0;
  int node = 0;  // primary replica location (worker node index, 1-based)
  std::uint64_t bytes = 0;
};

class Hdfs {
 public:
  /// Splits `input_bytes` into blocks of at most `block_size`, placing
  /// block i on worker 1 + (i % workers). The final block holds the tail.
  Hdfs(const ClusterSpec& cluster, std::uint64_t input_bytes);

  const std::vector<Block>& blocks() const noexcept { return blocks_; }
  std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Block ids whose primary replica lives on `node`.
  const std::vector<int>& blocks_on(int node) const;

 private:
  std::vector<Block> blocks_;
  std::vector<std::vector<int>> by_node_;  // indexed by node id
};

}  // namespace mpid::hadoop
