// Specifications and results of the Hadoop-0.20 cluster simulator.
//
// The cluster model mirrors the paper's testbed: 8 nodes (node 0 runs the
// namenode + jobtracker master, nodes 1..7 are workers) on one Gigabit
// Ethernet switch, Hadoop 0.20.2 defaults for heartbeat-driven task
// scheduling, per-task JVMs, HTTP-over-Jetty shuffle with 5 parallel
// copier threads per reduce task, and hash partitioning.
#pragma once

#include <cstdint>
#include <vector>

#include "mpid/net/fabric.hpp"
#include "mpid/sim/time.hpp"

namespace mpid::hadoop {

struct ClusterSpec {
  /// Total nodes including the master (node 0).
  int nodes = 8;

  /// The interconnect (defaults to the paper's Gigabit Ethernet). Swap in
  /// proto::ten_gigabit_ethernet().fabric etc. to ask the Sur et al.
  /// question: how much does a faster wire help Hadoop's shuffle?
  net::FabricSpec network;
  /// Concurrent map / reduce task slots per worker ("max map/reduce number
  /// in each tasktracker" — the Table I configuration axis).
  int map_slots = 8;
  int reduce_slots = 8;

  /// HDFS block size; one map task per block (paper: 64 MB default).
  std::uint64_t block_size_bytes = 64ull * 1024 * 1024;

  /// Per-node disk characteristics (one spindle per node, shared by all
  /// tasks and by shuffle serving).
  double disk_bytes_per_second = 90.0e6;
  sim::Time disk_seek = sim::milliseconds(8);

  /// Hadoop 0.20 scheduling behaviour.
  sim::Time heartbeat_interval = sim::seconds(3);
  int tasks_assigned_per_heartbeat = 1;  // one map + one reduce per beat
  /// Fraction of maps that must complete before reduces are scheduled
  /// (mapred.reduce.slowstart.completed.maps; 0.20 default 0.05).
  double reduce_slowstart = 0.05;
  /// Reducers poll for newly completed map outputs at this period.
  sim::Time map_event_poll = sim::seconds(2);

  /// Per-task JVM fork+init (0.20 has no JVM reuse by default).
  sim::Time jvm_startup = sim::milliseconds(1200);
  /// One-time job overhead: submission, split computation, staging.
  sim::Time job_setup = sim::seconds(12);

  /// Shuffle serving: tasktracker.http.threads per node, and parallel
  /// copier threads per reduce task (mapred.reduce.parallel.copies).
  int http_server_threads = 40;
  int copier_threads = 5;

  /// The "sort" stage of 0.20 reducers only finalizes merge state (the
  /// paper measures it at ~0.01 s).
  sim::Time sort_stage = sim::milliseconds(10);

  /// Reduce output lands in the page cache and is written back
  /// asynchronously; it is charged at this rate as task time but does not
  /// contend for the disk synchronously.
  double output_write_bytes_per_second = 500.0e6;

  /// Per-node disk speed multipliers for heterogeneity / straggler
  /// studies (indexed by node id; empty = all 1.0). A 0.3 entry models a
  /// failing or aged spindle on that node.
  std::vector<double> disk_rate_multiplier;

  /// Speculative execution of map tasks (0.20 enables it by default; the
  /// calibrated benches run without it because the paper's workloads are
  /// uniform, where it only wastes end-game slots). When a tasktracker
  /// has a free map slot and no pending work, it re-runs a long-running
  /// map from another node; the first copy to finish wins.
  bool speculative_execution = false;
  /// A running map becomes a speculation candidate after
  /// max(this floor, speculative_slowness x the mean completed map time).
  sim::Time speculative_floor = sim::seconds(30);
  double speculative_slowness = 1.5;

  double disk_rate_for(int node) const noexcept {
    const auto i = static_cast<std::size_t>(node);
    const double mult =
        i < disk_rate_multiplier.size() ? disk_rate_multiplier[i] : 1.0;
    return disk_bytes_per_second * mult;
  }

  int workers() const noexcept { return nodes - 1; }
};

/// Per-job workload cost model. Rates are per-task (single slot).
struct JobSpec {
  std::uint64_t input_bytes = 0;
  /// Number of reduce tasks (GridMix JavaSort uses ~one per map; Hadoop
  /// WordCount defaults to 1).
  int reduce_tasks = 1;

  /// Map function processing rate (Java tokenize/sort path).
  double map_cpu_bytes_per_second = 2.3e6;
  /// Intermediate bytes produced per input byte *after* the map-side
  /// combiner (1.0 for sort; ~0.1 for WordCount on Zipf text).
  double map_output_ratio = 1.0;
  /// Reduce function processing rate over its fetched input.
  double reduce_cpu_bytes_per_second = 10.0e6;
  /// Job output bytes per reduce-input byte.
  double reduce_output_ratio = 1.0;

  /// mapred.compress.map.output model (the knob the functional runtimes
  /// expose as shuffle_compression): map tasks encode their intermediate
  /// spill before writing it, so both the serving disk and the fabric
  /// carry wire bytes = raw / shuffle_compression_ratio; reducers decode
  /// on fetch. The ratio is a data property — measure it with the real
  /// codec (bench/codec_sample.hpp) for the workload being modeled. The
  /// codec rates are per-task-CPU properties of the Java codec stack,
  /// deliberately slower than the C++ rates micro_codec measures.
  bool compress_map_output = false;
  double shuffle_compression_ratio = 3.0;
  double compress_bytes_per_second = 150.0e6;
  double decompress_bytes_per_second = 300.0e6;

  /// Wire bytes per raw intermediate byte under the current settings.
  double wire_ratio() const noexcept {
    return compress_map_output ? 1.0 / shuffle_compression_ratio : 1.0;
  }

  int map_tasks_for(const ClusterSpec& cluster) const noexcept {
    return static_cast<int>((input_bytes + cluster.block_size_bytes - 1) /
                            cluster.block_size_bytes);
  }
};

/// Timing of one reduce task, decomposed as Hadoop's logs do (Figure 1).
struct ReduceTaskTiming {
  sim::Time scheduled;   // slot granted (before JVM start)
  sim::Time copy_end;    // last map-output segment fetched
  sim::Time sort_end;    // merge finalization done
  sim::Time finished;    // reduce() + output write done

  /// Bytes actually fetched during the copy stage.
  double shuffled_bytes = 0;
  /// Time inside the copy stage spent with nothing in flight, waiting for
  /// more maps to finish. Hadoop's copy timer includes this — the paper's
  /// caveat that "not all of the time in copy stage is caused by RPC or
  /// Jetty", made measurable.
  sim::Time copy_wait;

  double copy_seconds() const noexcept {
    return (copy_end - scheduled).to_seconds();
  }
  double copy_wait_seconds() const noexcept { return copy_wait.to_seconds(); }
  /// The copy time actually attributable to fetching.
  double copy_transfer_seconds() const noexcept {
    return copy_seconds() - copy_wait_seconds();
  }
  double sort_seconds() const noexcept {
    return (sort_end - copy_end).to_seconds();
  }
  double reduce_seconds() const noexcept {
    return (finished - sort_end).to_seconds();
  }
  double total_seconds() const noexcept {
    return (finished - scheduled).to_seconds();
  }
};

struct MapTaskTiming {
  sim::Time scheduled;
  sim::Time finished;
  int node = 0;
  bool data_local = true;

  double total_seconds() const noexcept {
    return (finished - scheduled).to_seconds();
  }
};

struct JobResult {
  sim::Time makespan;  // submission to last reduce completion
  std::vector<MapTaskTiming> maps;
  std::vector<ReduceTaskTiming> reduces;

  double total_map_seconds() const noexcept;
  double total_reduce_seconds() const noexcept;
  double total_copy_seconds() const noexcept;
  double total_copy_wait_seconds() const noexcept;
  double total_shuffled_bytes() const noexcept;
  /// Table I metric: sum of copy-stage time over the sum of all mapper and
  /// reducer task execution time.
  double copy_fraction() const noexcept;
  /// As copy_fraction, but counting only transfer time (copy minus the
  /// waiting-for-maps component).
  double copy_transfer_fraction() const noexcept;
};

}  // namespace mpid::hadoop
