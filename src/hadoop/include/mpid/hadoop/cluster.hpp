// The Hadoop-0.20 MapReduce execution model on the discrete-event engine.
//
// What is modelled (because it shapes the paper's measurements):
//  * heartbeat-driven task assignment (one map + one reduce per tasktracker
//    heartbeat, 3 s interval) — dominates small-job latency;
//  * per-task JVM startup and a one-time job setup cost;
//  * per-node disks shared (max-min) between map input reads, spill
//    writes, shuffle serving and reduce output writes;
//  * the shuffle: reduce-side copier threads fetch map-output segments
//    over HTTP/Jetty; the serving side pays a disk seek per segment plus
//    the read, under a bounded server thread pool; fan-in shares the
//    Gigabit fabric;
//  * reduce slowstart, reduce waves, and the copy/sort/reduce stage
//    decomposition that Hadoop logs (Figure 1's series).
//
// What is intentionally not modelled: speculative execution, failures,
// multi-job scheduling, rack topology (the testbed is one switch).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "mpid/hadoop/hdfs.hpp"
#include "mpid/hadoop/spec.hpp"
#include "mpid/net/fabric.hpp"
#include "mpid/proto/models.hpp"
#include "mpid/sim/channel.hpp"
#include "mpid/sim/engine.hpp"
#include "mpid/sim/event.hpp"
#include "mpid/sim/resource.hpp"

namespace mpid::hadoop {

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterSpec spec);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs one job to completion on the engine and returns its timings.
  /// Jobs run back-to-back on the same virtual timeline.
  JobResult run(const JobSpec& job);

  const ClusterSpec& spec() const noexcept { return spec_; }

 private:
  struct MapOutputSegment {
    int map_id;
    double bytes_per_reducer;
  };

  struct NodeState {
    std::unique_ptr<net::Fabric> disk;          // 1-host loopback fabric
    std::unique_ptr<sim::Resource> http_threads;
    int busy_map_slots = 0;
    int busy_reduce_slots = 0;
    std::vector<MapOutputSegment> served_outputs;  // completed map outputs
  };

  struct RunningMap {
    sim::Time started;
    int node = 0;
    bool speculated = false;  // a backup copy has been launched
  };

  struct Run {
    JobSpec job;
    Hdfs hdfs;
    int total_maps = 0;
    int total_reduces = 0;
    sim::Time submitted;
    bool accepting = false;  // set once job_setup has elapsed
    std::vector<std::deque<int>> pending_local;  // block ids per node
    int pending_maps = 0;
    int maps_completed = 0;
    int next_reduce_id = 0;
    int reduces_done = 0;
    std::vector<bool> map_done;             // first-copy-wins flags
    std::map<int, RunningMap> running_maps; // block id -> attempt info
    double completed_map_seconds = 0;       // for the slowness threshold
    std::unique_ptr<sim::Event> done;
    JobResult result;

    Run(const JobSpec& j, const ClusterSpec& cluster, sim::Engine& engine);
  };

  // Jobtracker policy (plain functions over shared state; the RPC cost of
  // a heartbeat is charged in the tasktracker coroutine).
  int take_map_for(Run& run, int node, bool& local);
  /// End-game speculation: picks a slow running map to duplicate on
  /// `node`, or -1.
  int take_speculative_map(Run& run, int node);
  bool reduces_ready(const Run& run) const;

  // Simulation processes.
  sim::Task<> job_bootstrap(Run& run);
  sim::Task<> tasktracker(Run& run, int node);
  sim::Task<> map_task(Run& run, int node, int block_id, bool local,
                       bool speculative);
  sim::Task<> reduce_task(Run& run, int node, int reduce_id);
  sim::Task<> fetch_batch(Run& run, int reduce_id, int serving_node,
                          int node, int segments, double bytes,
                          sim::Resource& copiers,
                          sim::Channel<int>& completions);

  double disk_seek_equivalent_bytes() const noexcept;
  sim::Time heartbeat_rpc_cost() const;
  sim::Time poll_rpc_cost() const;

  sim::Engine& engine_;
  ClusterSpec spec_;
  net::Fabric fabric_;
  proto::HadoopRpcModel rpc_;
  proto::JettyHttpModel jetty_;
  std::vector<NodeState> nodes_;
};

}  // namespace mpid::hadoop
