// Configuration and vocabulary types of the MPI-D library — the paper's
// contribution (Table II and Section IV.A).
//
// An MPI-D world mirrors the paper's simulation-system layout:
//   rank 0                     — master (the jobtracker analog)
//   ranks 1 .. M               — mappers
//   ranks M+1 .. M+R           — reducers
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mpid::common {
class FramePool;
}

namespace mpid::fault {
class FaultInjector;
}

namespace mpid::core {

enum class Role { kMaster, kMapper, kReducer };

/// Shuffle-frame compression mode (Hadoop's `mapred.compress.map.output`
/// analog; see common/codec.hpp for the wire format).
///  * kOff  — frames ship raw (the default, like Hadoop's).
///  * kAuto — frames below Config::compress_min_frame_bytes ship stored;
///            larger frames are compressed, and a mapper that keeps
///            observing poor ratios stops paying the encode cost for a
///            while before re-sampling (the auto-skip heuristic).
///  * kOn   — every frame is codec-framed; the per-frame stored escape is
///            the only bail-out.
/// The mode must match on every rank of a job: it decides whether the
/// reducer treats arriving payloads as codec frames.
enum class ShuffleCompression { kOff, kAuto, kOn };

/// Local combination hook (Section IV.A): collapses the value list
/// accumulated for one key into a (usually shorter) list before it is
/// realigned and transmitted. "Commonly ... assigned as the reduce
/// function" — e.g. WordCount sums counts into a single value.
using Combiner = std::function<std::vector<std::string>(
    std::string_view key, std::vector<std::string>&& values)>;

/// Partition selector: maps a key to a reducer index in [0, reducers).
/// The default is the paper's hash-mod selector ("similar to the
/// HashPartitioner in the Hadoop MapReduce framework"); a custom one
/// enables e.g. range partitioning for globally sorted output.
using Partitioner =
    std::function<std::uint32_t(std::string_view key, std::uint32_t reducers)>;

struct Config {
  /// Number of mapper ranks (>= 1).
  int mappers = 1;
  /// Number of reducer ranks (>= 1).
  int reducers = 1;

  /// Hash-table buffer size that triggers a spill to partitions
  /// ("when the hash table buffer exceeds a particular size").
  std::size_t spill_threshold_bytes = 4 * 1024 * 1024;

  /// Target size of one realigned partition frame; a full frame is sent to
  /// its reducer immediately ("when the data partition is full").
  std::size_t partition_frame_bytes = 256 * 1024;

  /// Apply the combiner incrementally once a key's buffered value list
  /// reaches this many entries (bounds memory for hot keys); the combiner
  /// always runs again at spill time. 0 disables incremental combining.
  std::size_t inline_combine_threshold = 64;

  /// Sort each key's value list during realignment ("it can also sort the
  /// value list for each key on demand").
  bool sort_values = false;

  /// Emit keys of a partition frame in sorted order during realignment.
  bool sort_keys = false;

  /// Optional local combiner; empty function disables combining.
  Combiner combiner;

  /// Optional partition selector; empty function means hash-mod.
  Partitioner partitioner;

  /// Pipelined zero-copy shuffle: full partition frames are moved into the
  /// transport with nonblocking sends (a bounded in-flight window per
  /// destination), reducers keep a wildcard receive posted one frame
  /// ahead, and frame buffers are recycled through a FramePool instead of
  /// being reallocated per spill. Disabling falls back to the original
  /// blocking copy-per-frame path (kept for A/B benchmarking).
  bool pipelined_shuffle = true;

  /// Upper bound on outstanding nonblocking frame sends per destination
  /// reducer before the mapper waits on the oldest (>= 1). Two frames give
  /// classic double buffering; more deepens the pipeline.
  std::size_t max_inflight_frames = 4;

  /// Skip the hash-table buffer and realign pairs straight into partition
  /// frames at MPI_D_Send time. Only taken when no combiner is configured
  /// and sort_keys/sort_values are off (those require the buffered spill
  /// path); pairs then cost one serialization instead of a hash insert, a
  /// value-list append and a spill copy.
  bool direct_realign = false;

  /// Buffer MPI_D_Send pairs in common::KvCombineTable — an open-
  /// addressing flat table whose keys live in a bump-pointer arena and
  /// whose value lists are slab-allocated block chains — instead of a
  /// node-based std::unordered_map. Spills drain the arenas back to empty
  /// without freeing, so steady-state mapping allocates nothing per pair.
  /// Disabling falls back to the original unordered_map buffer (kept for
  /// A/B benchmarking, like pipelined_shuffle).
  bool flat_combine_table = true;

  /// Frame buffer recycler shared by the ranks of a job; null selects the
  /// process-wide FramePool::process_pool() (in-process worlds run every
  /// rank as a thread, so reducers recycle buffers straight to mappers).
  std::shared_ptr<common::FramePool> frame_pool;

  /// Opt-in resilient shuffle (the fault-tolerance the paper leaves as an
  /// open issue). Data frames carry (incarnation, sequence, checksum)
  /// headers; mappers retain sent frames until the job completes and honor
  /// NACK/REPULL retransmission requests; reducers detect corrupt,
  /// duplicate and missing frames, request retransmits, and can be
  /// restarted mid-shuffle (restart_reducer re-pulls every lane). The cost
  /// is Hadoop's: delivery to MPI_D_Recv starts only once every mapper's
  /// stream is sealed (a batch boundary instead of streaming reception).
  bool resilient_shuffle = false;

  /// Shuffle-frame compression (see ShuffleCompression above). Composes
  /// with pipelined_shuffle (encode happens just before the owned-buffer
  /// isend), resilient_shuffle (the checksum covers the compressed bytes;
  /// the header's sequence field carries a codec bit) and the raw-frame /
  /// SortedFrameMerger path (frames decode byte-identical, so merge order
  /// and output are unchanged).
  ShuffleCompression shuffle_compression = ShuffleCompression::kOff;

  /// kAuto only: frames smaller than this ship stored — tiny frames are
  /// header-dominated and not worth the encode cost.
  std::size_t compress_min_frame_bytes = 4 * 1024;

  /// kAuto only: a frame whose wire/raw ratio exceeds this counts as a
  /// poor sample; after compress_skip_after consecutive poor samples the
  /// mapper ships the next compress_skip_frames frames stored, then
  /// re-samples (data distributions drift within a job).
  double compress_skip_ratio = 0.9;
  std::size_t compress_skip_after = 2;
  std::size_t compress_skip_frames = 8;

  /// Deterministic fault injector driving transport faults and task
  /// crashes (see mpid::fault). Null (the default) means no injection;
  /// transport faults are scoped to the data channel and only armed when
  /// resilient_shuffle is on (the plain shuffle has no recovery).
  std::shared_ptr<fault::FaultInjector> fault_injector;

  /// Total world size this configuration requires (master + mappers +
  /// reducers).
  int world_size() const noexcept { return 1 + mappers + reducers; }
};

/// Per-rank counters, aggregated at the master by MPI_D_Finalize.
struct Stats {
  std::uint64_t pairs_sent = 0;           // MPI_D_Send invocations
  std::uint64_t pairs_after_combine = 0;  // pairs surviving the combiner
  std::uint64_t spills = 0;               // hash-table spill rounds
  std::uint64_t frames_sent = 0;          // partition frames transmitted
  std::uint64_t bytes_sent = 0;           // payload bytes transmitted
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;       // payload bytes received
  std::uint64_t pairs_received = 0;       // pairs handed to MPI_D_Recv
  /// Mapper stall: wall time spent inside the transport while flushing
  /// partition frames (send, window wait, buffer turnaround). This is the
  /// time MPI_D_Send steals from map computation; the pipelined shuffle
  /// exists to drive it toward zero.
  std::uint64_t flush_wait_ns = 0;

  // --- combine-path accounting (the memory side of the map stage) ---
  /// Wall time inside the user combiner (incremental and spill-time runs,
  /// including value materialization around the call). Spill-time
  /// combining also counts toward spill_ns.
  std::uint64_t combine_ns = 0;
  /// Wall time of hash-buffer spill rounds: drain, realignment into
  /// partition frames and any frame flushes they trigger.
  std::uint64_t spill_ns = 0;
  /// High-water byte footprint of the combine buffer (keys + encoded
  /// values + bookkeeping). Aggregates as a max across ranks.
  std::uint64_t table_bytes_peak = 0;
  /// Spill rounds that recycled the flat table's arenas in place instead
  /// of freeing (zero on the legacy unordered_map path).
  std::uint64_t arena_recycles = 0;

  // --- shuffle compression (zero when shuffle_compression is off) ---
  /// Frame payload bytes before encoding (what the shuffle would have
  /// shipped raw). bytes_sent counts wire bytes, so raw - wire is the
  /// bandwidth the codec saved.
  std::uint64_t shuffle_bytes_raw = 0;
  /// Frame bytes actually shipped (codec header + payload).
  std::uint64_t shuffle_bytes_wire = 0;
  std::uint64_t compress_ns = 0;    // mapper wall time inside encode_frame
  std::uint64_t decompress_ns = 0;  // reducer wall time inside decode_frame
  /// Frames that shipped via the stored escape or the auto-skip heuristic.
  std::uint64_t frames_stored_uncompressed = 0;

  // --- recovery counters (resilient shuffle; zero on clean runs) ---
  std::uint64_t frames_retransmitted = 0;   // frames re-sent after NACK/REPULL
  std::uint64_t retransmit_requests = 0;    // NACK/REPULL messages serviced
  std::uint64_t corrupt_frames_dropped = 0; // checksum failures detected
  std::uint64_t duplicate_frames_dropped = 0;  // seen-seq / stale frames
  std::uint64_t task_restarts = 0;          // mapper/reducer re-executions
  std::uint64_t recovery_wall_ns = 0;       // wall time inside recovery paths

  Stats& operator+=(const Stats& rhs) noexcept {
    pairs_sent += rhs.pairs_sent;
    pairs_after_combine += rhs.pairs_after_combine;
    spills += rhs.spills;
    frames_sent += rhs.frames_sent;
    bytes_sent += rhs.bytes_sent;
    frames_received += rhs.frames_received;
    bytes_received += rhs.bytes_received;
    pairs_received += rhs.pairs_received;
    flush_wait_ns += rhs.flush_wait_ns;
    combine_ns += rhs.combine_ns;
    spill_ns += rhs.spill_ns;
    if (rhs.table_bytes_peak > table_bytes_peak) {
      table_bytes_peak = rhs.table_bytes_peak;  // a peak, not a volume
    }
    arena_recycles += rhs.arena_recycles;
    shuffle_bytes_raw += rhs.shuffle_bytes_raw;
    shuffle_bytes_wire += rhs.shuffle_bytes_wire;
    compress_ns += rhs.compress_ns;
    decompress_ns += rhs.decompress_ns;
    frames_stored_uncompressed += rhs.frames_stored_uncompressed;
    frames_retransmitted += rhs.frames_retransmitted;
    retransmit_requests += rhs.retransmit_requests;
    corrupt_frames_dropped += rhs.corrupt_frames_dropped;
    duplicate_frames_dropped += rhs.duplicate_frames_dropped;
    task_restarts += rhs.task_restarts;
    recovery_wall_ns += rhs.recovery_wall_ns;
    return *this;
  }
};

/// The master's aggregated view of a completed MPI-D job.
struct JobReport {
  Stats totals;
  int mappers_completed = 0;
  int reducers_completed = 0;
};

}  // namespace mpid::core
