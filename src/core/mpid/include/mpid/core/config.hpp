// Configuration and vocabulary types of the MPI-D library — the paper's
// contribution (Table II and Section IV.A).
//
// An MPI-D world mirrors the paper's simulation-system layout:
//   rank 0                     — master (the jobtracker analog)
//   ranks 1 .. M               — mappers
//   ranks M+1 .. M+R           — reducers
//
// The dataflow knobs (spill/partition/combine/sort/compression) live in
// shuffle::ShuffleOptions — the transport-agnostic pipeline shared with
// MiniHadoop — which Config embeds by inheritance. Only transport policy
// (pipelining, in-flight windows, resilience) is declared here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mpid/shuffle/counters.hpp"
#include "mpid/shuffle/options.hpp"

namespace mpid::common {
class FramePool;
}

namespace mpid::fault {
class FaultInjector;
}

namespace mpid::core {

enum class Role { kMaster, kMapper, kReducer };

/// Shared-pipeline vocabulary, re-exported so MPI-D callers keep spelling
/// core::ShuffleCompression / core::Combiner / core::Partitioner.
using ShuffleCompression = shuffle::ShuffleCompression;
using Combiner = shuffle::Combiner;
using Partitioner = shuffle::PartitionFn;

/// MPI-D job configuration: the shared shuffle knobs (see
/// shuffle::ShuffleOptions for spill_threshold_bytes,
/// partition_frame_bytes, inline_combine_threshold, sort_values,
/// sort_keys, flat_combine_table, shuffle_compression and the
/// compress_* policy) plus MPI-D's transport policy.
///
/// Node aggregation (ShuffleOptions::node_aggregation / ranks_per_node):
/// mapper m is modeled on node m / ranks_per_node and the lowest
/// co-located mapper index is the node's aggregation leader. Every
/// member stages its realigned frames locally and forwards them to the
/// leader at finalize (a modeled shared-memory transfer on a reliable
/// tag); the leader merges the node's streams through a
/// shuffle::NodeAggregator and ships ONE frame stream per reducer
/// partition. Composes with pipelined_shuffle, resilient_shuffle (the
/// leader's retained lanes hold the aggregated frames, so NACK/REPULL
/// re-serves them) and map_threads (lanes stage raw; the merged stream
/// is codec-framed once, at the leader).
struct Config : shuffle::ShuffleOptions {
  /// Number of mapper ranks (>= 1).
  int mappers = 1;
  /// Number of reducer ranks (>= 1).
  int reducers = 1;

  /// Optional local combiner; empty function disables combining.
  Combiner combiner;

  /// Optional partition selector; empty function means hash-mod.
  Partitioner partitioner;

  /// Pipelined zero-copy shuffle: full partition frames are moved into the
  /// transport with nonblocking sends (a bounded in-flight window per
  /// destination), reducers keep a wildcard receive posted one frame
  /// ahead, and frame buffers are recycled through a FramePool instead of
  /// being reallocated per spill. Disabling falls back to the original
  /// blocking copy-per-frame path (kept for A/B benchmarking).
  bool pipelined_shuffle = true;

  /// Upper bound on outstanding nonblocking frame sends per destination
  /// reducer before the mapper waits on the oldest (>= 1). Two frames give
  /// classic double buffering; more deepens the pipeline.
  std::size_t max_inflight_frames = 4;

  /// Skip the hash-table buffer and realign pairs straight into partition
  /// frames at MPI_D_Send time. Only taken when no combiner is configured
  /// and sort_keys/sort_values are off (those require the buffered spill
  /// path); pairs then cost one serialization instead of a hash insert, a
  /// value-list append and a spill copy.
  bool direct_realign = false;

  /// Frame buffer recycler shared by the ranks of a job; null selects the
  /// process-wide FramePool::process_pool() (in-process worlds run every
  /// rank as a thread, so reducers recycle buffers straight to mappers).
  std::shared_ptr<common::FramePool> frame_pool;

  /// Opt-in resilient shuffle (the fault-tolerance the paper leaves as an
  /// open issue). Data frames carry (incarnation, sequence, checksum)
  /// headers; mappers retain sent frames until the job completes and honor
  /// NACK/REPULL retransmission requests; reducers detect corrupt,
  /// duplicate and missing frames, request retransmits, and can be
  /// restarted mid-shuffle (restart_reducer re-pulls every lane). The cost
  /// is Hadoop's: delivery to MPI_D_Recv starts only once every mapper's
  /// stream is sealed (a batch boundary instead of streaming reception).
  bool resilient_shuffle = false;

  /// Deterministic fault injector driving transport faults and task
  /// crashes (see mpid::fault). Null (the default) means no injection;
  /// transport faults are scoped to the data channel and only armed when
  /// resilient_shuffle is on (the plain shuffle has no recovery).
  std::shared_ptr<fault::FaultInjector> fault_injector;

  /// Total world size this configuration requires (master + mappers +
  /// reducers).
  int world_size() const noexcept { return 1 + mappers + reducers; }
};

/// Per-rank counters, aggregated at the master by MPI_D_Finalize. The
/// dataflow block (pairs_after_combine, spills, combine/spill wall time,
/// compression bytes) is the shared shuffle::ShuffleCounters; the fields
/// declared here are MPI-D transport and recovery accounting.
struct Stats : shuffle::ShuffleCounters {
  std::uint64_t pairs_sent = 0;      // MPI_D_Send invocations
  std::uint64_t frames_sent = 0;     // partition frames transmitted
  std::uint64_t bytes_sent = 0;      // payload bytes transmitted
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;  // payload bytes received
  std::uint64_t pairs_received = 0;  // pairs handed to MPI_D_Recv
  /// Mapper stall: wall time spent inside the transport while flushing
  /// partition frames (send, window wait, buffer turnaround). This is the
  /// time MPI_D_Send steals from map computation; the pipelined shuffle
  /// exists to drive it toward zero.
  std::uint64_t flush_wait_ns = 0;

  // --- recovery counters (resilient shuffle; zero on clean runs) ---
  std::uint64_t frames_retransmitted = 0;   // frames re-sent after NACK/REPULL
  std::uint64_t retransmit_requests = 0;    // NACK/REPULL messages serviced
  std::uint64_t corrupt_frames_dropped = 0; // checksum failures detected
  std::uint64_t duplicate_frames_dropped = 0;  // seen-seq / stale frames
  std::uint64_t task_restarts = 0;          // mapper/reducer re-executions
  std::uint64_t recovery_wall_ns = 0;       // wall time inside recovery paths

  Stats& operator+=(const Stats& rhs) noexcept {
    merge(rhs);  // shared dataflow counters (table_bytes_peak as a max)
    pairs_sent += rhs.pairs_sent;
    frames_sent += rhs.frames_sent;
    bytes_sent += rhs.bytes_sent;
    frames_received += rhs.frames_received;
    bytes_received += rhs.bytes_received;
    pairs_received += rhs.pairs_received;
    flush_wait_ns += rhs.flush_wait_ns;
    frames_retransmitted += rhs.frames_retransmitted;
    retransmit_requests += rhs.retransmit_requests;
    corrupt_frames_dropped += rhs.corrupt_frames_dropped;
    duplicate_frames_dropped += rhs.duplicate_frames_dropped;
    task_restarts += rhs.task_restarts;
    recovery_wall_ns += rhs.recovery_wall_ns;
    return *this;
  }
};

/// The master's aggregated view of a completed MPI-D job.
struct JobReport {
  Stats totals;
  int mappers_completed = 0;
  int reducers_completed = 0;
  /// One aggregated Stats block per round barrier, in round order
  /// (DESIGN.md §16). A one-shot job has exactly one entry; a chained
  /// job (Config::resident_rounds > 1) gains one per next_round() plus
  /// the final finalize(). totals is the fold of all entries.
  std::vector<Stats> round_totals;
};

}  // namespace mpid::core
