// Typed key-value layer over MPI-D.
//
// The paper's interface is generic over S_KEY_TYPE / S_VALUE_TYPE /
// R_KEY_TYPE / R_VALUE_TYPE. The core library transports opaque byte
// strings; this header supplies the type layer: KvCodec<T> defines a
// deterministic, order-preserving byte encoding per type, and
// TypedMpiD<K, V> wraps MpiD so applications send and receive their own
// types directly:
//
//   TypedMpiD<std::string, std::uint64_t> d(comm, cfg);
//   d.send(word, 1);                 // mapper
//   while (d.recv(word, count)) ...  // reducer
//
// Integer keys use big-endian fixed-width encodings so that the byte
// order used by sort_keys matches numeric order.
#pragma once

#include <bit>
#include <concepts>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "mpid/core/mpid.hpp"

namespace mpid::core {

template <typename T>
struct KvCodec;  // specialize: encode(const T&) -> std::string,
                 //             decode(std::string_view) -> T

template <>
struct KvCodec<std::string> {
  static std::string encode(std::string_view v) { return std::string(v); }
  static std::string decode(std::string_view bytes) {
    return std::string(bytes);
  }
};

/// Unsigned integers: big-endian fixed width (lexicographic == numeric).
template <std::unsigned_integral T>
struct KvCodec<T> {
  static std::string encode(T v) {
    std::string out(sizeof(T), '\0');
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out[sizeof(T) - 1 - i] = static_cast<char>(v >> (8 * i));
    }
    return out;
  }
  static T decode(std::string_view bytes) {
    if (bytes.size() != sizeof(T)) {
      throw std::runtime_error("KvCodec: wrong integer width");
    }
    T v = 0;
    for (const char c : bytes) {
      v = static_cast<T>(v << 8) | static_cast<std::uint8_t>(c);
    }
    return v;
  }
};

/// Signed integers: bias by the sign bit so ordering is preserved.
template <std::signed_integral T>
struct KvCodec<T> {
  using U = std::make_unsigned_t<T>;
  static constexpr U kBias = U{1} << (8 * sizeof(T) - 1);

  static std::string encode(T v) {
    return KvCodec<U>::encode(static_cast<U>(v) ^ kBias);
  }
  static T decode(std::string_view bytes) {
    return static_cast<T>(KvCodec<U>::decode(bytes) ^ kBias);
  }
};

/// Doubles: IEEE total-order trick (flip sign bit, or all bits when
/// negative) so byte order matches numeric order.
template <>
struct KvCodec<double> {
  static std::string encode(double v) {
    auto bits = std::bit_cast<std::uint64_t>(v);
    bits ^= (bits >> 63) != 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << 63);
    return KvCodec<std::uint64_t>::encode(bits);
  }
  static double decode(std::string_view bytes) {
    auto bits = KvCodec<std::uint64_t>::decode(bytes);
    bits ^= (bits >> 63) != 0 ? (std::uint64_t{1} << 63) : ~std::uint64_t{0};
    return std::bit_cast<double>(bits);
  }
};

template <typename K, typename V>
class TypedMpiD {
 public:
  TypedMpiD(minimpi::Comm& comm, Config config) : mpid_(comm, config) {}

  Role role() const noexcept { return mpid_.role(); }
  MpiD& raw() noexcept { return mpid_; }

  void send(const K& key, const V& value) {
    mpid_.send(KvCodec<K>::encode(key), KvCodec<V>::encode(value));
  }

  bool recv(K& key, V& value) {
    std::string k, v;
    if (!mpid_.recv(k, v)) return false;
    key = KvCodec<K>::decode(k);
    value = KvCodec<V>::decode(v);
    return true;
  }

  void finalize() { mpid_.finalize(); }
  const JobReport& report() const { return mpid_.report(); }
  const Stats& stats() const noexcept { return mpid_.stats(); }

 private:
  MpiD mpid_;
};

/// A combiner adaptor: lifts a typed fold over V into the byte-level
/// Combiner the Config expects.
template <typename V, typename Fold>
Combiner typed_combiner(Fold fold) {
  return [fold](std::string_view, std::vector<std::string>&& values) {
    V acc = KvCodec<V>::decode(values.front());
    for (std::size_t i = 1; i < values.size(); ++i) {
      acc = fold(acc, KvCodec<V>::decode(values[i]));
    }
    return std::vector<std::string>{KvCodec<V>::encode(acc)};
  };
}

}  // namespace mpid::core
