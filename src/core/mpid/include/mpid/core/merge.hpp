// Reducer-side sorted merge: Hadoop's merge phase for MPI-D.
//
// The merge stage is transport-agnostic and lives in the shared shuffle
// engine (mpid/shuffle/merger.hpp); this header keeps the historical
// core::SortedFrameMerger spelling for MPI-D callers.
//
//   SortedFrameMerger merger;
//   std::vector<std::byte> frame;
//   while (d.recv_raw_frame(frame)) merger.add_frame(std::move(frame));
//   std::string key; std::vector<std::string> values;
//   while (merger.next_group(key, values)) reduce(key, values);
#pragma once

#include "mpid/shuffle/merger.hpp"

namespace mpid::core {

using SortedFrameMerger = shuffle::SegmentMerger;

}  // namespace mpid::core
