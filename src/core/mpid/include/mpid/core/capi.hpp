// The paper's Table II interface, verbatim shape:
//
//     void MPI_D_Send(S_KEY_TYPE key, S_VALUE_TYPE value);
//     void MPI_D_Recv(R_KEY_TYPE key, R_VALUE_TYPE value);
//
// plus MPI_D_Init / MPI_D_Finalize. This header provides those four calls
// as free functions over a per-rank (thread-local) library instance, so a
// port of the paper's Figure 5 WordCount compiles almost verbatim. The
// C++ class API (mpid.hpp) remains the primary interface; this shim
// demonstrates that the extension really is "minimal" — four calls, no
// object plumbing in application code.
//
// One deviation is deliberate: MPI_D_Recv returns bool (false at
// end-of-stream). The paper's void signature leaves termination implicit;
// a real library must expose it.
#pragma once

#include <string>
#include <string_view>

#include "mpid/core/mpid.hpp"

namespace mpid::core::capi {

/// MPI_D_Init: binds the calling rank (thread) to an MPI-D instance.
/// Must be balanced by MPI_D_Finalize on the same thread.
void MPI_D_Init(minimpi::Comm& comm, const Config& config);

/// Role helpers for the bound instance.
Role MPI_D_Role();

/// MPI_D_Send (mapper only).
void MPI_D_Send(std::string_view key, std::string_view value);

/// MPI_D_Recv (reducer only); false at end-of-stream.
bool MPI_D_Recv(std::string& key, std::string& value);

/// MPI_D_Finalize: collective shutdown; unbinds and destroys the
/// instance. Returns the master's aggregated report on rank 0 (empty
/// JobReport elsewhere).
JobReport MPI_D_Finalize();

/// True if this thread currently has a bound instance.
bool MPI_D_Initialized();

}  // namespace mpid::core::capi
