// MPI-D: the paper's minimal key-value extension to MPI.
//
// The paper adds one pair of calls to the MPI standard (Table II):
//
//     void MPI_D_Send(S_KEY_TYPE key,  S_VALUE_TYPE value);
//     void MPI_D_Recv(R_KEY_TYPE key,  R_VALUE_TYPE value);
//
// plus MPI_D_Init / MPI_D_Finalize. This class is that library: the
// constructor is MPI_D_Init, send() is MPI_D_Send, recv() is MPI_D_Recv
// and finalize() is MPI_D_Finalize. Everything between send() and recv()
// — buffering, local combination, hash-mod partition selection, data
// realignment into contiguous frames, wildcard-source reception and
// reverse realignment — happens inside the library, invisible to the
// application, exactly as Section IV.A describes.
//
// Implementation notes mirroring the paper:
//  * MPI_D_Send buffers key-value pairs in a hash table and returns
//    immediately; the combiner gathers pairs of the same key into a
//    (key, value-list) entry.
//  * When the buffer exceeds a threshold, entries are spilled through a
//    hash-mod partition selector (one partition per reducer, like Hadoop's
//    HashPartitioner) and realigned: reformatted from the discrete hash
//    table into address-sequential, bounded-size partition frames.
//  * Full frames are sent with plain MPI point-to-point sends; the
//    destination rank is derived from the partition number automatically.
//  * Reducers receive frames with wildcard-source MPI receives, reverse-
//    realign them into key-value pairs, and hand them to MPI_D_Recv in
//    streaming fashion.
//
// Typical mapper:                      Typical reducer:
//   MpiD d(comm, cfg);                   MpiD d(comm, cfg);
//   for (...) d.send(k, v);              std::string k, v;
//   d.finalize();                        while (d.recv(k, v)) consume(k, v);
//                                        d.finalize();
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mpid/common/framepool.hpp"
#include "mpid/common/kvframe.hpp"
#include "mpid/core/config.hpp"
#include "mpid/fault/fault.hpp"
#include "mpid/minimpi/comm.hpp"
#include "mpid/shuffle/buffer.hpp"
#include "mpid/shuffle/coded.hpp"
#include "mpid/shuffle/compress.hpp"
#include "mpid/store/budget.hpp"
#include "mpid/shuffle/engine.hpp"
#include "mpid/shuffle/parallel.hpp"
#include "mpid/shuffle/workerpool.hpp"

namespace mpid::core {

class MpiD {
 public:
  /// MPI_D_Init. `comm` must outlive this object; its size must equal
  /// config.world_size(). Collective: every rank constructs with the same
  /// configuration.
  MpiD(minimpi::Comm& comm, Config config);

  MpiD(const MpiD&) = delete;
  MpiD& operator=(const MpiD&) = delete;

  Role role() const noexcept { return role_; }
  int mapper_index() const;   // 0-based among mappers; throws if not mapper
  int reducer_index() const;  // 0-based among reducers; throws if not reducer

  /// MPI_D_Send — mapper only. Buffers (key, value); returns immediately
  /// unless a spill and frame transmissions are triggered.
  void send(std::string_view key, std::string_view value);

  /// Thread-parallel MPI_D_Send batch — mapper only, the hybrid
  /// process+threads path (Config::map_threads > 1). Runs `chunk_fn` over
  /// [0, chunk_count) input chunks on this rank's worker pool: each chunk
  /// emits its pairs through the per-worker buffer/combine/spill lanes of
  /// a shuffle::ParallelMapper whose sink is this rank's transport, and
  /// frames ship in deterministic chunk order — the wire bytes are
  /// identical for every thread count. Returns the pairs emitted (also
  /// accounted into stats().pairs_sent). Must not be interleaved with
  /// send() mid-batch; finalize() as usual afterwards.
  std::uint64_t run_map_parallel(std::size_t chunk_count,
                                 const shuffle::ParallelMapper::ChunkFn& chunk_fn);

  // --- coded shuffle (Config::coded_replication > 1; DESIGN.md §15) ---

  /// Pair emitter handed to the coded map callbacks.
  using CodedEmitFn =
      std::function<void(std::string_view key, std::string_view value)>;
  /// Maps one of the r fixed sub-splits of a task's input: called as
  /// fn(sub, emit) and must emit exactly the pairs of sub-split `sub` —
  /// deterministically, because the home-group reducers re-run the same
  /// callback to regenerate these frames as side information.
  using CodedSubMapFn = std::function<void(int sub, const CodedEmitFn&)>;
  /// Reducer-side replica of mapper `mapper`'s sub-split `sub` (same
  /// determinism contract; the runner replays the mapper's input split).
  using CodedReplicaMapFn =
      std::function<void(int mapper, int sub, const CodedEmitFn&)>;

  /// Coded MPI_D_Send batch — mapper only, replaces send() when
  /// coded_replication > 1. Runs the task's r sub-splits through r
  /// private deterministic pipelines (parallel across the worker pool
  /// when map_threads > 1); the realigned frames stay staged until
  /// finalize(), which ships off-home partitions point-to-point and the
  /// home group's aligned diagonal streams as XOR-coded multicast
  /// rounds. Returns the pairs emitted (also counted into pairs_sent).
  std::uint64_t run_map_coded(const CodedSubMapFn& sub_map);

  /// The reducer's redundant map work — reducer only, must run BEFORE the
  /// first recv when coded_replication > 1. Replays sub-splits i != (this
  /// reducer's group position) of every home-group map task through the
  /// identical pipeline: the diagonal frames become the side information
  /// that decodes incoming coded payloads, and the frames of this
  /// reducer's own partition enter the delivery stream locally (they
  /// never cross the fabric — part of the structural cut). All replica
  /// pipelines account into scratch counters, NOT stats(): the redundant
  /// compute is charged by the cluster model, and folding it here would
  /// double-count the dataflow counters parity tests assert on.
  void run_reduce_side_map(const CodedReplicaMapFn& replica_map);

  /// The coded placement (valid whenever coded_replication >= 1).
  const shuffle::CodedPlacement& coded_placement() const noexcept {
    return placement_;
  }

  /// MPI_D_Recv — reducer only. Produces the next pair in streaming order;
  /// returns false once every mapper's end-of-stream marker has been
  /// consumed and no buffered pairs remain.
  bool recv(std::string& key, std::string& value);

  /// Grouped variant: one (key, value-list) segment as realigned by the
  /// sending mapper. The same key can appear in multiple segments (one per
  /// mapper/spill); global grouping is the caller's job (see mapred).
  bool recv_group(std::string& key, std::vector<std::string>& values);

  /// Zero-copy grouped variant: `key` and `values` are views into the
  /// delivery frame, valid only until the next recv_* call on this
  /// instance. The owning recv()/recv_group() overloads are thin
  /// materializations of this path, so a caller that only inspects the
  /// group (aggregate, count, forward) skips the per-pair string copies.
  bool recv_group_views(std::string_view& key,
                        std::vector<std::string_view>& values);

  /// Raw-frame variant: one realigned partition frame exactly as a mapper
  /// shipped it; false once all mappers signalled end-of-stream. Feed the
  /// frames to SortedFrameMerger (merge.hpp) for Hadoop-style globally
  /// key-ordered reduction (requires Config::sort_keys on the mappers).
  /// Must not be mixed with recv()/recv_group() on the same instance.
  bool recv_raw_frame(std::vector<std::byte>& frame);

  /// As recv_raw_frame(), but defers the codec decode to the caller:
  /// `frame` is the bytes exactly as shipped and `codec_framed` says
  /// whether they are a codec frame (always true under MPI-D's
  /// self-describing framing when compression is on). Feed the frames to
  /// SegmentMerger::add_wire_frame() so prepare() can decode them across
  /// worker threads (Config::reduce_threads > 1), then fold the decode
  /// counters back via fold_counters().
  bool recv_wire_frame(std::vector<std::byte>& frame, bool& codec_framed);

  /// Folds a counter block accumulated outside this rank's pipeline —
  /// e.g. a SegmentMerger::prepare() decode pass — into stats(). Call
  /// from this rank's thread only (before finalize()).
  void fold_counters(const shuffle::ShuffleCounters& counters) {
    stats_.merge(counters);
  }

  /// This rank's lazily-created worker pool, sized by Config::map_threads
  /// (mapper) / reduce_threads (reducer); 1 elsewhere. The pool is shared
  /// by run_map_parallel() and available to callers (e.g. the mapred
  /// JobRunner hands it to SegmentMerger::prepare()).
  shuffle::WorkerPool& worker_pool();

  /// The resolved two-tier store arbiter — Config::memory_budget if the
  /// caller shared one, a per-rank arbiter when memory_budget_bytes > 0,
  /// null otherwise. Callers arm consumer stages with it (e.g.
  /// SegmentMerger::enable_spill on the reduce side).
  store::MemoryBudget* memory_budget() const noexcept {
    return config_.memory_budget.get();
  }

  /// MPI_D_Finalize — collective. Mappers flush buffers and emit
  /// end-of-stream markers; reducers must have drained recv() first. All
  /// ranks then synchronize through the master, which aggregates stats.
  void finalize();

  /// Round barrier of the iterative chain lifecycle (DESIGN.md §16) —
  /// collective, Config::resident_rounds > 1 only. Runs the exact
  /// finalize() ship/seal/stats handshake (mappers flush and seal their
  /// lanes, reducers must have drained recv(), the master folds every
  /// rank's per-round Stats into report().round_totals) but instead of
  /// tearing the world down every rank re-arms for another MapReduce
  /// round: mapper lanes restart at sequence 0 under a fresh incarnation
  /// (so a resilient reducer distinguishes round N+1 frames from round N
  /// retransmits), reducer EOS/seal/delivery state clears, and per-rank
  /// stats() reset to zero. send()/recv() then work again. Throws if the
  /// barrier would exceed resident_rounds or the instance is finalized.
  void next_round();

  /// Completed round barriers (next_round() calls + the final
  /// finalize()). 0 while the first round is still running.
  int rounds_completed() const noexcept { return rounds_completed_; }

  /// Master-side aggregated report; valid after finalize() on rank 0.
  const JobReport& report() const;

  /// This rank's local counters (available on any rank at any time).
  const Stats& stats() const noexcept { return stats_; }

  /// The reducer rank owning `key` under the configured partitioner
  /// (hash-mod by default).
  minimpi::Rank reducer_rank_for(std::string_view key) const;

  /// The partition index for `key` in [0, reducers).
  std::uint32_t partition_for(std::string_view key) const;

  /// Restarts a crashed mapper attempt (resilient shuffle only): discards
  /// all buffered, retained and in-flight output and bumps the mapper's
  /// incarnation so reducers discard frames of the dead attempt; the
  /// caller then re-runs the map function from the start of its split.
  void restart_mapper();

  /// Restarts a crashed reducer attempt (resilient shuffle only): discards
  /// everything received so far and asks every mapper to re-send its
  /// retained lane (REPULL); the next recv() re-collects the shuffle.
  void restart_reducer();

  /// This rank's attempt number (0 until the first restart).
  int attempt() const noexcept { return attempt_; }

 private:
  /// The SpillEncoder's transport sink: ships one realigned (and possibly
  /// codec-framed) partition frame over the data communicator via the
  /// configured path (resilient / pipelined / blocking), accounting
  /// frames_sent, bytes_sent and flush_wait_ns.
  void transport_send(std::size_t partition, std::vector<std::byte> frame);

  // --- resilient shuffle (Config::resilient_shuffle) ---
  bool resilient() const noexcept { return config_.resilient_shuffle; }
  fault::FaultInjector* injector() const noexcept {
    return config_.fault_injector.get();
  }
  /// Frames, retains and ships one partition payload with an
  /// (incarnation, sequence, checksum) header.
  void send_frame_resilient(std::size_t partition,
                            std::vector<std::byte> payload);
  /// SEAL for one lane: kEosTag carrying {incarnation, total frames}.
  void send_seal(int reducer);
  /// Services one ACK/NACK/REPULL at the mapper. `acked`/`remaining`
  /// track which lanes still owe an ACK.
  void handle_lane_control(const minimpi::Status& st,
                           std::span<const std::byte> payload,
                           std::vector<char>& acked, int& remaining);
  /// SEAL + ack/retransmit loop + done handshake of a resilient mapper.
  void resilient_mapper_finalize();
  /// Reducer: receives until every mapper's lane is sealed and complete
  /// (NACKing gaps), then stages the payload frames for delivery. Throws
  /// fault::TaskCrash when an injected crash tick fires.
  void resilient_collect();

  // --- shuffle compression (Config::shuffle_compression) ---
  bool compression_on() const noexcept {
    return config_.shuffle_compression != ShuffleCompression::kOff;
  }

  // --- node-local aggregation (Config::node_aggregation) ---
  bool node_agg() const noexcept { return config_.node_aggregation; }
  /// Mappers per modeled node (>= 1; validated by ShuffleOptions).
  int ranks_per_node() const noexcept {
    return static_cast<int>(config_.ranks_per_node);
  }
  /// Number of modeled nodes = number of aggregated streams a reducer
  /// sees. Mapper m lives on node m / ranks_per_node; the lowest
  /// co-located index is the node's aggregation leader.
  int node_count() const noexcept {
    return (config_.mappers + ranks_per_node() - 1) / ranks_per_node();
  }
  /// True when mapper index `m` ships fabric traffic: every mapper
  /// without aggregation, only node leaders with it.
  bool is_agg_sender(int m) const noexcept {
    return !node_agg() || m % ranks_per_node() == 0;
  }
  /// End-of-stream markers a reducer must collect before it is drained:
  /// one per mapper normally, one per node leader under aggregation.
  int eos_target() const noexcept {
    return node_agg() ? node_count() : config_.mappers;
  }
  /// Intra-node stage exchange + the leader's combine tree; runs inside
  /// finalize() before any fabric traffic. Non-leaders forward their
  /// staged frames to the leader; the leader merges every member stream
  /// (its own first) through a shuffle::NodeAggregator whose sink is
  /// transport_send(), so the resilient path retains — and retransmits —
  /// the aggregated frames.
  void node_agg_finalize();

  // --- coded shuffle (Config::coded_replication > 1) ---
  bool coded() const noexcept { return config_.coded_replication > 1; }
  /// The replication unit of mapper m: the mapper itself, or its node
  /// under node aggregation (the whole node codes as one stream then).
  int unit_of_mapper(int m) const noexcept {
    return node_agg() ? m / ranks_per_node() : m;
  }
  /// Reducer view: true when mapper rank 1+m ships coded payloads to this
  /// reducer (its unit's home group is this reducer's group). Coded-ness
  /// is decided by topology alone — a home unit's fabric traffic toward
  /// its group is exclusively coded rounds.
  bool is_coded_source(int m) const noexcept {
    return coded() && placement_.home_group(
                          static_cast<std::size_t>(unit_of_mapper(m))) ==
                          placement_.group_of_reducer(
                              static_cast<std::size_t>(comm_.rank()) - 1 -
                              static_cast<std::size_t>(config_.mappers));
  }
  /// One frame sequence per partition (coded staging matrix row).
  using PartitionStreams = std::vector<std::vector<std::vector<std::byte>>>;
  /// Runs one deterministic coded sub-pipeline (buffer -> combine ->
  /// partition -> realign; no codec, no budget — byte-identical on every
  /// rank that replays it) and feeds its frames to `sink`.
  void run_coded_pipeline(
      const std::function<void(const CodedEmitFn&)>& body,
      shuffle::ShuffleCounters* counters,
      shuffle::SpillEncoder::FrameSink sink);
  /// Resolves this unit's canonical per-(sub, partition) frame matrix: the
  /// mapper's own staged streams, or the node's aggregated streams under
  /// node aggregation (leader only; members forward and return empty).
  std::vector<PartitionStreams> coded_unit_matrix();
  /// Ships the staged coded matrix: off-home partitions point-to-point,
  /// home diagonal streams as XOR-coded multicast rounds.
  void coded_mapper_finalize();
  /// One coded round to every reducer of this unit's home group: one wire
  /// transmission (bytes_sent charged once), one retained framed buffer
  /// per group lane under the resilient shuffle (the lanes advance in
  /// lockstep because home lanes carry nothing but coded rounds).
  void coded_multicast_send(std::vector<std::byte> payload);
  /// Reducer: codec-decodes (when compression is on) and XOR-decodes one
  /// coded payload from `unit` against the locally recomputed side terms.
  /// Empty result: this reducer's stream had drained by that round.
  std::vector<std::byte> decode_coded_payload(int unit,
                                              std::vector<std::byte> payload);

  /// Pulls the next frame from the network (decoding it when compression
  /// is on) and stages it as the delivery frame. Returns false when all
  /// mappers have signalled end-of-stream.
  bool fetch_delivery_frame();
  /// Advances current_view_ to the next group of the delivery frame,
  /// fetching further frames as needed; false at global end-of-stream.
  bool next_group_view();
  /// True while a group or frame is still being drained (guards finalize
  /// and the recv_raw_frame mixing check).
  bool delivery_pending() const noexcept;
  /// The shared body of finalize() and next_round(): flush/seal/EOS on
  /// the mappers, drained-check on the reducers, per-round stats fold on
  /// the master, done/ack handshake everywhere. `final` decides whether
  /// the master counts task completions (once, on the last round).
  void round_barrier(bool final);
  /// Re-arms this rank for the next chain round after a non-final
  /// barrier: fresh per-round stats, reset spill/lane state (mapper, with
  /// an incarnation bump under the resilient shuffle), cleared
  /// EOS/seal/delivery state (reducer).
  void rearm_for_next_round();

  /// Posts the reducer's one-frame-ahead wildcard receive (pipelined
  /// shuffle): reverse realignment of frame N overlaps reception of N+1.
  void post_prefetch();
  /// Waits out the in-flight send window of one partition.
  void drain_inflight(std::size_t partition);
  void ensure_role(Role expected, const char* what) const;

  minimpi::Comm& comm_;    // user communicator (untouched)
  minimpi::Comm data_comm_;  // dup'd: all MPI-D traffic is isolated
  Config config_;
  Role role_;
  Stats stats_;
  std::shared_ptr<common::FramePool> pool_;
  bool direct_realign_ = false;  // resolved from config at init

  // Mapper state: the shared shuffle pipeline (src/shuffle), wired to
  // this rank's transport through transport_send(). The buffer holds the
  // combine stage (flat table or legacy node-based map per
  // Config::flat_combine_table); the encoder owns partitioning,
  // spill-time combining and frame flush policy; the compressor is the
  // optional codec stage (self-describing framing: every wire frame
  // decodes, skips use the stored escape).
  std::optional<shuffle::CombineRunner> combine_runner_;
  std::optional<shuffle::MapOutputBuffer> map_buffer_;  // empty: direct path
  std::optional<shuffle::FrameCompressor> compressor_;
  std::optional<shuffle::SpillEncoder> encoder_;
  /// The rank's worker pool (worker_pool()), created on first use so
  /// single-threaded configurations never spawn anything.
  std::unique_ptr<shuffle::WorkerPool> worker_pool_;
  /// Outstanding nonblocking frame sends, one bounded window per
  /// destination reducer (Config::max_inflight_frames).
  std::vector<std::deque<minimpi::Request>> inflight_;

  // Resilient-shuffle mapper state: one lane per reducer. Sent frames are
  // retained (with their headers) until the master's final ack, so a
  // restarted reducer can re-pull the whole lane at any point of the job.
  struct SendLane {
    std::uint32_t next_seq = 0;
    std::vector<std::vector<std::byte>> retained;
  };
  std::vector<SendLane> lanes_;
  std::uint32_t incarnation_ = 0;  // mapper attempt stamped into headers
  int attempt_ = 0;

  /// Coded placement arithmetic (identity when coded_replication == 1).
  shuffle::CodedPlacement placement_;
  /// Mapper-side coded staging: frames of sub-pipeline `sub` for
  /// `partition`, in flush order — coded_streams_[sub][partition][k].
  /// Nothing leaves the rank until finalize(), which makes an injected
  /// map crash trivially recoverable (restart just discards the stage).
  std::vector<PartitionStreams> coded_streams_;

  /// Node-aggregation staging (Config::node_aggregation): every mapper —
  /// leader or not — parks its realigned frames here instead of sending,
  /// and nothing leaves the rank until finalize(). That makes the intra-
  /// node exchange crash-free by construction: an injected map crash can
  /// only fire during the map loop, so restart_mapper() just discards the
  /// stage and no cross-rank incarnation protocol is needed.
  std::vector<std::vector<std::byte>> node_staged_;

  // Resilient-shuffle reducer state: one lane per mapper.
  struct RecvLane {
    std::uint32_t incarnation = 0;
    std::map<std::uint32_t, std::vector<std::byte>> frames;  // seq -> payload
    std::optional<std::uint32_t> sealed_total;
    bool complete = false;
  };
  std::vector<RecvLane> recv_lanes_;
  /// One staged delivery frame of the resilient path. Coded lanes are
  /// fully decoded at staging time (codec + XOR against side terms), so
  /// their entries are raw; uncoded entries keep the wire bytes and the
  /// codec flag so recv_wire_frame can still defer the decode.
  struct CollectedFrame {
    std::vector<std::byte> bytes;
    bool codec_framed = false;
  };
  /// Payload frames in (mapper, sequence) order once every lane is
  /// complete; refill_segments/recv_raw_frame drain this.
  std::deque<CollectedFrame> collected_;
  bool collected_ready_ = false;

  /// Reducer-side coded state (coded_replication > 1), built by
  /// run_reduce_side_map and kept across reducer restarts (the replica
  /// map work is deterministic, so a re-pulled lane decodes against the
  /// same side terms).
  struct CodedUnitState {
    /// side[sub][round]: the diagonal frame of group position `sub` at
    /// coded round `round` (empty vector slots never exist; a drained
    /// stream just ends). side[own position] stays empty.
    std::vector<std::vector<std::vector<std::byte>>> side;
  };
  std::map<int, CodedUnitState> coded_units_;  // home unit -> side terms
  /// Frames of this reducer's own partition recomputed from home units'
  /// replica sub-pipelines: delivered locally (copied — restart_reducer
  /// rewinds the cursor), never counted as network traffic.
  std::vector<std::vector<std::byte>> coded_local_;
  std::size_t coded_local_cursor_ = 0;
  std::optional<std::uint64_t> crash_tick_;  // injected reducer crash plan
  std::uint64_t progress_ticks_ = 0;

  // Reducer state: one decoded frame at a time is reverse-realigned in
  // place. recv_group_views() hands out views into delivery_frame_; the
  // owning recv()/recv_group() materialize from the same views, so a pair
  // costs one copy (wire -> caller string) instead of two (the old path
  // staged every group in an owning Segment queue first). The reader and
  // view alias delivery_frame_, which is released to the pool only once
  // fully drained.
  /// Consumer side of the codec stage (engaged when compression is on):
  /// decodes wire frames into pool-recycled buffers.
  std::optional<shuffle::FrameDecoder> decoder_;
  std::vector<std::byte> delivery_frame_;
  std::optional<common::KvListReader> delivery_reader_;
  std::optional<common::KvListView> current_view_;  // group being drained
  std::size_t current_value_index_ = 0;
  int eos_received_ = 0;
  /// Prefetch buffer must outlive the request posted against it (members
  /// destroy in reverse declaration order: request first, then buffer).
  std::vector<std::byte> prefetch_buf_;
  minimpi::Request prefetch_req_;
  bool prefetch_posted_ = false;

  // Master state.
  JobReport report_;
  bool finalized_ = false;
  int rounds_completed_ = 0;  // chain barriers passed (finalize included)
};

}  // namespace mpid::core
