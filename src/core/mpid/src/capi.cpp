#include "mpid/core/capi.hpp"

#include <memory>
#include <stdexcept>

namespace mpid::core::capi {

namespace {

// Each minimpi rank is a thread, so a thread-local slot gives exactly
// one MPI-D instance per rank — the same cardinality as the paper's
// process-wide library state in a real MPI job.
thread_local std::unique_ptr<MpiD> t_instance;

MpiD& instance(const char* what) {
  if (!t_instance) {
    throw std::logic_error(std::string(what) + " before MPI_D_Init");
  }
  return *t_instance;
}

}  // namespace

void MPI_D_Init(minimpi::Comm& comm, const Config& config) {
  if (t_instance) {
    throw std::logic_error("MPI_D_Init: already initialized on this rank");
  }
  t_instance = std::make_unique<MpiD>(comm, config);
}

Role MPI_D_Role() { return instance("MPI_D_Role").role(); }

void MPI_D_Send(std::string_view key, std::string_view value) {
  instance("MPI_D_Send").send(key, value);
}

bool MPI_D_Recv(std::string& key, std::string& value) {
  return instance("MPI_D_Recv").recv(key, value);
}

JobReport MPI_D_Finalize() {
  MpiD& mpid = instance("MPI_D_Finalize");
  mpid.finalize();
  JobReport report;
  if (mpid.role() == Role::kMaster) report = mpid.report();
  t_instance.reset();
  return report;
}

bool MPI_D_Initialized() { return static_cast<bool>(t_instance); }

}  // namespace mpid::core::capi
