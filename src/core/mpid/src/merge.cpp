#include "mpid/core/merge.hpp"

#include <stdexcept>

namespace mpid::core {

void SortedFrameMerger::add_frame(std::vector<std::byte> frame) {
  if (started_) {
    throw std::logic_error(
        "SortedFrameMerger: add_frame after merging started");
  }
  if (frame.empty()) return;
  cursors_.emplace_back(std::move(frame), cursors_.size());
  advance(cursors_.back());
}

void SortedFrameMerger::advance(Cursor& cursor) {
  const std::optional<std::string> previous =
      cursor.current ? std::optional<std::string>(std::string(
                           cursor.current->key))
                     : std::nullopt;
  cursor.current = cursor.reader.next();
  if (cursor.current && previous && cursor.current->key < *previous) {
    throw std::logic_error(
        "SortedFrameMerger: frame is not key-sorted (enable "
        "Config::sort_keys on the mappers)");
  }
}

bool SortedFrameMerger::next_group(std::string& key,
                                   std::vector<std::string>& values) {
  started_ = true;
  // Smallest current key across cursors (linear scan: frame counts are
  // small — one per mapper spill).
  const Cursor* best = nullptr;
  for (const auto& cursor : cursors_) {
    if (!cursor.current) continue;
    if (best == nullptr || cursor.current->key < best->current->key ||
        (cursor.current->key == best->current->key &&
         cursor.order < best->order)) {
      best = &cursor;
    }
  }
  if (best == nullptr) return false;

  key.assign(best->current->key);
  values.clear();
  // Drain the chosen key from every cursor, in arrival order.
  for (auto& cursor : cursors_) {
    while (cursor.current && cursor.current->key == key) {
      for (const auto v : cursor.current->values) values.emplace_back(v);
      advance(cursor);
    }
  }
  return true;
}

}  // namespace mpid::core
