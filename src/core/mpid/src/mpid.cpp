#include "mpid/core/mpid.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "mpid/common/hash.hpp"

namespace mpid::core {

namespace {

// Tags on the private (dup'd) communicator.
constexpr int kDataTag = 1;  // a realigned partition frame
constexpr int kEosTag = 2;   // mapper end-of-stream marker
constexpr int kDoneTag = 3;  // rank -> master completion + stats
constexpr int kAckTag = 4;   // master -> rank shutdown acknowledgement

/// Approximate per-entry bookkeeping overhead counted against the spill
/// threshold (hash node + string headers).
constexpr std::size_t kEntryOverhead = 48;

static_assert(std::is_trivially_copyable_v<Stats>,
              "Stats travels as a raw MPI payload");

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MpiD::MpiD(minimpi::Comm& comm, Config config)
    : comm_(comm), data_comm_(comm.dup()), config_(config) {
  if (config_.mappers < 1 || config_.reducers < 1) {
    throw std::invalid_argument("MpiD: need at least one mapper and reducer");
  }
  if (comm.size() != config_.world_size()) {
    throw std::invalid_argument(
        "MpiD: communicator size must be 1 (master) + mappers + reducers");
  }
  if (config_.max_inflight_frames < 1) {
    throw std::invalid_argument("MpiD: max_inflight_frames must be >= 1");
  }
  pool_ = config_.frame_pool ? config_.frame_pool
                             : common::FramePool::process_pool();
  // Direct realignment requires the buffered spill path to be semantics-
  // free: no combiner to batch for, no sorted runs to build.
  direct_realign_ = config_.direct_realign && !config_.combiner &&
                    !config_.sort_keys && !config_.sort_values;
  const auto rank = comm.rank();
  if (rank == 0) {
    role_ = Role::kMaster;
  } else if (rank <= config_.mappers) {
    role_ = Role::kMapper;
    partitions_.resize(static_cast<std::size_t>(config_.reducers));
    inflight_.resize(static_cast<std::size_t>(config_.reducers));
  } else {
    role_ = Role::kReducer;
  }
}

int MpiD::mapper_index() const {
  if (role_ != Role::kMapper) throw std::logic_error("MpiD: not a mapper");
  return comm_.rank() - 1;
}

int MpiD::reducer_index() const {
  if (role_ != Role::kReducer) throw std::logic_error("MpiD: not a reducer");
  return comm_.rank() - 1 - config_.mappers;
}

std::uint32_t MpiD::partition_for(std::string_view key) const {
  const auto reducers = static_cast<std::uint32_t>(config_.reducers);
  if (!config_.partitioner) return common::hash_partition(key, reducers);
  const auto p = config_.partitioner(key, reducers);
  if (p >= reducers) {
    throw std::out_of_range("MpiD: partitioner returned index >= reducers");
  }
  return p;
}

minimpi::Rank MpiD::reducer_rank_for(std::string_view key) const {
  return 1 + config_.mappers + static_cast<minimpi::Rank>(partition_for(key));
}

void MpiD::ensure_role(Role expected, const char* what) const {
  if (role_ != expected) {
    throw std::logic_error(std::string("MpiD: ") + what +
                           " called on the wrong role");
  }
  if (finalized_) {
    throw std::logic_error(std::string("MpiD: ") + what +
                           " called after finalize");
  }
}

void MpiD::send(std::string_view key, std::string_view value) {
  ensure_role(Role::kMapper, "send (MPI_D_Send)");
  ++stats_.pairs_sent;

  if (direct_realign_) {
    // Realign straight into the partition frame: one serialization per
    // pair instead of hash insert + value-list append + spill copy.
    const auto partition = static_cast<std::size_t>(partition_for(key));
    auto& writer = partitions_[partition];
    writer.begin_group(key, 1);
    writer.add_value(value);
    ++stats_.pairs_after_combine;
    if (writer.byte_size() >= config_.partition_frame_bytes) {
      flush_partition(partition);
    }
    return;
  }

  auto it = buffer_.find(key);  // transparent: no temporary string
  const bool inserted = it == buffer_.end();
  if (inserted) {
    it = buffer_.emplace(std::string(key), ValueList{}).first;
  }
  ValueList& entry = it->second;
  entry.values.emplace_back(value);
  entry.bytes += value.size();
  buffered_bytes_ += value.size();
  if (inserted) buffered_bytes_ += key.size() + kEntryOverhead;

  if (config_.inline_combine_threshold > 0 && config_.combiner &&
      entry.values.size() >= config_.inline_combine_threshold) {
    const std::size_t before = entry.bytes;
    run_combiner(it->first, entry);
    buffered_bytes_ -= std::min(buffered_bytes_, before - entry.bytes);
  }

  if (buffered_bytes_ >= config_.spill_threshold_bytes) spill();
}

void MpiD::run_combiner(std::string_view key, ValueList& entry) {
  entry.values = config_.combiner(key, std::move(entry.values));
  entry.bytes = 0;
  for (const auto& v : entry.values) entry.bytes += v.size();
}

void MpiD::spill() {
  if (buffer_.empty()) return;
  ++stats_.spills;

  // Drain the hash table. With sort_keys the keys of this spill round are
  // emitted in lexicographic order (within each partition frame).
  std::vector<std::pair<std::string, ValueList>> entries;
  entries.reserve(buffer_.size());
  for (auto& [key, list] : buffer_) {
    entries.emplace_back(key, std::move(list));
  }
  buffer_.clear();
  buffered_bytes_ = 0;
  if (config_.sort_keys) {
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  for (auto& [key, list] : entries) {
    if (config_.combiner) run_combiner(key, list);
    append_to_partition(partition_for(key), key, std::move(list.values));
  }

  if (config_.sort_keys) {
    // Keep every shipped frame a single sorted run (Hadoop's per-spill
    // sorted files): a frame must not span two spill rounds, or the
    // reducer-side SortedFrameMerger would see a second ascending run.
    for (std::size_t p = 0; p < partitions_.size(); ++p) flush_partition(p);
  }
}

void MpiD::append_to_partition(std::size_t partition, std::string_view key,
                               std::vector<std::string>&& values) {
  if (config_.sort_values) std::sort(values.begin(), values.end());
  auto& writer = partitions_[partition];
  writer.begin_group(key, values.size());
  for (const auto& v : values) writer.add_value(v);
  stats_.pairs_after_combine += values.size();
  // "When the data partition is full, it will trigger ... sending."
  if (writer.byte_size() >= config_.partition_frame_bytes) {
    flush_partition(partition);
  }
}

void MpiD::drain_inflight(std::size_t partition) {
  auto& window = inflight_[partition];
  while (!window.empty()) {
    window.front().wait();
    window.pop_front();
  }
}

void MpiD::flush_partition(std::size_t partition) {
  auto& writer = partitions_[partition];
  if (writer.group_count() == 0) return;
  // The destination is derived from the partition number automatically —
  // the mapper never names a rank (Section III, third challenge).
  const minimpi::Rank dst =
      1 + config_.mappers + static_cast<minimpi::Rank>(partition);
  const std::uint64_t start = now_ns();
  if (config_.pipelined_shuffle) {
    auto frame = writer.take();
    stats_.bytes_sent += frame.size();
    // Re-arm the writer from the pool before the frame leaves: the next
    // pair can be serialized while this frame is still in flight.
    writer.reset(pool_->acquire(config_.partition_frame_bytes));
    auto& window = inflight_[partition];
    while (window.size() >= config_.max_inflight_frames) {
      window.front().wait();
      window.pop_front();
    }
    window.push_back(
        data_comm_.isend_bytes_owned(dst, kDataTag, std::move(frame)));
  } else {
    const auto frame = writer.take();
    data_comm_.send_bytes(dst, kDataTag, frame);
    stats_.bytes_sent += frame.size();
  }
  ++stats_.frames_sent;
  stats_.flush_wait_ns += now_ns() - start;
}

void MpiD::post_prefetch() {
  prefetch_buf_.clear();
  prefetch_req_ = data_comm_.irecv_bytes(minimpi::kAnySource,
                                         minimpi::kAnyTag, prefetch_buf_);
  prefetch_posted_ = true;
}

bool MpiD::refill_segments() {
  while (segments_.empty()) {
    if (eos_received_ == config_.mappers) return false;
    std::vector<std::byte> frame;
    minimpi::Status st;
    if (config_.pipelined_shuffle) {
      if (!prefetch_posted_) post_prefetch();
      st = prefetch_req_.wait();
      prefetch_posted_ = false;
      frame = std::move(prefetch_buf_);
      // Keep exactly one wildcard receive posted ahead while more traffic
      // is expected, so reverse realignment of this frame overlaps the
      // arrival of the next. Never leave one posted once every mapper has
      // signalled end-of-stream: the finalize ack must not be stolen.
      if (st.tag == kEosTag) ++eos_received_;
      if (eos_received_ < config_.mappers) post_prefetch();
      if (st.tag == kEosTag) continue;
    } else {
      st = data_comm_.recv_bytes(minimpi::kAnySource, minimpi::kAnyTag,
                                 frame);
      if (st.tag == kEosTag) {
        ++eos_received_;
        continue;
      }
    }
    if (st.tag != kDataTag) {
      throw std::runtime_error("MpiD: unexpected tag on data channel");
    }
    ++stats_.frames_received;
    stats_.bytes_received += frame.size();
    // Reverse realignment: sequential frame back into key-value groups.
    common::KvListReader reader(frame);
    while (auto group = reader.next()) {
      Segment seg;
      seg.key.assign(group->key);
      seg.values.reserve(group->values.size());
      for (const auto v : group->values) seg.values.emplace_back(v);
      segments_.push_back(std::move(seg));
    }
    // The frame's allocation goes back to the pool for the next spill.
    pool_->release(std::move(frame));
  }
  return true;
}

bool MpiD::recv(std::string& key, std::string& value) {
  ensure_role(Role::kReducer, "recv (MPI_D_Recv)");
  for (;;) {
    if (current_ && current_value_index_ < current_->values.size()) {
      key = current_->key;
      value = current_->values[current_value_index_++];
      ++stats_.pairs_received;
      return true;
    }
    current_.reset();
    current_value_index_ = 0;
    if (!segments_.empty()) {
      current_ = std::move(segments_.front());
      segments_.pop_front();
      continue;
    }
    if (!refill_segments()) return false;
  }
}

bool MpiD::recv_raw_frame(std::vector<std::byte>& frame) {
  ensure_role(Role::kReducer, "recv_raw_frame");
  if (current_ || !segments_.empty()) {
    throw std::logic_error(
        "MpiD: recv_raw_frame cannot be mixed with recv()/recv_group()");
  }
  for (;;) {
    if (eos_received_ == config_.mappers) return false;
    const minimpi::Status st =
        data_comm_.recv_bytes(minimpi::kAnySource, minimpi::kAnyTag, frame);
    if (st.tag == kEosTag) {
      ++eos_received_;
      continue;
    }
    if (st.tag != kDataTag) {
      throw std::runtime_error("MpiD: unexpected tag on data channel");
    }
    ++stats_.frames_received;
    stats_.bytes_received += frame.size();
    return true;
  }
}

bool MpiD::recv_group(std::string& key, std::vector<std::string>& values) {
  ensure_role(Role::kReducer, "recv_group");
  if (current_ && current_value_index_ < current_->values.size()) {
    // Hand back the undrained remainder of the current group.
    key = std::move(current_->key);
    values.assign(
        std::make_move_iterator(current_->values.begin() +
                                static_cast<std::ptrdiff_t>(current_value_index_)),
        std::make_move_iterator(current_->values.end()));
    current_.reset();
    current_value_index_ = 0;
    stats_.pairs_received += values.size();
    return true;
  }
  current_.reset();
  current_value_index_ = 0;
  if (segments_.empty() && !refill_segments()) return false;
  Segment seg = std::move(segments_.front());
  segments_.pop_front();
  key = std::move(seg.key);
  values = std::move(seg.values);
  stats_.pairs_received += values.size();
  return true;
}

void MpiD::finalize() {
  if (finalized_) throw std::logic_error("MpiD: finalize called twice");

  switch (role_) {
    case Role::kMapper: {
      spill();
      for (std::size_t p = 0; p < partitions_.size(); ++p) flush_partition(p);
      // Close every in-flight window before end-of-stream: EOS must not
      // overtake data (it cannot — same (source, context) lane — but a
      // drained window also returns the request bookkeeping to a clean
      // state before the final handshake).
      for (std::size_t p = 0; p < inflight_.size(); ++p) drain_inflight(p);
      for (int r = 0; r < config_.reducers; ++r) {
        data_comm_.send_bytes(1 + config_.mappers + r, kEosTag, {});
      }
      data_comm_.send_value(0, kDoneTag, stats_);
      (void)data_comm_.recv_value<int>(0, kAckTag);
      break;
    }
    case Role::kReducer: {
      if (eos_received_ != config_.mappers || current_ ||
          !segments_.empty()) {
        throw std::logic_error(
            "MpiD: reducer must drain recv() before finalize");
      }
      data_comm_.send_value(0, kDoneTag, stats_);
      (void)data_comm_.recv_value<int>(0, kAckTag);
      break;
    }
    case Role::kMaster: {
      const int workers = config_.mappers + config_.reducers;
      for (int i = 0; i < workers; ++i) {
        minimpi::Status st;
        const auto s = data_comm_.recv_value<Stats>(minimpi::kAnySource,
                                                    kDoneTag, &st);
        report_.totals += s;
        if (st.source <= config_.mappers) {
          ++report_.mappers_completed;
        } else {
          ++report_.reducers_completed;
        }
      }
      for (int r = 1; r <= workers; ++r) data_comm_.send_value(r, kAckTag, 0);
      break;
    }
  }
  finalized_ = true;
}

const JobReport& MpiD::report() const {
  if (role_ != Role::kMaster || !finalized_) {
    throw std::logic_error("MpiD: report available on the master after finalize");
  }
  return report_;
}

}  // namespace mpid::core
